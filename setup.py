"""Setuptools entry point.

Metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on offline hosts without the ``wheel``
package (legacy editable installs do not need to build a wheel).
"""

from setuptools import setup

setup()
