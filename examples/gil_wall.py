"""Why this reproduction simulates instead of threading: the GIL wall.

Run:  python examples/gil_wall.py

The paper's proposal needs fine-grain shared-memory parallelism: tasks
of 50-100 instructions sharing node memories.  CPython's global
interpreter lock serialises exactly that kind of work, so a threaded
Rete would measure the lock, not the algorithm.  This script makes the
point empirically:

* a match-like workload (independent joins) run serially and with
  threads: threads deliver ~1x regardless of core count -- the GIL;
* the same workload with processes: real speed-up on multi-core hosts,
  but only at *coarse* granularity with no shared match state -- that
  is the production parallelism the paper rejects (and on a single-core
  host, of course, nothing helps; the script reports what your machine
  can show).

Hence the methodology choice (DESIGN.md section 2): reproduce the
paper's own trace-driven *simulation*, which is also what the authors
did -- their 32-processor machine was simulated too.
"""

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

WORKERS = 4
JOIN_SIZE = 420
ROUNDS = 18


def match_chunk(seed: int) -> int:
    """A CPU-bound stand-in for one production's join work."""
    left = [(i, (i * seed) % 97) for i in range(JOIN_SIZE)]
    right = [(i, (i * 31) % 97) for i in range(JOIN_SIZE)]
    matches = 0
    for _ in range(ROUNDS):
        for _, lv in left:
            for _, rv in right:
                if lv == rv:
                    matches += 1
    return matches


def timed(label, runner):
    started = time.perf_counter()
    results = runner()
    elapsed = time.perf_counter() - started
    print(f"{label:<28} {elapsed * 1000:8.0f} ms   (checksum {sum(results)})")
    return elapsed


def main() -> None:
    cores = os.cpu_count() or 1
    seeds = list(range(1, WORKERS + 1))
    print(f"host: {cores} CPU core(s)\n")

    serial = timed("serial", lambda: [match_chunk(s) for s in seeds])

    def threaded():
        with ThreadPoolExecutor(max_workers=WORKERS) as pool:
            return list(pool.map(match_chunk, seeds))

    threads = timed(f"{WORKERS} threads (GIL)", threaded)

    def processes():
        with ProcessPoolExecutor(max_workers=WORKERS) as pool:
            return list(pool.map(match_chunk, seeds))

    procs = timed(f"{WORKERS} processes", processes)

    print(
        f"\nthread speed-up : {serial / threads:4.2f}x   "
        "<- the GIL wall: fine-grain shared-memory parallelism is "
        "unmeasurable in CPython, on any number of cores"
    )
    if cores > 1:
        print(
            f"process speed-up: {serial / procs:4.2f}x   "
            "<- coarse-grain only, no shared match state: the production "
            "parallelism the paper rejects"
        )
    else:
        print(
            f"process speed-up: {serial / procs:4.2f}x   "
            "<- this host has a single core, so even coarse-grain "
            "parallelism has nothing to run on"
        )
    print(
        "\nConclusion: measure the paper's machine the way the paper did --"
        "\nby trace-driven simulation (repro.psim)."
    )


if __name__ == "__main__":
    main()
