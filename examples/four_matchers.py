"""The state-saving spectrum, live: four matchers on one program.

Run:  python examples/four_matchers.py

Runs the transitive-closure workload under all four match algorithms --
the naive non-state-saving baseline, TREAT (alpha state only), Rete
(fixed prefix chains), and Oflazer's all-combinations scheme -- and
tabulates what each stores and how hard each works.  This is the
paper's Section 3 argument as an experiment you can touch.
"""

import time

from repro.analysis import render_table
from repro.naive import NaiveMatcher
from repro.oflazer import CombinationMatcher
from repro.rete import ReteNetwork
from repro.treat import TreatMatcher
from repro.workloads.programs import closure

MATCHERS = [
    ("naive (no state)", NaiveMatcher),
    ("treat (alpha only)", TreatMatcher),
    ("rete (prefix chains)", ReteNetwork),
    ("rete (indexed)", lambda: ReteNetwork(indexed=True)),
    ("oflazer (all combos)", CombinationMatcher),
]


def main() -> None:
    rows = []
    reference = None
    for label, factory in MATCHERS:
        system = closure.build(closure.chain(9), matcher=factory())
        started = time.perf_counter()
        system.run(5000)
        elapsed = time.perf_counter() - started
        facts = closure.derived_facts(system)
        if reference is None:
            reference = facts
        assert facts == reference, "matchers disagree!"
        stats = system.matcher.stats
        state = getattr(system.matcher, "state_size", lambda: {})()
        rows.append([
            label,
            facts,
            stats.total_comparisons,
            state.get("alpha_wmes", "-"),
            state.get("beta_tokens", "-"),
            f"{elapsed * 1000:.0f} ms",
        ])

    print(render_table(
        ["matcher", "derived facts", "comparisons", "alpha state",
         "beta state", "wall clock"],
        rows,
        title="Transitive closure (9-edge chain) under the full "
              "state-saving spectrum",
    ))
    print(
        "\nAll matchers derive the same facts (differential testing makes"
        "\nthat a guarantee, not luck).  The paper's Section 3 spectrum is"
        "\nvisible in the state columns; its Section 3.1 cost argument in"
        "\nthe comparison counts."
    )


if __name__ == "__main__":
    main()
