"""An R1/XCON-flavoured configuration expert system.

Run:  python examples/configurator.py

The paper's motivating applications include R1, the rule-based VAX
configurer (McDermott 1982).  This miniature version exercises the same
rule style: an order is expanded into components, memory boards are
added until the requested capacity is reached, a power supply is sized
to the accumulated load, and components are placed into cabinet slots.

Demonstrates: compute arithmetic, negated conditions as "until"
loops, MEA-style goal ordering via recency, and trace capture for the
parallel simulator.
"""

from repro.ops5 import ProductionSystem
from repro.trace import capture_trace
from repro.psim import MachineConfig, simulate

SOURCE = """
(literalize order cpu memory-mb status)
(literalize component kind model draw placed)
(literalize tally mb load)
(literalize cabinet slots used)

; Expand the order: drop in the CPU and start the running tallies.
(p start-order
  (order ^cpu <c> ^status new)
  -->
  (make component ^kind cpu ^model <c> ^draw 30 ^placed no)
  (make tally ^mb 0 ^load 30)
  (modify 1 ^status filling))

; Add 32 MB boards until the ordered capacity is covered.
(p add-memory-board
  (order ^memory-mb <want> ^status filling)
  (tally ^mb { <have> < <want> } ^load <l>)
  -->
  (make component ^kind memory ^model mem32 ^draw 8 ^placed no)
  (modify 2 ^mb (compute <have> + 32) ^load (compute <l> + 8)))

; Capacity reached: size the power supply to the accumulated load.
(p size-power-supply
  (order ^memory-mb <want> ^status filling)
  (tally ^mb >= <want> ^load <l>)
  -->
  (make component ^kind psu ^model (compute <l> * 2) ^draw 0 ^placed no)
  (modify 1 ^status placing))

; Place every component into the cabinet, one slot each.
(p place-component
  (order ^status placing)
  (component ^kind <k> ^placed no)
  (cabinet ^slots <s> ^used { <u> < <s> })
  -->
  (modify 2 ^placed yes)
  (modify 3 ^used (compute <u> + 1))
  (write placed <k> in slot (compute <u> + 1)))

; Out of slots with components left: order another cabinet.
(p add-cabinet
  (order ^status placing)
  (component ^placed no)
  - (cabinet ^slots <s> ^used < <s>)
  -->
  (make cabinet ^slots 4 ^used 0)
  (write added a cabinet))

; Everything placed: done.
(p order-complete
  (order ^status placing)
  - (component ^placed no)
  -->
  (modify 1 ^status done)
  (write order complete)
  (halt))
"""


def setup():
    return [
        ("order", {"cpu": "vax780", "memory-mb": 96, "status": "new"}),
        ("cabinet", {"slots": 4, "used": 0}),
    ]


def main() -> None:
    ps = ProductionSystem(SOURCE)
    ps.load_memory(setup())
    result = ps.run(max_cycles=100)
    print("configured in", result.fired, "firings:")
    for line in result.output:
        print("  ", line)
    components = ps.memory.of_class("component")
    print("\nbill of materials:")
    for component in components:
        print("  ", component)

    # The same run as a parallel-match workload.
    trace, _, _ = capture_trace(SOURCE, setup(), name="configurator", max_cycles=100)
    for processors in (1, 2, 4, 8):
        r = simulate(trace, MachineConfig(processors=processors))
        print(
            f"{processors:2d} processors: concurrency {r.concurrency:.2f}, "
            f"{r.wme_changes_per_second:,.0f} wme-changes/sec"
        )


if __name__ == "__main__":
    main()
