"""From OPS5 source to multiprocessor speed-up: the full pipeline.

Run:  python examples/real_program_traces.py

Takes the library's real OPS5 programs (Tower of Hanoi, blocks world,
transitive closure, the eight puzzle), captures node-activation traces
from instrumented Rete runs, and replays them on PSM configurations --
including the paper's Section 4 comparison of production-level vs.
node-level parallelism granularity.
"""

from repro.analysis import render_table
from repro.psim import (
    GRANULARITY_INTRA_NODE,
    GRANULARITY_NODE,
    GRANULARITY_PRODUCTION,
    MachineConfig,
    simulate,
)
from repro.trace import capture_trace
from repro.workloads.programs import blocks, closure, eight_puzzle, elevator, hanoi, router


def workloads():
    yield "hanoi-5", hanoi.PROGRAM, hanoi.setup(5), None
    yield "blocks", blocks.PROGRAM, blocks.setup(), 200
    yield "closure-10", closure.PROGRAM, closure.chain(10), 5000
    yield "eight-puzzle", eight_puzzle.PROGRAM, eight_puzzle.setup(eight_puzzle.MEDIUM), 60
    yield "router", router.PROGRAM, router.setup(), 3000
    yield "elevator", elevator.PROGRAM, elevator.setup(1, (4, 2, 7)), 500


def main() -> None:
    rows = []
    for name, program, setup, cap in workloads():
        trace, result, _ = capture_trace(program, setup, name=name, max_cycles=cap)
        line = [name, result.fired, trace.total_changes, trace.total_tasks]
        for granularity in (GRANULARITY_PRODUCTION, GRANULARITY_NODE, GRANULARITY_INTRA_NODE):
            r = simulate(trace, MachineConfig(processors=16, granularity=granularity))
            line.append(round(r.true_speedup, 2))
        rows.append(line)

    print(
        render_table(
            ["program", "firings", "changes", "tasks",
             "speedup(production)", "speedup(node)", "speedup(intra-node)"],
            rows,
            title="Real programs on a 16-processor PSM, by parallelism granularity",
        )
    )
    print(
        "\nThe granularity ordering mirrors the paper's Section 4: production-"
        "\nlevel parallelism is capped by the few affected productions and"
        "\ntheir cost variance; node- and intra-node-level do better."
    )


if __name__ == "__main__":
    main()
