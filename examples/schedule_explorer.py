"""Schedule anatomy: bounds, granularities, and Gantt timelines.

Run:  python examples/schedule_explorer.py

Ties three analysis tools together on one workload:

1. the analytic makespan envelope (`repro.psim.schedule_bounds`):
   the best any schedule could do, and the worst the greedy one can;
2. the three parallelism granularities against those bounds;
3. an ASCII Gantt of the actual schedule, where you can *see* the
   firing barriers and the saturation the paper's Figure 6-1 plots.
"""

from repro.analysis import render_table
from repro.psim import (
    MachineConfig,
    render_gantt,
    schedule_bounds,
    simulate,
)
from repro.workloads import generate_trace, profile_named


def main() -> None:
    trace = generate_trace(profile_named("daa"), seed=42, firings=30)
    processors = 16

    rows = []
    for granularity in ("production", "node", "intra-node"):
        config = MachineConfig(processors=processors, granularity=granularity)
        result = simulate(trace, config)
        bounds = schedule_bounds(trace, config)
        rows.append([
            granularity,
            round(bounds.lower),
            round(result.makespan),
            round(bounds.upper),
            round(result.true_speedup, 2),
            round(bounds.speedup_ceiling(trace.serial_cost), 2),
        ])

    print(render_table(
        ["granularity", "lower bound", "actual makespan", "upper bound",
         "speed-up", "analytic ceiling"],
        rows,
        title=f"daa on {processors} processors: the greedy schedule vs "
              "its analytic envelope (instruction units)",
    ))

    print("\nThe first few firings, as the machine sees them "
          "(intra-node granularity):")
    short = generate_trace(profile_named("daa"), seed=42, firings=4)
    result = simulate(
        short, MachineConfig(processors=8), record_placements=True
    )
    print(render_gantt(result, width=76))
    print(
        "\nColumns of dots spanning every processor are the recognize-act"
        "\nbarriers between firings -- the synchronisation points the paper's"
        "\n'parallel firings' variant relaxes."
    )


if __name__ == "__main__":
    main()
