"""Quickstart: write rules, load facts, run the recognize-act loop.

Run:  python examples/quickstart.py

Covers the core public API: the OPS5 source syntax, ProductionSystem,
working-memory access, conflict-set inspection, and matcher swapping.
"""

from repro.ops5 import ProductionSystem
from repro.rete import collect_stats
from repro.treat import TreatMatcher

SOURCE = """
(literalize task name status priority)
(literalize worker name doing)

; Assign the highest-priority pending task to an idle worker.
(p assign-task
  (task ^name <t> ^status pending ^priority <p>)
  - (task ^status pending ^priority > <p>)
  (worker ^name <w> ^doing nil)
  -->
  (modify 1 ^status running)
  (modify 3 ^doing <t>)
  (write assigned <t> to <w>))

; A running task finishes; its worker frees up.
(p finish-task
  (task ^name <t> ^status running)
  (worker ^name <w> ^doing <t>)
  -->
  (remove 1)
  (modify 2 ^doing nil)
  (write finished <t>))

(p all-done
  (worker)
  - (task)
  -->
  (write everyone idle)
  (halt))
"""


def main() -> None:
    ps = ProductionSystem(SOURCE)  # Rete matcher by default

    ps.add("worker", name="ann", doing="nil")
    ps.add("worker", name="bob", doing="nil")
    for name, priority in [("compile", 2), ("test", 3), ("deploy", 1)]:
        ps.add("task", name=name, status="pending", priority=priority)

    print("conflict set before running:")
    for instantiation in ps.conflict_set:
        print("  ", instantiation)

    result = ps.run()
    print("\nfired", result.fired, "productions; halted:", result.halt_reason)
    for line in result.output:
        print("  ", line)

    stats = collect_stats(ps.matcher)
    print(
        f"\nRete network: {stats.total_nodes} nodes, "
        f"sharing ratio {stats.sharing_ratio:.2f}, "
        f"mean affected productions/change "
        f"{ps.matcher.stats.mean_affected_productions:.2f}"
    )

    # Any matcher plugs into the same engine -- here is TREAT:
    ps2 = ProductionSystem(SOURCE, matcher=TreatMatcher())
    ps2.add("worker", name="cam", doing="nil")
    ps2.add("task", name="ship", status="pending", priority=1)
    print("\nTREAT run output:", ps2.run().output)


if __name__ == "__main__":
    main()
