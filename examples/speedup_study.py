"""The paper's Section 6 study: concurrency and speed vs. processors.

Run:  python examples/speedup_study.py

Regenerates the series behind Figures 6-1 and 6-2 for the six
calibrated system workloads (plus the "parallel firings" variants of
R1-Soar and EP-Soar), and prints the paper's headline aggregates for
the 32-processor machine.
"""

from repro.analysis import render_series
from repro.psim import MachineConfig, sweep_processors
from repro.workloads import PAPER_SYSTEMS, PARALLEL_FIRING_SYSTEMS, generate_trace

PROCESSOR_COUNTS = [1, 2, 4, 8, 16, 32, 48, 64]


def main() -> None:
    base = MachineConfig()
    concurrency: dict[str, list[float]] = {}
    speed: dict[str, list[float]] = {}
    at_32 = []

    for profile in PAPER_SYSTEMS:
        trace = generate_trace(profile, seed=42, firings=60)
        results = sweep_processors(trace, base, PROCESSOR_COUNTS)
        concurrency[profile.name] = [r.concurrency for r in results]
        speed[profile.name] = [r.wme_changes_per_second for r in results]
        at_32.append(results[PROCESSOR_COUNTS.index(32)])

    for profile in PARALLEL_FIRING_SYSTEMS:
        trace = generate_trace(profile, seed=42, firings=60)
        label = profile.name + " (parallel firings)"
        results = sweep_processors(
            trace, MachineConfig(firing_batch=2), PROCESSOR_COUNTS
        )
        concurrency[label] = [r.concurrency for r in results]
        speed[label] = [r.wme_changes_per_second for r in results]
        at_32.append(results[PROCESSOR_COUNTS.index(32)])

    print(render_series("procs", PROCESSOR_COUNTS, concurrency,
                        title="Figure 6-1: average concurrency"))
    print()
    print(render_series("procs", PROCESSOR_COUNTS, speed,
                        title="Figure 6-2: execution speed (wme-changes/sec)",
                        precision=0))

    n = len(at_32)
    print("\nAt 32 processors x 2 MIPS (paper: concurrency 15.92, "
          "9400 wme-changes/sec, ~3800 firings/sec, true speed-up 8.25, "
          "lost factor 1.93):")
    print(f"  mean concurrency   {sum(r.concurrency for r in at_32) / n:.2f}")
    print(f"  mean speed         {sum(r.wme_changes_per_second for r in at_32) / n:,.0f} wme-changes/sec")
    print(f"  mean firing rate   {sum(r.firings_per_second for r in at_32) / n:,.0f} firings/sec")
    print(f"  mean true speed-up {sum(r.true_speedup for r in at_32) / n:.2f}")
    print(f"  mean lost factor   {sum(r.lost_factor for r in at_32) / n:.2f}")


if __name__ == "__main__":
    main()
