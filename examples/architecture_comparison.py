"""The paper's Section 7: five production-system machines compared.

Run:  python examples/architecture_comparison.py

Prints the comparison table (model predictions next to each machine's
published prediction), the PSM's *measured* speed from this repo's own
simulator, and the two qualitative conclusions the paper draws.
"""

from repro.machines import (
    ALL_MACHINES,
    DADO_RETE,
    DADO_TREAT,
    measured_speed,
    render_table,
    speed_ratios,
)


def main() -> None:
    print(render_table())

    print("\nPSM measured by this repository's trace simulator "
          "(average over the six calibrated systems):")
    print(f"  {measured_speed():,.0f} wme-changes/sec   (paper: 9400)")

    ratios = speed_ratios()
    print("\nWho wins, and by how much (model speeds relative to the PSM):")
    for machine, ratio in sorted(ratios.items(), key=lambda kv: kv[1]):
        print(f"  {machine:<20} {ratio:7.3f}x")

    treat_vs_rete = DADO_TREAT.predicted_speed() / DADO_RETE.predicted_speed()
    print(
        "\nSection 7.5 observations:\n"
        "  - the small-count machines (Oflazer, PSM) beat the massively\n"
        "    parallel trees (DADO, NON-VON) by 20-50x: intrinsic parallelism\n"
        "    is small (~30 affected productions) and thousands of weak\n"
        "    processing elements cannot individually be made fast;\n"
        f"  - on DADO, TREAT vs Rete changes little ({treat_vs_rete:.2f}x):\n"
        "    the state-storing strategy is not the bottleneck there."
    )

    print("\nCalibration check (model vs each machine's published number):")
    for machine in ALL_MACHINES:
        error = machine.calibration_error()
        label = f"{error * 100:.1f}%" if error is not None else "n/a"
        print(f"  {machine.name:<20} {label}")


if __name__ == "__main__":
    main()
