"""The naive, non-state-saving match algorithm.

On every working-memory change the matcher recomputes, from scratch, the
set of instantiations of every production, then edits the conflict set to
match.  This is the algorithm the paper's Section 3.1 cost model calls
*non state-saving*: its per-cycle cost is proportional to the whole
working memory (``s * c3``), whereas Rete's is proportional to the number
of changes (``(i + d) * c1``).

The implementation enumerates matches by straightforward backtracking
over the condition elements in LHS order, using
:meth:`~repro.ops5.condition.ConditionElement.match` as the single source
of matching truth.  Negated CEs are checked in place: the branch survives
only when no WME matches under the bindings accumulated so far.

The matcher counts comparisons and tokens built, feeding the
state-saving-vs-not analysis in :mod:`repro.analysis.statesaving`.
"""

from __future__ import annotations

from typing import Iterable

from ..ops5.condition import Bindings, wme_passes_alpha
from ..ops5.matcher import ChangeRecord, Matcher
from ..ops5.production import Instantiation, Production
from ..ops5.wme import WME


class NaiveMatcher(Matcher):
    """Full re-match on every change (the non-state-saving baseline)."""

    def __init__(self) -> None:
        super().__init__()
        self._productions: dict[str, Production] = {}
        self._memory: list[WME] = []
        # Scratch counters reset per change, accumulated into MatchStats.
        self._comparisons = 0
        self._tokens_built = 0

    # -- Matcher interface ---------------------------------------------------

    @property
    def productions(self) -> Iterable[Production]:
        return self._productions.values()

    def add_production(self, production: Production) -> None:
        self._productions[production.name] = production
        for instantiation in self._match_production(production):
            if instantiation not in self.conflict_set:
                self.conflict_set.insert(instantiation)

    def remove_production(self, name: str) -> None:
        production = self._productions.pop(name)
        for instantiation in list(self.conflict_set):
            if instantiation.production is production:
                self.conflict_set.delete(instantiation)

    def add_wme(self, wme: WME) -> None:
        self._memory.append(wme)
        self._rematch("add", wme)

    def remove_wme(self, wme: WME) -> None:
        self._memory.remove(wme)
        self._rematch("remove", wme)

    # -- full recomputation ----------------------------------------------------

    def _rematch(self, kind: str, changed: WME) -> None:
        self._comparisons = 0
        self._tokens_built = 0
        affected = sum(
            1
            for production in self._productions.values()
            if any(wme_passes_alpha(changed, a) for a in production.analysis)
        )

        fresh: dict[tuple, Instantiation] = {}
        for production in self._productions.values():
            for instantiation in self._match_production(production):
                fresh[instantiation.key] = instantiation

        for instantiation in list(self.conflict_set):
            if instantiation.key not in fresh:
                self.conflict_set.delete(instantiation)
        current = self.conflict_set.snapshot()
        for key, instantiation in fresh.items():
            if key not in current:
                self.conflict_set.insert(instantiation)

        self.stats.record(
            ChangeRecord(
                kind=kind,
                wme_class=changed.cls,
                affected_productions=affected,
                node_activations=0,
                comparisons=self._comparisons,
                tokens_built=self._tokens_built,
            )
        )

    def _match_production(self, production: Production) -> list[Instantiation]:
        """All instantiations of *production* against current memory."""
        results: list[Instantiation] = []
        self._extend(production, 0, {}, [], results)
        return results

    def _extend(
        self,
        production: Production,
        index: int,
        bindings: Bindings,
        matched: list[WME],
        results: list[Instantiation],
    ) -> None:
        if index == len(production.conditions):
            results.append(Instantiation(production, tuple(matched), bindings))
            return
        ce = production.conditions[index]
        if ce.negated:
            for wme in self._memory:
                self._comparisons += 1
                if ce.match(wme, bindings) is not None:
                    return  # a matching WME kills this branch
            self._extend(production, index + 1, bindings, matched, results)
            return
        for wme in self._memory:
            self._comparisons += 1
            extended = ce.match(wme, bindings)
            if extended is not None:
                self._tokens_built += 1
                matched.append(wme)
                self._extend(production, index + 1, extended, matched, results)
                matched.pop()

    # -- introspection helpers (used by analysis & tests) -----------------------

    def memory_size(self) -> int:
        return len(self._memory)
