"""The non-state-saving matcher (Section 3.1 baseline).

Re-matches the complete working memory against every production on each
change.  Hopeless for performance -- which is the paper's point -- but
its directness makes it the reference semantics that Rete and TREAT are
differentially tested against.
"""

from .matcher import NaiveMatcher

__all__ = ["NaiveMatcher"]
