"""The TREAT match algorithm (Miranker; used on DADO).

TREAT sits at the *low* end of the paper's state-saving spectrum
(Section 3.2): it stores only alpha memories -- the WMEs matching each
individual condition element -- and recomputes cross-CE joins on every
working-memory change, seeded by the changed WME.  Deletions are cheap
(drop every conflict-set entry containing the WME); additions pay for a
seed join per affected condition element.

Semantics notes
---------------
* **Duplicate suppression** for a WME matching several CEs of one
  production: a seed join at LHS position *k* draws candidates for
  positions ``< k`` from the alpha memory *excluding* the new WME and
  for positions ``> k`` from the full memory, so a tuple using the WME
  at multiple positions is generated exactly once (at its first
  position).
* **Negated CEs** are evaluated against bindings *restricted to the
  variables bound by positive CEs at earlier LHS positions* -- the same
  position semantics Rete implements structurally.  Without the
  restriction, a variable name reused after the negation would
  over-constrain it.
* **Join ordering** is dynamic: positions are evaluated smallest
  candidate set first, subject to predicate-binding dependencies
  (:mod:`repro.treat.seed`).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..ops5.condition import Bindings, CEAnalysis, wme_passes_alpha
from ..ops5.matcher import ChangeRecord, Matcher
from ..ops5.production import Instantiation, Production
from ..ops5.wme import WME
from .seed import order_positions


def _alpha_key(analysis: CEAnalysis) -> tuple:
    """A canonical key identifying a CE's alpha pattern (for sharing)."""
    tests = tuple(sorted((a, repr(t)) for a, t in analysis.alpha_tests))
    intra = tuple(sorted(analysis.intra_tests))
    return (analysis.ce.cls, tests, intra)


class _CompiledProduction:
    """Per-production precomputation for the seed joins."""

    def __init__(self, production: Production) -> None:
        self.production = production
        self.analyses = production.analysis
        self.alpha_keys = [_alpha_key(a) for a in self.analyses]
        self.positive = [a for a in self.analyses if not a.ce.negated]
        self.negated = [a for a in self.analyses if a.ce.negated]
        # For each negated CE: the variables visible to it (bound by
        # positive CEs at earlier LHS positions).
        self.visible_vars: dict[int, frozenset[str]] = {}
        bound: set[str] = set()
        for analysis in self.analyses:
            if analysis.ce.negated:
                self.visible_vars[analysis.index] = frozenset(bound)
            else:
                bound.update(analysis.binders)


class TreatMatcher(Matcher):
    """Alpha-memory-only state saving with per-change seed joins."""

    def __init__(self) -> None:
        super().__init__()
        self._compiled: dict[str, _CompiledProduction] = {}
        #: Shared alpha memories: alpha key -> {timetag: wme}.
        self._amem: dict[tuple, dict[int, WME]] = {}
        #: One representative CE analysis per alpha key (any CE with the
        #: same key has identical alpha semantics).
        self._alpha_reps: dict[tuple, CEAnalysis] = {}
        self._wmes: dict[int, WME] = {}
        self._comparisons = 0
        self._tokens_built = 0

    # -- Matcher interface ---------------------------------------------------

    @property
    def productions(self) -> Iterable[Production]:
        return (c.production for c in self._compiled.values())

    def add_production(self, production: Production) -> None:
        compiled = _CompiledProduction(production)
        self._compiled[production.name] = compiled
        for analysis, key in zip(compiled.analyses, compiled.alpha_keys):
            if key not in self._amem:
                self._amem[key] = {
                    tag: wme
                    for tag, wme in self._wmes.items()
                    if wme_passes_alpha(wme, analysis)
                }
                self._alpha_reps[key] = analysis
        for instantiation in self._full_join(compiled):
            if instantiation not in self.conflict_set:
                self.conflict_set.insert(instantiation)

    def remove_production(self, name: str) -> None:
        compiled = self._compiled.pop(name)
        for instantiation in list(self.conflict_set):
            if instantiation.production is compiled.production:
                self.conflict_set.delete(instantiation)
        live_keys = {
            key for c in self._compiled.values() for key in c.alpha_keys
        }
        for key in set(compiled.alpha_keys) - live_keys:
            self._amem.pop(key, None)
            self._alpha_reps.pop(key, None)

    def add_wme(self, wme: WME) -> None:
        self._comparisons = 0
        self._tokens_built = 0
        self._wmes[wme.timetag] = wme
        affected: set[str] = set()

        # Phase 1: update alpha memories (and find where the WME landed).
        landed: set[tuple] = set()
        for key, analysis in self._alpha_reps.items():
            if wme_passes_alpha(wme, analysis):
                self._amem[key][wme.timetag] = wme
                landed.add(key)

        # Phase 2: seed joins for positive CEs; negation blocking checks.
        for compiled in self._compiled.values():
            hits = [
                a
                for a, key in zip(compiled.analyses, compiled.alpha_keys)
                if key in landed
            ]
            if hits:
                affected.add(compiled.production.name)
            for analysis in hits:
                if analysis.ce.negated:
                    self._block_with(compiled, analysis, wme)
                else:
                    for instantiation in self._seed_join(compiled, analysis.index, wme):
                        self.conflict_set.insert(instantiation)

        self._record("add", wme, affected)

    def remove_wme(self, wme: WME) -> None:
        self._comparisons = 0
        self._tokens_built = 0
        del self._wmes[wme.timetag]
        affected: set[str] = set()

        # Phase 1: find which alpha memories held it, and drop it.
        held: set[tuple] = set()
        for key, memory in self._amem.items():
            if wme.timetag in memory:
                del memory[wme.timetag]
                held.add(key)

        # Phase 2: retract every instantiation carrying the WME (cheap),
        # then unblock negations the WME was the last blocker of.
        for instantiation in list(self.conflict_set):
            if wme.timetag in instantiation.timetags:
                self.conflict_set.delete(instantiation)

        for compiled in self._compiled.values():
            touched = [
                a
                for a, key in zip(compiled.analyses, compiled.alpha_keys)
                if key in held
            ]
            if touched:
                affected.add(compiled.production.name)
            for analysis in touched:
                if analysis.ce.negated:
                    self._unblock_from(compiled, analysis, wme)

        self._record("remove", wme, affected)

    # -- join machinery -----------------------------------------------------------

    def _memory(self, compiled: _CompiledProduction, index: int) -> dict[int, WME]:
        return self._amem[compiled.alpha_keys[index]]

    def _full_join(self, compiled: _CompiledProduction) -> list[Instantiation]:
        """All instantiations of a production (used at registration)."""
        return self._join(compiled, seed_index=None, seed_wme=None, neg_seed=None)

    def _seed_join(
        self, compiled: _CompiledProduction, seed_index: int, wme: WME
    ) -> list[Instantiation]:
        """New instantiations using *wme* at positive position *seed_index*."""
        return self._join(compiled, seed_index=seed_index, seed_wme=wme, neg_seed=None)

    def _join(
        self,
        compiled: _CompiledProduction,
        seed_index: Optional[int],
        seed_wme: Optional[WME],
        neg_seed: Optional[tuple[CEAnalysis, WME]],
    ) -> list[Instantiation]:
        """The backtracking join over positive CEs.

        ``neg_seed`` (analysis, wme) restricts results to assignments the
        given WME *was* blocking at the given negated CE -- the unblock
        search after a deletion.
        """
        analyses = compiled.analyses

        def candidate_count(index: int) -> int:
            if index == seed_index:
                return 1
            return len(self._memory(compiled, index))

        order = order_positions(analyses, candidate_count)
        results: list[Instantiation] = []
        assignment: dict[int, WME] = {}

        def backtrack(step: int, bindings: Bindings) -> None:
            if step == len(order):
                self._finish_assignment(compiled, assignment, bindings, neg_seed, results)
                return
            index = order[step]
            analysis = analyses[index]
            if index == seed_index:
                assert seed_wme is not None
                candidates: Iterable[WME] = (seed_wme,)
            else:
                candidates = list(self._memory(compiled, index).values())
            for wme in candidates:
                # Duplicate suppression: the new WME may only appear at
                # LHS positions >= the seed, so a tuple using it several
                # times is generated exactly once (seeded at its first).
                if (
                    seed_wme is not None
                    and wme is seed_wme
                    and seed_index is not None
                    and index < seed_index
                ):
                    continue
                self._comparisons += 1
                extended = analysis.ce.match(wme, bindings)
                if extended is None:
                    continue
                self._tokens_built += 1
                assignment[index] = wme
                backtrack(step + 1, extended)
                del assignment[index]

        backtrack(0, {})
        return results

    def _finish_assignment(
        self,
        compiled: _CompiledProduction,
        assignment: dict[int, WME],
        bindings: Bindings,
        neg_seed: Optional[tuple[CEAnalysis, WME]],
        results: list[Instantiation],
    ) -> None:
        """Validate negations for a complete positive assignment."""
        for analysis in compiled.negated:
            visible = {
                v: bindings[v]
                for v in compiled.visible_vars[analysis.index]
                if v in bindings
            }
            if self._blocked(compiled, analysis, visible):
                return
        if neg_seed is not None:
            analysis, removed = neg_seed
            visible = {
                v: bindings[v]
                for v in compiled.visible_vars[analysis.index]
                if v in bindings
            }
            self._comparisons += 1
            if analysis.ce.match(removed, dict(visible)) is None:
                return  # the removed WME was not blocking this assignment
        ordered = [assignment[i] for i in sorted(assignment)]
        results.append(Instantiation(compiled.production, tuple(ordered), bindings))

    def _blocked(
        self, compiled: _CompiledProduction, analysis: CEAnalysis, visible: Bindings
    ) -> bool:
        for wme in self._memory(compiled, analysis.index).values():
            self._comparisons += 1
            if analysis.ce.match(wme, dict(visible)) is not None:
                return True
        return False

    # -- negation event handling ------------------------------------------------

    def _block_with(
        self, compiled: _CompiledProduction, analysis: CEAnalysis, wme: WME
    ) -> None:
        """A WME arrived at a negated CE: retract newly blocked entries."""
        for instantiation in list(self.conflict_set):
            if instantiation.production is not compiled.production:
                continue
            visible = {
                v: instantiation.bindings[v]
                for v in compiled.visible_vars[analysis.index]
                if v in instantiation.bindings
            }
            self._comparisons += 1
            if analysis.ce.match(wme, visible) is not None:
                self.conflict_set.delete(instantiation)

    def _unblock_from(
        self, compiled: _CompiledProduction, analysis: CEAnalysis, wme: WME
    ) -> None:
        """A WME left a negated CE: add assignments it alone was blocking."""
        for instantiation in self._join(
            compiled, seed_index=None, seed_wme=None, neg_seed=(analysis, wme)
        ):
            if instantiation not in self.conflict_set:
                self.conflict_set.insert(instantiation)

    # -- bookkeeping -----------------------------------------------------------

    def _record(self, kind: str, wme: WME, affected: set[str]) -> None:
        self.stats.record(
            ChangeRecord(
                kind=kind,
                wme_class=wme.cls,
                affected_productions=len(affected),
                node_activations=0,
                comparisons=self._comparisons,
                tokens_built=self._tokens_built,
            )
        )

    def state_size(self) -> dict[str, int]:
        """Stored state: alpha WMEs only (the Section 3.2 comparison)."""
        return {
            "alpha_wmes": sum(len(m) for m in self._amem.values()),
            "beta_tokens": 0,
        }

    def memory_size(self) -> int:
        return len(self._wmes)
