"""The TREAT match algorithm -- the low end of the state-saving spectrum.

TREAT (developed for the DADO machine; paper Sections 3.2 and 7.1)
stores only alpha memories and recomputes cross-condition joins on every
change, seeded by the changed WME, with a dynamic join ordering.
"""

from .matcher import TreatMatcher
from .seed import hard_dependencies, order_positions

__all__ = ["TreatMatcher", "hard_dependencies", "order_positions"]
