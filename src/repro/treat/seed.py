"""Condition-ordering heuristics for TREAT's per-change seed joins.

TREAT recomputes cross-CE joins on every change.  Because it keeps no
beta state, it is free to pick the join order per change -- the paper
(Section 7.1) notes this as TREAT's compensating advantage: "it is now
possible to dynamically change the evaluation order of multiple
condition element satisfaction".

The order must respect one hard constraint: a condition element whose
join tests include a *predicate* (non-equality) referencing a variable
must be evaluated after the condition element that binds that variable.
Equality (shared-variable) tests carry no such constraint: the matcher's
binding environment enforces consistency in either direction.

:func:`order_positions` performs a greedy topological sort preferring
small candidate sets first (the classic seed-ordering heuristic; the
seeded position has a single candidate, so it naturally sorts early).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..ops5.condition import CEAnalysis, Predicate


def hard_dependencies(analyses: Sequence[CEAnalysis]) -> dict[int, set[int]]:
    """Map each positive CE index to the CE indices it must follow.

    Only non-equality join predicates create dependencies; their operand
    must already be bound when the test runs.  Dependencies on negated
    CEs cannot occur (negated CEs never export bindings), and intra-CE
    predicates (``other_ce == index``) are self-satisfied.
    """
    deps: dict[int, set[int]] = {a.index: set() for a in analyses if not a.ce.negated}
    for analysis in analyses:
        if analysis.ce.negated:
            continue
        for test in analysis.join_tests:
            if test.predicate is Predicate.EQ:
                continue
            if test.other_ce != analysis.index:
                deps[analysis.index].add(test.other_ce)
    return deps


def order_positions(
    analyses: Sequence[CEAnalysis],
    candidate_count: Callable[[int], int],
) -> list[int]:
    """Choose an evaluation order over the positive CE indices.

    Greedy: among CEs whose hard dependencies are already placed, take
    the one with the fewest current candidates.  The LHS is validated so
    that LHS order always satisfies the dependencies; therefore the
    greedy loop can never deadlock (the lowest-index remaining CE is
    always eligible eventually), but we keep a defensive fallback.
    """
    deps = hard_dependencies(analyses)
    remaining = set(deps)
    order: list[int] = []
    placed: set[int] = set()
    while remaining:
        ready = [i for i in remaining if deps[i] <= placed]
        if not ready:  # pragma: no cover - unreachable on validated LHS
            order.extend(sorted(remaining))
            break
        ready.sort(key=lambda i: (candidate_count(i), i))
        chosen = ready[0]
        order.append(chosen)
        placed.add(chosen)
        remaining.discard(chosen)
    return order
