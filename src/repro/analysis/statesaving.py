"""Section 3.1: state-saving vs. non-state-saving match algorithms.

The paper's model: let working memory have stable size *s*, with *i*
inserts and *d* deletes per cycle.  A state-saving algorithm (Rete)
costs ``C_ss = i*c1 + d*c2`` per cycle; a non-state-saving algorithm
costs ``C_nss = s*c3``.  With the measured ``c1 = c2 = 1800`` and
``c3 = 1100`` instructions, state saving wins whenever::

    (i + d) / s  <  c3 / c1  ~  0.61

Measured OPS5 programs change well under 0.5% of working memory per
cycle, so a non-state-saving algorithm starts with an inefficiency
factor around 20 to recover.

This module provides the analytic model and an empirical counterpart:
run the same program through the Rete and naive matchers and compare
the actual match effort they spend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..naive.matcher import NaiveMatcher
from ..ops5.engine import ProductionSystem, RunResult
from ..rete.network import ReteNetwork
from ..trace.costmodel import (
    C1_INSTRUCTIONS_PER_INSERT,
    C2_INSTRUCTIONS_PER_DELETE,
    C3_INSTRUCTIONS_PER_WME,
)


@dataclass(frozen=True)
class CostModelParameters:
    """The Section 3.1 constants, overridable for sensitivity studies."""

    c1: float = C1_INSTRUCTIONS_PER_INSERT
    c2: float = C2_INSTRUCTIONS_PER_DELETE
    c3: float = C3_INSTRUCTIONS_PER_WME


def state_saving_cost(inserts: float, deletes: float, params: CostModelParameters = CostModelParameters()) -> float:
    """Per-cycle cost of the state-saving algorithm (instructions)."""
    return inserts * params.c1 + deletes * params.c2


def non_state_saving_cost(memory_size: float, params: CostModelParameters = CostModelParameters()) -> float:
    """Per-cycle cost of the non-state-saving algorithm (instructions)."""
    return memory_size * params.c3


def breakeven_turnover(params: CostModelParameters = CostModelParameters()) -> float:
    """The (i+d)/s threshold below which state saving wins (paper: 0.61).

    Derived for the c1 = c2 case the paper analyses; with asymmetric
    costs the threshold applies to the cost-weighted turnover.
    """
    return params.c3 / params.c1


def turnover(inserts: float, deletes: float, memory_size: float) -> float:
    """The (i+d)/s ratio for one cycle."""
    if memory_size <= 0:
        raise ValueError("memory size must be positive")
    return (inserts + deletes) / memory_size


def state_saving_advantage(
    inserts: float,
    deletes: float,
    memory_size: float,
    params: CostModelParameters = CostModelParameters(),
) -> float:
    """How many times cheaper state saving is for the given cycle.

    The paper's "factor of about 20" corresponds to turnover around
    0.5% x the 0.61 threshold... precisely: advantage = C_nss / C_ss.
    """
    return non_state_saving_cost(memory_size, params) / state_saving_cost(
        inserts, deletes, params
    )


@dataclass
class EmpiricalComparison:
    """Measured match effort of Rete vs. the naive matcher on one run."""

    program: str
    cycles: int
    mean_memory_size: float
    mean_changes_per_cycle: float
    rete_comparisons: int
    naive_comparisons: int

    @property
    def mean_turnover(self) -> float:
        """(i+d)/s averaged over the run."""
        if self.mean_memory_size == 0:
            return 0.0
        return self.mean_changes_per_cycle / self.mean_memory_size

    @property
    def measured_advantage(self) -> float:
        """Naive effort / Rete effort (comparison counts)."""
        if self.rete_comparisons == 0:
            return float("inf")
        return self.naive_comparisons / self.rete_comparisons


def compare_matchers(
    build: Callable[..., ProductionSystem], name: str, max_cycles: int | None = None
) -> EmpiricalComparison:
    """Run *build()* twice -- Rete and naive -- and compare match effort.

    ``build`` must accept a ``matcher=`` keyword (the programs in
    :mod:`repro.workloads.programs` all do).
    """
    rete_system = build(matcher=ReteNetwork())
    sizes: list[int] = []
    rete_result = _run_tracking_size(rete_system, sizes, max_cycles)

    naive_system = build(matcher=NaiveMatcher())
    naive_result = naive_system.run(max_cycles)
    if naive_result.fired != rete_result.fired:  # pragma: no cover - matcher bug tripwire
        raise AssertionError(
            f"matchers disagree on {name}: rete fired {rete_result.fired}, "
            f"naive fired {naive_result.fired}"
        )

    return EmpiricalComparison(
        program=name,
        cycles=rete_result.fired,
        mean_memory_size=sum(sizes) / len(sizes) if sizes else 0.0,
        mean_changes_per_cycle=rete_result.mean_changes_per_firing,
        rete_comparisons=rete_system.matcher.stats.total_comparisons,
        naive_comparisons=naive_system.matcher.stats.total_comparisons,
    )


def _run_tracking_size(
    system: ProductionSystem, sizes: list[int], max_cycles: int | None
) -> RunResult:
    """Step the engine, sampling working-memory size per cycle."""
    fired = 0
    while not system.halted and (max_cycles is None or fired < max_cycles):
        sizes.append(len(system.memory))
        if system.step() is None:
            break
        fired += 1
    return RunResult(
        fired=fired,
        halted=system.halted,
        halt_reason="",
        cycles=list(system.cycles[-fired:]) if fired else [],
        output=list(system.output),
    )
