"""Section 3.2: the state-storing spectrum -- TREAT, Rete, all-pairs.

Three points on the spectrum of how much match state an algorithm
stores:

* **TREAT** (low end): WMEs matching individual condition elements
  (alpha state) only;
* **Rete** (middle): alpha state plus tokens for one *fixed* chain of
  CE prefixes per production;
* **Oflazer's scheme** (high end): tokens for *all* combinations of
  condition elements.

:func:`measure_spectrum` loads the same program + working memory into
all three and reports the live state volumes.  The all-combinations
scheme is computed analytically: for every production and every
non-empty subset of its positive condition elements, the number of WME
tuples satisfying the subset with consistent bindings.  Rete's stored
prefixes are a subset of those combinations, so the ordering
TREAT <= Rete <= all-combinations holds by construction -- the paper's
spectrum.  (Negated CEs are excluded from the combination count, making
it still slightly conservative.)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Sequence

from ..ops5.condition import Bindings
from ..ops5.engine import ProductionSystem
from ..ops5.production import Production
from ..ops5.wme import WME
from ..rete.network import ReteNetwork
from ..treat.matcher import TreatMatcher


@dataclass(frozen=True)
class SpectrumPoint:
    """State volume of one algorithm on one snapshot."""

    algorithm: str
    alpha_state: int
    beta_state: int

    @property
    def total(self) -> int:
        return self.alpha_state + self.beta_state


@dataclass
class SpectrumReport:
    """The three spectrum points for one program snapshot."""

    program: str
    treat: SpectrumPoint
    rete: SpectrumPoint
    all_pairs: SpectrumPoint

    def ordered(self) -> list[SpectrumPoint]:
        """Low to high, the paper's spectrum ordering."""
        return [self.treat, self.rete, self.all_pairs]


def _count_matches(
    ces: Sequence, memory: Sequence[WME], index: int, bindings: Bindings
) -> int:
    """Tuples of WMEs satisfying ``ces[index:]`` under *bindings*."""
    if index == len(ces):
        return 1
    total = 0
    for wme in memory:
        extended = ces[index].match(wme, bindings)
        if extended is not None:
            total += _count_matches(ces, memory, index + 1, extended)
    return total


def _combination_state(
    productions: Sequence[Production], memory: Sequence[WME], max_subset: int = 6
) -> int:
    """Token count of the all-combinations scheme (Oflazer, Section 3.2).

    Counts, for every production and every non-empty subset of its
    positive CEs (of size >= 2; singletons are reported separately), the
    consistent WME tuples.  ``max_subset`` caps the subset size to keep
    the enumeration tractable on big LHSs.
    """
    total = 0
    for production in productions:
        positive = [ce for ce in production.conditions if not ce.negated]
        for size in range(2, min(len(positive), max_subset) + 1):
            for subset in itertools.combinations(positive, size):
                total += _count_matches(subset, memory, 0, {})
    return total


def _singleton_state(productions: Sequence[Production], memory: Sequence[WME]) -> int:
    """WMEs matching individual CEs, counted per (production, CE)."""
    empty: Bindings = {}
    total = 0
    for production in productions:
        for ce in production.conditions:
            for wme in memory:
                if ce.match(wme, dict(empty)) is not None:
                    total += 1
    return total


def measure_spectrum(
    build: Callable[..., ProductionSystem], name: str, max_cycles: int | None = 20
) -> SpectrumReport:
    """Run a program under Rete and TREAT; report all three state sizes.

    The snapshot is taken after ``max_cycles`` firings (or at halt), so
    the state reflects a mid-run working memory rather than the initial
    load.
    """
    rete_system = build(matcher=ReteNetwork())
    rete_system.run(max_cycles)
    rete_sizes = rete_system.matcher.state_size()

    treat_system = build(matcher=TreatMatcher())
    treat_system.run(max_cycles)
    treat_sizes = treat_system.matcher.state_size()

    productions = list(rete_system.matcher.productions)
    memory = rete_system.memory.snapshot()
    singles = _singleton_state(productions, memory)
    combinations = _combination_state(productions, memory)

    return SpectrumReport(
        program=name,
        treat=SpectrumPoint("treat", treat_sizes["alpha_wmes"], 0),
        rete=SpectrumPoint("rete", rete_sizes["alpha_wmes"], rete_sizes["beta_tokens"]),
        all_pairs=SpectrumPoint("all-combinations", singles, combinations),
    )


def measure_spectrum_live(
    build: Callable[..., ProductionSystem], name: str, max_cycles: int | None = 20
) -> SpectrumReport:
    """Like :func:`measure_spectrum`, but the high end is *measured*.

    Runs the program under all three state-saving matchers -- TREAT,
    Rete, and the all-combinations :class:`CombinationMatcher`
    (:mod:`repro.oflazer`) -- and reads each one's live
    ``state_size()``.  The analytic variant stays useful for LHSs too
    wide to enumerate; this one is ground truth.
    """
    from ..oflazer.matcher import CombinationMatcher  # heavy; import on demand

    points: dict[str, SpectrumPoint] = {}
    for label, matcher_factory in (
        ("treat", TreatMatcher),
        ("rete", ReteNetwork),
        ("all-combinations", CombinationMatcher),
    ):
        system = build(matcher=matcher_factory())
        system.run(max_cycles)
        sizes = system.matcher.state_size()
        points[label] = SpectrumPoint(label, sizes["alpha_wmes"], sizes["beta_tokens"])
    return SpectrumReport(
        program=name,
        treat=points["treat"],
        rete=points["rete"],
        all_pairs=points["all-combinations"],
    )
