"""Static and dynamic program measurements (Gupta & Forgy's tables).

The paper repeatedly leans on its companion measurement study
("Measurements on Production Systems", CMU-CS-83-167): the number of
condition elements per production, attributes per CE, the share of
negated CEs, working-memory turnover, affected productions per change,
and so on.  This module reproduces those tables for any program this
library can run:

* :func:`measure_static` -- structure of the *program text*: CE counts,
  test mixes, action mixes, class/attribute vocabulary;
* :func:`measure_dynamic` -- behaviour of a *run*: WM size over time,
  changes per firing, affected productions, match effort, token traffic.

Both return plain dataclasses that render via
:func:`repro.analysis.reports.render_table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..ops5.actions import Make, Modify, Remove, Write
from ..ops5.condition import (
    ConjunctiveTest,
    ConstantTest,
    DisjunctiveTest,
    PredicateTest,
    Test,
    VariableTest,
)
from ..ops5.engine import ProductionSystem
from ..ops5.production import Production
from ..rete.network import ReteNetwork
from ..rete.stats import collect_stats


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


@dataclass
class StaticStatistics:
    """Structure of a production-system program (no run needed)."""

    program: str
    productions: int = 0
    condition_elements: int = 0
    negated_condition_elements: int = 0
    actions: int = 0
    classes: int = 0
    attributes: int = 0
    variables: int = 0
    #: Elementary test counts by flavour.
    constant_tests: int = 0
    variable_tests: int = 0
    predicate_tests: int = 0
    disjunctive_tests: int = 0
    #: Action counts by flavour.
    makes: int = 0
    removes: int = 0
    modifies: int = 0
    writes: int = 0
    other_actions: int = 0
    ces_per_production: list[int] = field(default_factory=list)
    actions_per_production: list[int] = field(default_factory=list)

    @property
    def mean_ces_per_production(self) -> float:
        """Gupta & Forgy measured ~3 CEs per production on average."""
        return _mean(self.ces_per_production)

    @property
    def mean_actions_per_production(self) -> float:
        return _mean(self.actions_per_production)

    @property
    def negation_share(self) -> float:
        """Fraction of CEs that are negated (measured ~10-25%)."""
        if not self.condition_elements:
            return 0.0
        return self.negated_condition_elements / self.condition_elements

    def rows(self) -> list[tuple[str, object]]:
        return [
            ("productions", self.productions),
            ("condition elements", self.condition_elements),
            ("  mean per production", round(self.mean_ces_per_production, 2)),
            ("  negated share", f"{self.negation_share:.1%}"),
            ("actions", self.actions),
            ("  mean per production", round(self.mean_actions_per_production, 2)),
            ("distinct classes", self.classes),
            ("distinct attributes", self.attributes),
            ("distinct variables", self.variables),
            ("constant tests", self.constant_tests),
            ("variable tests", self.variable_tests),
            ("predicate tests", self.predicate_tests),
            ("disjunctive tests", self.disjunctive_tests),
            ("make / remove / modify / write",
             f"{self.makes}/{self.removes}/{self.modifies}/{self.writes}"),
        ]


def _count_tests(stats: StaticStatistics, test: Test) -> None:
    if isinstance(test, ConstantTest):
        stats.constant_tests += 1
    elif isinstance(test, VariableTest):
        stats.variable_tests += 1
    elif isinstance(test, PredicateTest):
        stats.predicate_tests += 1
    elif isinstance(test, DisjunctiveTest):
        stats.disjunctive_tests += 1
    elif isinstance(test, ConjunctiveTest):
        for inner in test.tests:
            _count_tests(stats, inner)


def measure_static(
    productions: Sequence[Production], program_name: str = "program"
) -> StaticStatistics:
    """Tabulate the structure of *productions*."""
    stats = StaticStatistics(program=program_name)
    classes: set[str] = set()
    attributes: set[str] = set()
    variables: set[str] = set()

    for production in productions:
        stats.productions += 1
        stats.ces_per_production.append(len(production.conditions))
        stats.actions_per_production.append(len(production.actions))
        for ce in production.conditions:
            stats.condition_elements += 1
            if ce.negated:
                stats.negated_condition_elements += 1
            classes.add(ce.cls)
            for attribute, test in ce.tests.items():
                attributes.add(attribute)
                _count_tests(stats, test)
            variables.update(ce.variables())
        for action in production.actions:
            stats.actions += 1
            if isinstance(action, Make):
                stats.makes += 1
            elif isinstance(action, Remove):
                stats.removes += 1
            elif isinstance(action, Modify):
                stats.modifies += 1
            elif isinstance(action, Write):
                stats.writes += 1
            else:
                stats.other_actions += 1

    stats.classes = len(classes)
    stats.attributes = len(attributes)
    stats.variables = len(variables)
    return stats


@dataclass
class DynamicStatistics:
    """Behaviour of one run under the instrumented Rete network."""

    program: str
    firings: int = 0
    changes: int = 0
    peak_memory: int = 0
    mean_memory: float = 0.0
    mean_changes_per_firing: float = 0.0
    mean_affected_per_change: float = 0.0
    max_affected_per_change: int = 0
    mean_activations_per_change: float = 0.0
    total_comparisons: int = 0
    total_tokens_built: int = 0
    network_nodes: int = 0
    sharing_ratio: float = 0.0

    @property
    def turnover_percent(self) -> float:
        """(i+d)/s as a percentage (the paper's '< 0.5%' statistic)."""
        if self.mean_memory == 0 or self.firings == 0:
            return 0.0
        return 100.0 * self.mean_changes_per_firing / self.mean_memory

    def rows(self) -> list[tuple[str, object]]:
        return [
            ("firings", self.firings),
            ("wme changes", self.changes),
            ("  per firing", round(self.mean_changes_per_firing, 2)),
            ("working memory (mean / peak)",
             f"{self.mean_memory:.1f} / {self.peak_memory}"),
            ("turnover per cycle", f"{self.turnover_percent:.2f}%"),
            ("affected productions (mean / max)",
             f"{self.mean_affected_per_change:.2f} / {self.max_affected_per_change}"),
            ("node activations per change",
             round(self.mean_activations_per_change, 2)),
            ("comparisons", self.total_comparisons),
            ("tokens built", self.total_tokens_built),
            ("rete nodes", self.network_nodes),
            ("sharing ratio", round(self.sharing_ratio, 2)),
        ]


def measure_dynamic(
    build: Callable[..., ProductionSystem],
    program_name: str = "program",
    max_cycles: int | None = None,
) -> DynamicStatistics:
    """Run *build()* under Rete and tabulate the run's behaviour."""
    system = build(matcher=ReteNetwork())
    sizes: list[int] = []
    fired = 0
    while not system.halted and (max_cycles is None or fired < max_cycles):
        sizes.append(len(system.memory))
        if system.step() is None:
            break
        fired += 1

    match_stats = system.matcher.stats
    network = collect_stats(system.matcher)
    affected = [c.affected_productions for c in match_stats.changes]
    activations = [c.node_activations for c in match_stats.changes]
    per_firing = [c.changes for c in system.cycles[:fired]]

    return DynamicStatistics(
        program=program_name,
        firings=fired,
        changes=match_stats.total_changes,
        peak_memory=max(sizes, default=0),
        mean_memory=_mean(sizes),
        mean_changes_per_firing=_mean(per_firing),
        mean_affected_per_change=_mean(affected),
        max_affected_per_change=max(affected, default=0),
        mean_activations_per_change=_mean(activations),
        total_comparisons=match_stats.total_comparisons,
        total_tokens_built=match_stats.total_tokens_built,
        network_nodes=network.total_nodes,
        sharing_ratio=network.sharing_ratio,
    )
