"""Measurement and analysis: the paper's quantitative arguments.

* :mod:`repro.analysis.statesaving` -- Section 3.1's cost model and the
  empirical Rete-vs-naive effort comparison;
* :mod:`repro.analysis.spectrum` -- Section 3.2's state-storing
  spectrum (TREAT / Rete / all-pairs);
* :mod:`repro.analysis.affected` -- Sections 4 & 8's three limiting
  factors, measured on programs and traces;
* :mod:`repro.analysis.reports` -- table/series rendering for benches.
"""

from .affected import ParallelismFactors, measure_program, measure_trace
from .measurements import (
    DynamicStatistics,
    StaticStatistics,
    measure_dynamic,
    measure_static,
)
from .reports import render_csv, render_series, render_table
from .spectrum import (
    SpectrumPoint,
    SpectrumReport,
    measure_spectrum,
    measure_spectrum_live,
)
from .statesaving import (
    CostModelParameters,
    EmpiricalComparison,
    breakeven_turnover,
    compare_matchers,
    non_state_saving_cost,
    state_saving_advantage,
    state_saving_cost,
    turnover,
)

__all__ = [
    "CostModelParameters",
    "DynamicStatistics",
    "EmpiricalComparison",
    "ParallelismFactors",
    "SpectrumPoint",
    "StaticStatistics",
    "SpectrumReport",
    "breakeven_turnover",
    "compare_matchers",
    "measure_dynamic",
    "measure_program",
    "measure_spectrum",
    "measure_spectrum_live",
    "measure_static",
    "measure_trace",
    "non_state_saving_cost",
    "render_csv",
    "render_series",
    "render_table",
    "state_saving_advantage",
    "state_saving_cost",
    "turnover",
]
