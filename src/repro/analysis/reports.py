"""Plain-text table rendering for benches and examples.

Keeps the benchmark harness output in the shape of the paper's tables
and figure series without pulling in a plotting dependency.
"""

from __future__ import annotations

from typing import Any, Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Monospace table: auto-sized columns, numbers right-aligned."""
    columns = len(headers)
    texts = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in texts)) if texts else len(headers[i])
        for i in range(columns)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(headers[i].ljust(widths[i]) for i in range(columns)).rstrip()
    )
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row, raw in zip(texts, rows):
        cells = []
        for i in range(columns):
            if isinstance(raw[i], (int, float)) and not isinstance(raw[i], bool):
                cells.append(row[i].rjust(widths[i]))
            else:
                cells.append(row[i].ljust(widths[i]))
        lines.append("  ".join(cells).rstrip())
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[float]],
    title: str = "",
    precision: int = 2,
) -> str:
    """A figure rendered as one row per x value, one column per curve."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [round(series[name][i], precision) for name in series])
    return render_table(headers, rows, title)


def render_csv(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """The same table as comma-separated values (for replotting).

    Minimal quoting: fields containing commas or quotes are quoted with
    doubled inner quotes, per RFC 4180.
    """

    def field(cell: Any) -> str:
        text = str(cell)
        if any(ch in text for ch in ',"\n'):
            return '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(field(h) for h in headers)]
    for row in rows:
        lines.append(",".join(field(cell) for cell in row))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:,.2f}"
    if isinstance(cell, int) and not isinstance(cell, bool):
        return f"{cell:,}"
    return str(cell)
