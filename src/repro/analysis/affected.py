"""Sections 4 & 8: the three factors limiting parallelism, measured.

The paper grounds its parallelism ceiling in three workload statistics:

1. working-memory changes per cycle ("generally less than 0.5% of the
   elements change each cycle");
2. productions affected per change ("small, about 30, regardless of the
   total number of rules");
3. the variance of per-production processing cost ("a few require much
   more processing").

:func:`measure_program` extracts all three from a real run through the
instrumented Rete network; :func:`measure_trace` does the same for a
synthetic trace (where cost variance comes from the generator).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..ops5.engine import ProductionSystem
from ..rete.network import ReteNetwork
from ..trace.events import Trace


@dataclass(frozen=True)
class ParallelismFactors:
    """The paper's three limiting factors for one workload."""

    workload: str
    cycles: int
    mean_memory_size: float
    mean_changes_per_cycle: float
    mean_affected_per_change: float
    max_affected_per_change: int
    #: Coefficient of variation of per-production processing cost per
    #: change (the Section 4/8 variance argument).
    cost_variation: float

    @property
    def turnover_percent(self) -> float:
        """(i+d)/s as a percentage (the paper's '< 0.5%')."""
        if self.mean_memory_size == 0:
            return 0.0
        return 100.0 * self.mean_changes_per_cycle / self.mean_memory_size


def _coefficient_of_variation(samples: list[float]) -> float:
    if len(samples) < 2:
        return 0.0
    mean = sum(samples) / len(samples)
    if mean == 0:
        return 0.0
    variance = sum((x - mean) ** 2 for x in samples) / (len(samples) - 1)
    return math.sqrt(variance) / mean


def measure_program(
    build: Callable[..., ProductionSystem], name: str, max_cycles: int | None = None
) -> ParallelismFactors:
    """Run a real program and extract the three factors."""
    system = build(matcher=ReteNetwork())
    sizes: list[int] = []
    fired = 0
    while not system.halted and (max_cycles is None or fired < max_cycles):
        sizes.append(len(system.memory))
        if system.step() is None:
            break
        fired += 1

    stats = system.matcher.stats
    affected = [c.affected_productions for c in stats.changes]
    result_changes = [c.changes for c in system.cycles[:fired]] or [0]
    return ParallelismFactors(
        workload=name,
        cycles=fired,
        mean_memory_size=sum(sizes) / len(sizes) if sizes else 0.0,
        mean_changes_per_cycle=sum(result_changes) / len(result_changes),
        mean_affected_per_change=(sum(affected) / len(affected)) if affected else 0.0,
        max_affected_per_change=max(affected, default=0),
        cost_variation=_coefficient_of_variation(
            [float(c.comparisons + c.tokens_built) for c in stats.changes]
        ),
    )


def measure_trace(trace: Trace, stable_memory_size: float = 1000.0) -> ParallelismFactors:
    """Extract the three factors from a (synthetic) trace.

    Synthetic traces carry no working memory, so the stable size is a
    parameter (the paper's systems held hundreds to thousands of WMEs).
    """
    affected_counts: list[int] = []
    production_costs: list[float] = []
    for change in trace.iter_changes():
        per_production: dict[str, float] = {}
        for task in change.tasks:
            for production in task.productions:
                per_production[production] = per_production.get(production, 0.0) + (
                    task.cost / max(len(task.productions), 1)
                )
        affected_counts.append(len(per_production))
        production_costs.extend(per_production.values())
    firings = len(trace.firings) or 1
    return ParallelismFactors(
        workload=trace.name,
        cycles=len(trace.firings),
        mean_memory_size=stable_memory_size,
        mean_changes_per_cycle=trace.total_changes / firings,
        mean_affected_per_change=(
            sum(affected_counts) / len(affected_counts) if affected_counts else 0.0
        ),
        max_affected_per_change=max(affected_counts, default=0),
        cost_variation=_coefficient_of_variation(production_costs),
    )
