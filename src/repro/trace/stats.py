"""Trace statistics: the workload characteristics the paper quantifies.

Summarises a :class:`~repro.trace.events.Trace` along the paper's axes:

* task-size distribution -- Section 4's "average duration of a task is
  only 50-100 machine instructions";
* activations per change -- "not significantly larger than the number
  of affected productions";
* per-change parallelism profile -- work over critical path, the
  intrinsic ceiling of Figure 6-1;
* change-kind and node-kind mixes.

Use :func:`summarize` for the numbers and
:meth:`TraceStatistics.rows` for a printable table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .events import Trace


@dataclass(frozen=True)
class Distribution:
    """Summary statistics of one measured quantity."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p90: float
    maximum: float

    @classmethod
    def of(cls, values: list[float]) -> "Distribution":
        """Compute the summary for *values* (empty -> all zeros)."""
        if not values:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(values)
        n = len(ordered)
        mean = sum(ordered) / n
        variance = sum((v - mean) ** 2 for v in ordered) / n
        return cls(
            count=n,
            mean=mean,
            stdev=math.sqrt(variance),
            minimum=ordered[0],
            p50=ordered[n // 2],
            p90=ordered[min(n - 1, (9 * n) // 10)],
            maximum=ordered[-1],
        )

    def describe(self) -> str:
        return (
            f"mean {self.mean:.1f} (sd {self.stdev:.1f}), "
            f"p50 {self.p50:.0f}, p90 {self.p90:.0f}, "
            f"range {self.minimum:.0f}-{self.maximum:.0f}"
        )


@dataclass
class TraceStatistics:
    """Everything :func:`summarize` measures about one trace."""

    name: str
    firings: int
    changes: int
    tasks: int
    serial_cost: int
    task_cost: Distribution
    two_input_task_cost: Distribution
    tasks_per_change: Distribution
    affected_per_change: Distribution
    #: Per-change work / critical-path ratio: the change's intrinsic
    #: parallelism (1.0 = fully serial).
    change_parallelism: Distribution
    kind_mix: dict[str, int] = field(default_factory=dict)
    add_fraction: float = 0.0

    def rows(self) -> list[tuple[str, object]]:
        return [
            ("firings / changes / tasks",
             f"{self.firings} / {self.changes} / {self.tasks}"),
            ("serial cost (instr)", self.serial_cost),
            ("serial cost per change",
             round(self.serial_cost / self.changes, 1) if self.changes else 0),
            ("task cost", self.task_cost.describe()),
            ("two-input task cost", self.two_input_task_cost.describe()),
            ("tasks per change", self.tasks_per_change.describe()),
            ("affected productions per change", self.affected_per_change.describe()),
            ("per-change parallelism", self.change_parallelism.describe()),
            ("adds : removes",
             f"{self.add_fraction:.0%} : {1 - self.add_fraction:.0%}"),
            ("node-kind mix",
             " ".join(f"{k}:{v}" for k, v in sorted(self.kind_mix.items()))),
        ]


def summarize(trace: Trace) -> TraceStatistics:
    """Measure *trace* along the paper's workload axes."""
    task_costs: list[float] = []
    two_input_costs: list[float] = []
    tasks_per_change: list[float] = []
    affected: list[float] = []
    parallelism: list[float] = []
    kinds: dict[str, int] = {}
    adds = 0
    changes = 0

    for change in trace.iter_changes():
        changes += 1
        if change.kind == "add":
            adds += 1
        tasks_per_change.append(len(change.tasks))
        affected.append(len(change.affected_productions()))
        span = change.critical_path
        if span > 0:
            parallelism.append(change.total_cost / span)
        for task in change.tasks:
            task_costs.append(task.cost)
            kinds[task.kind] = kinds.get(task.kind, 0) + 1
            if task.kind in ("join", "neg"):
                two_input_costs.append(task.cost)

    return TraceStatistics(
        name=trace.name,
        firings=len(trace.firings),
        changes=changes,
        tasks=len(task_costs),
        serial_cost=trace.serial_cost,
        task_cost=Distribution.of(task_costs),
        two_input_task_cost=Distribution.of(two_input_costs),
        tasks_per_change=Distribution.of(tasks_per_change),
        affected_per_change=Distribution.of(affected),
        change_parallelism=Distribution.of(parallelism),
        kind_mix=kinds,
        add_fraction=adds / changes if changes else 0.0,
    )
