"""Node-activation traces and the instruction cost model.

The paper's evaluation is trace-driven (Section 6); this package defines
the trace schema (:mod:`~repro.trace.events`), the instruction-cost
model with the paper's published calibration points
(:mod:`~repro.trace.costmodel`), and the capture pipeline that records a
real OPS5 run as a task graph (:mod:`~repro.trace.generate`).
"""

from .costmodel import (
    C1_INSTRUCTIONS_PER_INSERT,
    C2_INSTRUCTIONS_PER_DELETE,
    C3_INSTRUCTIONS_PER_WME,
    UNIPROCESSOR_TIERS,
    CostModel,
    changes_per_second,
    kernel_calibrated_model,
    measured_kernel_scale,
    uniprocessor_ladder,
)
from .events import ChangeTrace, FiringTrace, Task, Trace, merge_traces
from .generate import SETUP, TraceCapture, capture_trace
from .io import load_trace, save_trace, trace_from_dict, trace_to_dict
from .stats import Distribution, TraceStatistics, summarize

__all__ = [
    "C1_INSTRUCTIONS_PER_INSERT",
    "C2_INSTRUCTIONS_PER_DELETE",
    "C3_INSTRUCTIONS_PER_WME",
    "ChangeTrace",
    "CostModel",
    "Distribution",
    "FiringTrace",
    "SETUP",
    "Task",
    "Trace",
    "TraceCapture",
    "TraceStatistics",
    "UNIPROCESSOR_TIERS",
    "capture_trace",
    "changes_per_second",
    "kernel_calibrated_model",
    "load_trace",
    "measured_kernel_scale",
    "merge_traces",
    "save_trace",
    "summarize",
    "trace_from_dict",
    "trace_to_dict",
    "uniprocessor_ladder",
]
