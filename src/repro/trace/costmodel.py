"""The instruction-cost model for node activations.

The paper's simulator takes "a cost model to help compute the cost of
processing any given node activation in the trace" (Section 6).  Its
published calibration points, which this module reproduces:

* ``c1`` -- the average cost of processing one WME insert through a
  serial Rete network: **~1800 machine instructions** (Section 3.1).
  Deletes cost the same (``c2 = c1``).
* ``c3`` -- the per-WME cost of a non-state-saving match pass:
  **~1100 instructions** (Section 3.1).
* Individual node-activation tasks average **50-100 instructions**
  (Section 4).

Per-activation costs are decomposed into a base cost per node kind, a
per-pair comparison cost, and a per-output token cost, with defaults
chosen so that typical activations land in the 50-100 instruction band
and whole changes near ``c1`` on the paper-calibrated workloads.

The module also carries the Section 2.2 *implementation ladder*: the
instructions-per-change figures implied by the published speeds of the
Lisp, Bliss, compiled-OPS83, and optimized interpreters on a 1-MIPS
VAX-11/780 (8, 40, 200, and 400-800 wme-changes/sec respectively).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rete.instrument import ActivationEvent

#: Section 3.1 constants (machine instructions).
C1_INSTRUCTIONS_PER_INSERT = 1800
C2_INSTRUCTIONS_PER_DELETE = 1800
C3_INSTRUCTIONS_PER_WME = 1100

#: Section 2.2 ladder: implementation tier -> instructions per
#: wme-change implied by its measured speed on the 1-MIPS VAX-11/780.
UNIPROCESSOR_TIERS: dict[str, int] = {
    # 8 wme-changes/sec  => 125_000 instructions per change
    "lisp-interpreted": 125_000,
    # 40 wme-changes/sec => 25_000
    "bliss-interpreted": 25_000,
    # 200 wme-changes/sec => 5_000
    "ops83-compiled": 5_000,
    # 400-800 wme-changes/sec => 1_250-2_500; we use the c1 figure, which
    # sits inside that band (555 changes/sec at 1 MIPS).
    "ops83-optimized": C1_INSTRUCTIONS_PER_INSERT,
}


@dataclass(frozen=True)
class CostModel:
    """Instruction costs for Rete node activations.

    Defaults keep a typical two-input activation (a handful of
    comparisons, zero or one output) inside the paper's 50-100
    instruction task-size band.
    """

    #: Constant/intra test evaluation (alpha network), per test.
    per_constant_test: int = 4
    #: Fixed cost of the change entering the network (hashing the class,
    #: reading the WME) -- the "root" task.
    root_base: int = 30
    #: Alpha-memory activation: insert/delete a WME in a hash table.
    amem_base: int = 30
    #: Beta-memory activation: insert/delete a token.
    bmem_base: int = 25
    #: Two-input node activation: fixed part (reading inputs, setup).
    join_base: int = 45
    neg_base: int = 50
    #: Per opposite-memory pair examined.
    per_comparison: int = 8
    #: Per output token constructed and dispatched.
    per_output: int = 20
    #: Terminal activation: conflict-set insert/delete.
    term_base: int = 40

    def activation_cost(self, event: ActivationEvent) -> int:
        """Instructions to process one recorded activation."""
        kind = event.node_kind
        if kind == "root":
            return self.root_base + self.per_constant_test * event.comparisons
        if kind == "const":
            return self.per_constant_test
        if kind == "amem":
            return self.amem_base
        if kind == "bmem":
            return self.bmem_base
        if kind == "join":
            return (
                self.join_base
                + self.per_comparison * event.comparisons
                + self.per_output * event.outputs
            )
        if kind == "neg":
            return (
                self.neg_base
                + self.per_comparison * event.comparisons
                + self.per_output * event.outputs
            )
        if kind == "term":
            return self.term_base
        raise ValueError(f"unknown node kind {kind!r}")

    def change_cost(self, events: list[ActivationEvent]) -> int:
        """Serial instructions for one whole WME change."""
        return sum(self.activation_cost(e) for e in events)


def changes_per_second(instructions_per_change: float, mips: float) -> float:
    """Throughput of a serial interpreter executing at *mips* MIPS."""
    if instructions_per_change <= 0:
        raise ValueError("instructions_per_change must be positive")
    return mips * 1e6 / instructions_per_change


def uniprocessor_ladder(mips: float = 1.0) -> dict[str, float]:
    """Section 2.2's interpreter speed ladder at the given MIPS.

    At 1 MIPS (the VAX-11/780) this reproduces the paper's 8 / 40 / 200 /
    400-800 wme-changes/sec progression.
    """
    return {
        tier: changes_per_second(instr, mips)
        for tier, instr in UNIPROCESSOR_TIERS.items()
    }
