"""The instruction-cost model for node activations.

The paper's simulator takes "a cost model to help compute the cost of
processing any given node activation in the trace" (Section 6).  Its
published calibration points, which this module reproduces:

* ``c1`` -- the average cost of processing one WME insert through a
  serial Rete network: **~1800 machine instructions** (Section 3.1).
  Deletes cost the same (``c2 = c1``).
* ``c3`` -- the per-WME cost of a non-state-saving match pass:
  **~1100 instructions** (Section 3.1).
* Individual node-activation tasks average **50-100 instructions**
  (Section 4).

Per-activation costs are decomposed into a base cost per node kind, a
per-pair comparison cost, and a per-output token cost, with defaults
chosen so that typical activations land in the 50-100 instruction band
and whole changes near ``c1`` on the paper-calibrated workloads.

The module also carries the Section 2.2 *implementation ladder*: the
instructions-per-change figures implied by the published speeds of the
Lisp, Bliss, compiled-OPS83, and optimized interpreters on a 1-MIPS
VAX-11/780 (8, 40, 200, and 400-800 wme-changes/sec respectively).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..rete.instrument import ActivationEvent

#: Section 3.1 constants (machine instructions).
C1_INSTRUCTIONS_PER_INSERT = 1800
C2_INSTRUCTIONS_PER_DELETE = 1800
C3_INSTRUCTIONS_PER_WME = 1100

#: Section 2.2 ladder: implementation tier -> instructions per
#: wme-change implied by its measured speed on the 1-MIPS VAX-11/780.
UNIPROCESSOR_TIERS: dict[str, int] = {
    # 8 wme-changes/sec  => 125_000 instructions per change
    "lisp-interpreted": 125_000,
    # 40 wme-changes/sec => 25_000
    "bliss-interpreted": 25_000,
    # 200 wme-changes/sec => 5_000
    "ops83-compiled": 5_000,
    # 400-800 wme-changes/sec => 1_250-2_500; we use the c1 figure, which
    # sits inside that band (555 changes/sec at 1 MIPS).
    "ops83-optimized": C1_INSTRUCTIONS_PER_INSERT,
}


@dataclass(frozen=True)
class CostModel:
    """Instruction costs for Rete node activations.

    Defaults keep a typical two-input activation (a handful of
    comparisons, zero or one output) inside the paper's 50-100
    instruction task-size band.
    """

    #: Constant/intra test evaluation (alpha network), per test.
    per_constant_test: int = 4
    #: Fixed cost of the change entering the network (hashing the class,
    #: reading the WME) -- the "root" task.
    root_base: int = 30
    #: Alpha-memory activation: insert/delete a WME in a hash table.
    amem_base: int = 30
    #: Beta-memory activation: insert/delete a token.
    bmem_base: int = 25
    #: Two-input node activation: fixed part (reading inputs, setup).
    join_base: int = 45
    neg_base: int = 50
    #: Per opposite-memory pair examined.
    per_comparison: int = 8
    #: Per output token constructed and dispatched.
    per_output: int = 20
    #: Terminal activation: conflict-set insert/delete.
    term_base: int = 40
    #: Where the constants came from: ``paper-sec3`` for the published
    #: calibration, ``kernel-calibrated`` when scaled by a live
    #: measurement of the compiled kernel (see
    #: :func:`kernel_calibrated_model`).
    label: str = "paper-sec3"

    def activation_cost(self, event: ActivationEvent) -> int:
        """Instructions to process one recorded activation."""
        kind = event.node_kind
        if kind == "root":
            return self.root_base + self.per_constant_test * event.comparisons
        if kind == "const":
            return self.per_constant_test
        if kind == "amem":
            return self.amem_base
        if kind == "bmem":
            return self.bmem_base
        if kind == "join":
            return (
                self.join_base
                + self.per_comparison * event.comparisons
                + self.per_output * event.outputs
            )
        if kind == "neg":
            return (
                self.neg_base
                + self.per_comparison * event.comparisons
                + self.per_output * event.outputs
            )
        if kind == "term":
            return self.term_base
        raise ValueError(f"unknown node kind {kind!r}")

    def change_cost(self, events: list[ActivationEvent]) -> int:
        """Serial instructions for one whole WME change."""
        return sum(self.activation_cost(e) for e in events)


#: Cached live measurement (one per process: it costs a few ms).
_KERNEL_SCALE: float | None = None


def measured_kernel_scale(repeats: int = 3) -> float:
    """Measured per-change cost ratio: compiled kernel / interpreted Rete.

    The paper's constants (``c1``, the 50-100 instruction task band)
    describe its *interpreted* Rete.  The repo's compiled kernel
    (:mod:`repro.kernel`) processes the same WME changes through
    generated code, so its per-change cost sits below the interpreter's
    -- by how much is a property of this host, so we measure it: the
    same production set and WME stream are driven through both matchers
    and the best-of-*repeats* wall-clock ratio is returned (clamped to
    ``[0.05, 4.0]`` so one scheduler hiccup cannot poison the model).

    The result is cached per process; the calibration workload is the
    closure-chain program, whose joins exercise both alpha and beta
    paths.
    """
    global _KERNEL_SCALE
    if _KERNEL_SCALE is None:
        _KERNEL_SCALE = _measure_kernel_scale(max(1, repeats))
    return _KERNEL_SCALE


def _measure_kernel_scale(repeats: int) -> float:
    import time

    from ..kernel.matcher import CompiledMatcher
    from ..ops5.parser import parse_program
    from ..ops5.wme import WME, WorkingMemory
    from ..rete.network import ReteNetwork
    from ..workloads.programs import closure

    productions = parse_program(closure.PROGRAM).productions
    specs = [(w.cls, dict(w.attributes)) for w in closure.chain(8)]

    def drive(factory) -> float:
        best = float("inf")
        for _ in range(repeats):
            matcher = factory()
            for production in productions:
                matcher.add_production(production)
            memory = WorkingMemory()
            wmes = [memory.add(WME(cls, dict(attrs))) for cls, attrs in specs]
            start = time.perf_counter()
            for wme in wmes:
                matcher.add_wme(wme)
            _ = matcher.conflict_set
            for wme in wmes[: len(wmes) // 2]:
                matcher.remove_wme(wme)
            _ = matcher.conflict_set
            best = min(best, time.perf_counter() - start)
        return best

    rete = drive(ReteNetwork)
    compiled = drive(CompiledMatcher)
    if rete <= 0:
        return 1.0
    return min(4.0, max(0.05, compiled / rete))


def kernel_calibrated_model(scale: float | None = None) -> CostModel:
    """A :class:`CostModel` scaled to the compiled kernel's measured cost.

    Every per-activation constant is multiplied by *scale* (measured on
    this host via :func:`measured_kernel_scale` when omitted) and
    rounded to at least one instruction, so DES predictions describe
    the machine the live ``local`` backend actually runs: compiled-
    kernel shards, not the paper's interpreter.
    """
    if scale is None:
        scale = measured_kernel_scale()
    base = CostModel()
    scaled = {
        field.name: max(1, round(getattr(base, field.name) * scale))
        for field in dataclasses.fields(CostModel)
        if field.type in ("int", int)
    }
    return CostModel(label="kernel-calibrated", **scaled)


def changes_per_second(instructions_per_change: float, mips: float) -> float:
    """Throughput of a serial interpreter executing at *mips* MIPS."""
    if instructions_per_change <= 0:
        raise ValueError("instructions_per_change must be positive")
    return mips * 1e6 / instructions_per_change


def uniprocessor_ladder(mips: float = 1.0) -> dict[str, float]:
    """Section 2.2's interpreter speed ladder at the given MIPS.

    At 1 MIPS (the VAX-11/780) this reproduces the paper's 8 / 40 / 200 /
    400-800 wme-changes/sec progression.
    """
    return {
        tier: changes_per_second(instr, mips)
        for tier, instr in UNIPROCESSOR_TIERS.items()
    }
