"""Trace serialisation: save and reload task graphs as JSON.

A trace-driven toolchain wants traces as artifacts: capture once (the
expensive OPS5 run), replay many times under different machine models.
The format is a direct JSON rendering of the
:class:`~repro.trace.events.Trace` hierarchy, versioned for forward
compatibility.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .events import ChangeTrace, FiringTrace, Task, Trace

FORMAT_VERSION = 1


def trace_to_dict(trace: Trace) -> dict[str, Any]:
    """A JSON-ready dictionary for *trace*."""
    return {
        "version": FORMAT_VERSION,
        "name": trace.name,
        "serial_cost": trace.serial_cost,
        "firings": [
            {
                "production": firing.production,
                "changes": [
                    {
                        "kind": change.kind,
                        "wme_class": change.wme_class,
                        "tasks": [
                            {
                                "index": task.index,
                                "kind": task.kind,
                                "cost": task.cost,
                                "deps": list(task.deps),
                                "node_id": task.node_id,
                                "productions": list(task.productions),
                            }
                            for task in change.tasks
                        ],
                    }
                    for change in firing.changes
                ],
            }
            for firing in trace.firings
        ],
    }


def trace_from_dict(data: dict[str, Any]) -> Trace:
    """Rebuild a :class:`Trace` from :func:`trace_to_dict` output.

    Raises ``ValueError`` on version mismatch or structural corruption
    (the rebuilt trace is validated before it is returned).
    """
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version!r}")
    firings = []
    for firing_data in data["firings"]:
        firing = FiringTrace(production=firing_data["production"])
        for change_data in firing_data["changes"]:
            change = ChangeTrace(change_data["kind"], change_data["wme_class"])
            for task_data in change_data["tasks"]:
                change.tasks.append(
                    Task(
                        index=task_data["index"],
                        kind=task_data["kind"],
                        cost=task_data["cost"],
                        deps=tuple(task_data["deps"]),
                        node_id=task_data["node_id"],
                        productions=tuple(task_data.get("productions", ())),
                    )
                )
            firing.changes.append(change)
        firings.append(firing)
    trace = Trace(
        name=data["name"], firings=firings, serial_cost=data.get("serial_cost", 0)
    )
    trace.validate()
    return trace


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write *trace* to *path* as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))
