"""Capturing activation traces from real OPS5 runs.

:class:`TraceCapture` plugs into both observation points at once:

* as an :class:`~repro.ops5.engine.EngineListener` it sees production
  firings, giving the firing/change grouping;
* as a :class:`~repro.rete.instrument.NetworkListener` it sees every
  node activation with its causal parent, giving the per-change DAG.

After the run, :meth:`TraceCapture.finalize` resolves node -> production
attribution (needed by the production-granularity transform) and prices
every activation with the cost model, yielding a
:class:`~repro.trace.events.Trace` ready for the simulator.

This is the reproduction of the paper's trace pipeline: "a detailed
trace of node activations from an actual run of a production system
(the trace contains information about the dependencies between node
activations...)" (Section 6).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ops5.engine import EngineListener, ProductionSystem, RunResult
from ..ops5.production import Instantiation, Production
from ..ops5.wme import WME
from ..rete.instrument import ActivationEvent, NetworkListener
from ..rete.network import ReteNetwork
from .costmodel import CostModel
from .events import ChangeTrace, FiringTrace, Task, Trace

#: Firing label for working-memory loads that precede the first firing.
SETUP = "<setup>"


class TraceCapture(EngineListener, NetworkListener):
    """Records a run as a task-graph trace.

    Use via :func:`capture_trace`, or wire manually::

        capture = TraceCapture()
        net = ReteNetwork(listener=capture)
        ps = ProductionSystem(src, matcher=net, listener=capture)
        ... load memory, ps.run() ...
        trace = capture.finalize("my-run", net)
    """

    def __init__(self, cost_model: CostModel | None = None) -> None:
        self.cost_model = cost_model or CostModel()
        self._firings: list[FiringTrace] = [FiringTrace(SETUP)]
        self._current_change: Optional[ChangeTrace] = None
        self._events: list[ActivationEvent] = []

    # -- EngineListener ------------------------------------------------------

    def on_cycle(self, cycle: int, fired: Instantiation) -> None:
        self._firings.append(FiringTrace(fired.production.name))

    # -- NetworkListener ------------------------------------------------------

    def on_change_begin(self, kind: str, wme_timetag: int, wme_class: str) -> None:
        self._current_change = ChangeTrace(kind, wme_class)
        self._events = []

    def on_activation(self, event: ActivationEvent) -> None:
        self._events.append(event)

    def on_change_end(self) -> None:
        change = self._current_change
        if change is None:  # pragma: no cover - listener protocol misuse
            return
        # Events complete in post-order; seq order is the topological
        # (start) order, and parents always have smaller seqs.
        events = sorted(self._events, key=lambda e: e.seq)
        index_of = {event.seq: i for i, event in enumerate(events)}
        for i, event in enumerate(events):
            deps = (index_of[event.parent],) if event.parent in index_of else ()
            change.tasks.append(
                Task(
                    index=i,
                    kind=event.node_kind,
                    cost=self.cost_model.activation_cost(event),
                    deps=deps,
                    node_id=event.node_id,
                )
            )
        self._firings[-1].changes.append(change)
        self._current_change = None
        self._events = []

    # -- assembly ---------------------------------------------------------------

    def finalize(
        self, name: str, network: ReteNetwork, include_setup: bool = False
    ) -> Trace:
        """Build the final :class:`Trace`.

        Parameters
        ----------
        name:
            Trace label (appears in reports).
        network:
            The network the run used; supplies node -> production
            attribution.
        include_setup:
            Keep the changes made while loading initial working memory.
            Default False: the paper measures steady-state match cost.
        """
        owners: dict[int, set[str]] = {}
        for production_name, nodes in network._production_nodes.items():
            for node in nodes:
                owners.setdefault(node.id, set()).add(production_name)

        firings: list[FiringTrace] = []
        for firing in self._firings:
            if firing.production == SETUP and not include_setup:
                continue
            if not firing.changes and firing.production == SETUP:
                continue
            resolved = FiringTrace(firing.production)
            for change in firing.changes:
                new_change = ChangeTrace(change.kind, change.wme_class)
                for task in change.tasks:
                    new_change.tasks.append(
                        Task(
                            index=task.index,
                            kind=task.kind,
                            cost=task.cost,
                            deps=task.deps,
                            node_id=task.node_id,
                            productions=tuple(sorted(owners.get(task.node_id, ()))),
                        )
                    )
                resolved.changes.append(new_change)
            firings.append(resolved)
        trace = Trace(name=name, firings=firings)
        trace.validate()
        return trace


def capture_trace(
    productions: str | Sequence[Production],
    setup: Sequence[WME] | Sequence[tuple] = (),
    name: str = "run",
    max_cycles: Optional[int] = None,
    strategy: str = "lex",
    cost_model: CostModel | None = None,
    include_setup: bool = False,
) -> tuple[Trace, RunResult, ProductionSystem]:
    """Run a program under the instrumented Rete and capture its trace.

    ``setup`` holds initial WMEs -- either :class:`WME` objects or
    ``(class, attributes)`` pairs as produced by
    :func:`~repro.ops5.parser.parse_wme_specs`.
    """
    capture = TraceCapture(cost_model)
    network = ReteNetwork(listener=capture)
    system = ProductionSystem(
        productions, matcher=network, strategy=strategy, listener=capture
    )
    for item in setup:
        if isinstance(item, WME):
            system.add_wme(item)
        else:
            cls, attributes = item
            system.add_wme(WME(cls, attributes))
    result = system.run(max_cycles)
    trace = capture.finalize(name, network, include_setup=include_setup)
    return trace, result, system
