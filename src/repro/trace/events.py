"""Trace data structures: the task graphs the simulator replays.

A :class:`Trace` is the bridge between the matcher side of this library
(real OPS5 runs through the instrumented Rete network, or calibrated
synthetic workload generators) and the multiprocessor simulator
(:mod:`repro.psim`).  It mirrors the input of the paper's Section 6
simulator: node activations with dependencies, grouped into
working-memory changes, grouped into production firings.

Hierarchy::

    Trace
      firings: [FiringTrace]          # one per recognize-act cycle
        changes: [ChangeTrace]        # WME changes made by that firing
          tasks: [Task]               # node activations, DAG via deps

Task ``deps`` are indices *within the same change* (the activation
forest of one change).  Cross-change and cross-firing ordering is policy
(sequential changes vs. the paper's "multiple changes in parallel";
single vs. "parallel firings") and is applied by the simulator, not
baked into the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class Task:
    """One node activation: the simulator's unit of scheduling.

    Attributes
    ----------
    index:
        Position within the owning change (dep targets use these).
    kind:
        Node kind ("root", "amem", "bmem", "join", "neg", "term").
    cost:
        Instructions to execute (from the cost model).
    deps:
        Indices of tasks in the same change that must finish first.
    node_id:
        The network node activated; tasks on the same node contend for
        its memory (the simulator's lock model).
    productions:
        Names of productions whose compilation uses the node -- used to
        re-granularise the trace for production-level parallelism, where
        shared work is replicated per production.
    """

    index: int
    kind: str
    cost: int
    deps: tuple[int, ...]
    node_id: int
    productions: tuple[str, ...] = ()


@dataclass
class ChangeTrace:
    """The activation DAG of one working-memory change."""

    kind: str  # "add" or "remove"
    wme_class: str
    tasks: list[Task] = field(default_factory=list)

    @property
    def total_cost(self) -> int:
        return sum(t.cost for t in self.tasks)

    @property
    def critical_path(self) -> int:
        """Longest dependency chain, in instructions (infinite-processor
        lower bound on this change's completion time)."""
        finish: list[int] = []
        for task in self.tasks:
            start = max((finish[d] for d in task.deps), default=0)
            finish.append(start + task.cost)
        return max(finish, default=0)

    def affected_productions(self) -> set[str]:
        out: set[str] = set()
        for task in self.tasks:
            out.update(task.productions)
        return out


@dataclass
class FiringTrace:
    """All changes made by one production firing (one act phase)."""

    production: str
    changes: list[ChangeTrace] = field(default_factory=list)

    @property
    def total_cost(self) -> int:
        return sum(c.total_cost for c in self.changes)


@dataclass
class Trace:
    """A full run: the simulator's workload.

    ``serial_cost`` is the reference cost of the best serial
    implementation -- the shared, serial Rete (the paper's baseline for
    *true* speed-up).  For traces captured from the real network it is
    simply the sum of task costs; synthetic generators set it from their
    calibration.
    """

    name: str
    firings: list[FiringTrace] = field(default_factory=list)
    serial_cost: int = 0

    def __post_init__(self) -> None:
        if self.serial_cost == 0:
            self.serial_cost = sum(f.total_cost for f in self.firings)

    @property
    def total_changes(self) -> int:
        return sum(len(f.changes) for f in self.firings)

    @property
    def total_tasks(self) -> int:
        return sum(len(c.tasks) for f in self.firings for c in f.changes)

    @property
    def total_cost(self) -> int:
        return sum(f.total_cost for f in self.firings)

    def iter_changes(self) -> Iterator[ChangeTrace]:
        for firing in self.firings:
            yield from firing.changes

    def mean_changes_per_firing(self) -> float:
        return self.total_changes / len(self.firings) if self.firings else 0.0

    def mean_affected_productions(self) -> float:
        """Average affected productions per change (the paper's ~30)."""
        counts = [len(c.affected_productions()) for c in self.iter_changes()]
        return sum(counts) / len(counts) if counts else 0.0

    def validate(self) -> None:
        """Check structural invariants; raise ValueError on corruption.

        Invariants: task indices are dense and ordered, deps point
        backwards (the DAG is topologically ordered), costs positive.
        """
        for change in self.iter_changes():
            for position, task in enumerate(change.tasks):
                if task.index != position:
                    raise ValueError(
                        f"{self.name}: task index {task.index} at position {position}"
                    )
                if task.cost <= 0:
                    raise ValueError(f"{self.name}: non-positive cost on {task}")
                for dep in task.deps:
                    if not 0 <= dep < position:
                        raise ValueError(
                            f"{self.name}: dep {dep} of task {position} not earlier"
                        )


def merge_traces(traces: list["Trace"], name: str = "merged") -> "Trace":
    """Application-level parallelism: interleave several rule threads.

    The paper's Section 8 notes one legitimate way to raise the
    working-memory turnover per cycle: "if a system has multiple
    threads, each one could be performing only the usual small number
    of working memory changes per cycle, but since there would be
    several threads, the total number of changes per cycle would be
    several times higher."

    This models exactly that: cycle *i* of the merged trace carries the
    changes of cycle *i* of **every** input thread (threads synchronise
    on the recognize--act barrier, the conservative semantics).  Shorter
    threads simply finish early.  Node identities collide only if the
    input traces share them -- pass traces from distinct generators (or
    distinct seeds) for independent rule sets.
    """
    if not traces:
        raise ValueError("merge_traces needs at least one trace")
    depth = max(len(trace.firings) for trace in traces)
    merged: list[FiringTrace] = []
    for cycle in range(depth):
        firing = FiringTrace(
            production="+".join(
                trace.firings[cycle].production
                for trace in traces
                if cycle < len(trace.firings)
            )
        )
        for trace in traces:
            if cycle < len(trace.firings):
                firing.changes.extend(trace.firings[cycle].changes)
        merged.append(firing)
    result = Trace(
        name=name,
        firings=merged,
        serial_cost=sum(trace.serial_cost for trace in traces),
    )
    result.validate()
    return result
