"""The trace-driven multiprocessor simulator (the paper's Section 6 tool).

A deterministic discrete-event list scheduler:

* tasks become ready when their dependencies complete (and their batch
  has started -- recognize--act cycles impose barriers);
* ready tasks are dispatched to idle processors through the scheduler
  model (hardware: ~one bus cycle; software: a serial critical section
  per dispatch, through one or more queues);
* a task whose target node memory is locked is *not* dispatched -- the
  paper's hardware scheduler "is expected to ensure that multiple node
  activations assigned to be processed in parallel cannot interfere
  with each other" -- it stays queued until a completion frees the lock;
* execution time is the task cost, inflated by the sharing-loss factor
  and stretched by bus contention at the moment of dispatch.

Determinism: ready tasks are considered in uid order and all tie-breaks
are FIFO, so equal inputs give bit-equal outputs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..trace.events import Trace
from .des import ChannelPool, EventQueue, Semaphore
from .granularity import Batch, Schedule, SimTask, build_schedule
from .machine import GRANULARITY_INTRA_NODE, MachineConfig
from .metrics import SimulationResult


class _Totals:
    """Mutable accumulators shared across batches of one run."""

    def __init__(self, record_placements: bool = False) -> None:
        self.busy_time = 0.0
        self.executed_work = 0.0
        self.dispatch_work = 0.0
        self.sync_work = 0.0
        self.queue_wait = 0.0
        self.peak = 0
        self.placements: list | None = [] if record_placements else None


def simulate(
    trace: Trace, config: MachineConfig, record_placements: bool = False
) -> SimulationResult:
    """Execute *trace* on the machine described by *config*.

    With ``record_placements``, the result carries every task's
    (processor, start, end) span -- feed it to
    :func:`repro.psim.gantt.render_gantt`.
    """
    schedule = build_schedule(trace, config)
    return simulate_schedule(
        schedule,
        config,
        trace_name=trace.name,
        serial_cost=float(trace.serial_cost),
        record_placements=record_placements,
    )


def simulate_schedule(
    schedule: Schedule,
    config: MachineConfig,
    trace_name: str = "trace",
    serial_cost: float = 0.0,
    record_placements: bool = False,
) -> SimulationResult:
    """Run a prepared :class:`Schedule` (the lower-level entry point)."""
    totals = _Totals(record_placements)
    dispatch = ChannelPool(config.dispatch_queues)
    locks: dict[int, Semaphore] = {}
    ways = config.intra_node_ways if config.granularity == GRANULARITY_INTRA_NODE else 1

    time = 0.0
    critical_path = 0.0
    for batch in schedule.batches:
        time = _run_batch(batch, config, totals, dispatch, locks, ways, start=time)
        critical_path += _batch_critical_path(batch)
        if config.conflict_resolution_cost:
            # Conflict resolution and act are serial per firing, at the
            # recognize--act barrier (an Amdahl term the paper sets to 0).
            firings_in_batch = len({task.firing for task in batch.tasks})
            time += config.conflict_resolution_cost * firings_in_batch

    if serial_cost <= 0.0:
        serial_cost = schedule.total_cost

    return SimulationResult(
        config=config,
        trace_name=trace_name,
        makespan=time,
        busy_time=totals.busy_time,
        executed_work=totals.executed_work,
        serial_cost=serial_cost,
        dispatch_work=totals.dispatch_work,
        sync_work=totals.sync_work,
        queue_wait=totals.queue_wait,
        total_tasks=schedule.total_tasks,
        total_changes=schedule.total_changes,
        total_firings=schedule.total_firings,
        peak_concurrency=totals.peak,
        critical_path=critical_path,
        placements=totals.placements,
    )


def _batch_critical_path(batch: Batch) -> float:
    finish: dict[int, float] = {}
    for task in batch.tasks:
        start = max((finish[d] for d in task.deps), default=0.0)
        finish[task.uid] = start + task.cost
    return max(finish.values(), default=0.0)


def _run_batch(
    batch: Batch,
    config: MachineConfig,
    totals: _Totals,
    dispatch: ChannelPool,
    locks: dict[int, Semaphore],
    lock_ways: int,
    start: float,
) -> float:
    """Simulate one barrier-separated batch; return its finish time."""
    tasks = {t.uid: t for t in batch.tasks}
    pending_deps = {t.uid: len(t.deps) for t in batch.tasks}
    dependents: dict[int, list[int]] = {}
    for task in batch.tasks:
        for dep in task.deps:
            dependents.setdefault(dep, []).append(task.uid)

    ready: list[int] = sorted(uid for uid, n in pending_deps.items() if n == 0)
    completions = EventQueue()
    free = set(range(config.processors))
    now = start
    finished = 0
    total = len(batch.tasks)

    while finished < total:
        # Dispatch as many ready tasks as possible at `now`.
        still_blocked: list[int] = []
        for pos, uid in enumerate(ready):
            if not free:
                still_blocked.extend(ready[pos:])
                break
            task = tasks[uid]
            processor = _eligible_processor(task, free, config)
            if processor is None:
                still_blocked.append(uid)
                continue
            lock = None
            if task.lock_key is not None:
                lock = locks.get(task.lock_key)
                if lock is None:
                    lock = locks[task.lock_key] = Semaphore(lock_ways)
                if not lock.available_at(now):
                    still_blocked.append(uid)
                    continue
            running = config.processors - len(free)
            _start_task(
                task, config, totals, dispatch, lock, now, running, processor,
                completions,
            )
            free.discard(processor)
            totals.peak = max(totals.peak, config.processors - len(free))
        ready = still_blocked

        if finished + len(ready) > total:  # pragma: no cover - sanity
            raise RuntimeError("scheduler bookkeeping corrupted")

        # Advance to the next completion.
        if not completions:
            if ready:  # pragma: no cover - deadlock guard
                raise RuntimeError(
                    "no running tasks but ready tasks remain; lock model deadlock"
                )
            break
        now, (uid, processor) = completions.pop()
        free.add(processor)
        finished += 1
        for dependent in dependents.get(uid, ()):
            pending_deps[dependent] -= 1
            if pending_deps[dependent] == 0:
                ready.append(dependent)
        # Drain any completions at the same instant before redispatching.
        while completions and completions.peek_time() == now:
            _, (uid2, processor2) = completions.pop()
            free.add(processor2)
            finished += 1
            for dependent in dependents.get(uid2, ()):
                pending_deps[dependent] -= 1
                if pending_deps[dependent] == 0:
                    ready.append(dependent)
        ready.sort()

    return now


def _eligible_processor(task: SimTask, free: set[int], config: MachineConfig):
    """The lowest free processor this task may run on, or None.

    Pinned tasks (static partitioning) only run on their processor;
    cluster-bound tasks (hierarchical machine) on their cluster's
    processors; everything else anywhere -- the run-time assignment a
    shared-memory machine permits.
    """
    if task.pin is not None:
        return task.pin if task.pin in free else None
    if task.cluster is not None:
        size = config.cluster_size
        low = task.cluster * size
        high = config.processors if task.cluster == config.clusters - 1 else low + size
        eligible = [p for p in free if low <= p < high]
        return min(eligible) if eligible else None
    return min(free)


def _start_task(
    task: SimTask,
    config: MachineConfig,
    totals: _Totals,
    dispatch: ChannelPool,
    lock: Semaphore | None,
    now: float,
    running: int,
    processor: int,
    completions: EventQueue,
) -> None:
    """Commit one task to a processor; push its completion event."""
    dispatch_start, dispatch_end = dispatch.grant(now, config.dispatch_cost)
    sync = config.sync_cost_per_task if lock is not None else 0.0
    exec_start = dispatch_end + sync
    duration = task.cost * config.work_inflation * config.bus_slowdown(running + 1)
    end = exec_start + duration
    if lock is not None:
        lock.acquire(exec_start, end)

    totals.queue_wait += dispatch_start - now
    totals.dispatch_work += config.dispatch_cost
    totals.sync_work += sync
    totals.executed_work += duration
    totals.busy_time += end - now
    if totals.placements is not None:
        from .metrics import TaskPlacement

        totals.placements.append(
            TaskPlacement(
                uid=task.uid, kind=task.kind, processor=processor,
                start=now, end=end,
            )
        )
    completions.push(end, (task.uid, processor))


def sweep_processors(
    trace: Trace, config: MachineConfig, processor_counts: Iterable[int]
) -> list[SimulationResult]:
    """Simulate *trace* at each processor count (the figures' x-axis)."""
    return [simulate(trace, config.with_processors(n)) for n in processor_counts]


def simulate_many(
    traces: Sequence[Trace], config: MachineConfig
) -> list[SimulationResult]:
    """Simulate several systems under one machine (for paper averages)."""
    return [simulate(trace, config) for trace in traces]
