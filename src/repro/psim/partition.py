"""Static partitioning: the compile-time assignment shared memory avoids.

Section 5's first requirement argues for shared memory precisely because
without it "the processor on which the activations of a given node in
the Rete network are evaluated must be decided at the time the network
is loaded", and that partitioning problem "in its full generality is
shown to be NP-Complete" (Oflazer's thesis).  Tree machines like DADO
and Oflazer's both live with a static partition.

This module implements the classic greedy heuristic for the problem --
longest-processing-time (LPT) bin packing of productions onto
processors by their total historical match cost -- and produces a
production-granularity :class:`~repro.psim.granularity.Schedule` whose
tasks are *pinned* to their assigned processors.  Comparing it against
the unpinned schedule on the same trace quantifies what run-time
assignment buys (see ``benchmarks/bench_abl_partitioning.py``).

The partitioner cheats in the paper's favour: it packs using the exact
per-production costs of the *very trace being replayed* -- an oracle no
compile-time partitioner has.  Even so, static assignment loses: the
work per change is bursty and the heavy productions collide on the same
processors.
"""

from __future__ import annotations

from dataclasses import replace

from ..trace.events import Trace
from .granularity import Schedule, build_schedule
from .machine import GRANULARITY_PRODUCTION, MachineConfig


def production_costs(trace: Trace) -> dict[str, float]:
    """Total match cost charged to each production across the trace.

    Shared (multi-production) task costs are split evenly; unattributed
    root work is ignored here (it is replicated identically under both
    static and dynamic assignment, so it does not affect the packing).
    """
    costs: dict[str, float] = {}
    for change in trace.iter_changes():
        for task in change.tasks:
            if not task.productions:
                continue
            share = task.cost / len(task.productions)
            for production in task.productions:
                costs[production] = costs.get(production, 0.0) + share
    return costs


def lpt_partition(costs: dict[str, float], processors: int) -> dict[str, int]:
    """Longest-processing-time greedy: heaviest production first, onto
    the currently lightest processor.  Returns production -> processor.
    """
    if processors < 1:
        raise ValueError("need at least one processor")
    loads = [0.0] * processors
    assignment: dict[str, int] = {}
    for production in sorted(costs, key=lambda p: (-costs[p], p)):
        target = min(range(processors), key=lambda i: (loads[i], i))
        assignment[production] = target
        loads[target] += costs[production]
    return assignment


def partition_imbalance(costs: dict[str, float], assignment: dict[str, int],
                        processors: int) -> float:
    """Max processor load over mean load (1.0 = perfectly balanced)."""
    loads = [0.0] * processors
    for production, processor in assignment.items():
        loads[processor] += costs[production]
    total = sum(loads)
    if total == 0:
        return 1.0
    mean = total / processors
    return max(loads) / mean if mean else 1.0


def build_partitioned_schedule(
    trace: Trace, config: MachineConfig
) -> tuple[Schedule, dict[str, int]]:
    """A production-granularity schedule with statically pinned tasks.

    The configuration's granularity is forced to ``production`` (static
    partitioning only makes sense per production; fine-grain node tasks
    cannot be pinned without replicating node state everywhere).
    """
    config = replace(config, granularity=GRANULARITY_PRODUCTION)
    assignment = lpt_partition(production_costs(trace), config.processors)
    schedule = build_schedule(trace, config)
    for batch in schedule.batches:
        batch.tasks = [
            replace(task, pin=assignment[task.production])
            if task.production in assignment
            else task
            for task in batch.tasks
        ]
    return schedule, assignment


def simulate_partitioned(trace: Trace, config: MachineConfig):
    """Simulate *trace* under the static LPT partition.

    Returns (result, assignment, imbalance) so callers can report both
    the performance and the packing quality.
    """
    from .simulator import simulate_schedule  # local: avoid import cycle

    schedule, assignment = build_partitioned_schedule(trace, config)
    result = simulate_schedule(
        schedule,
        replace(config, granularity=GRANULARITY_PRODUCTION),
        trace_name=trace.name + " (static partition)",
        serial_cost=float(trace.serial_cost),
    )
    imbalance = partition_imbalance(
        production_costs(trace), assignment, config.processors
    )
    return result, assignment, imbalance
