"""ASCII Gantt rendering of simulated schedules.

Turns a placement-recorded :class:`SimulationResult` into a per-
processor timeline, making scheduling behaviour -- barriers between
firings, lock serialisation, idle processors past the saturation point
-- visible at a glance::

    p0 |rrjjjjjj..jjjj|
    p1 |..jjjj....tt..|
    p2 |..............|

Each column is a time slice; the letter is the task kind that occupied
most of the slice (r=root, a=amem, b=bmem, j=join, n=neg, t=term,
p=production); ``.`` is idle.
"""

from __future__ import annotations

from .metrics import SimulationResult

_KIND_LETTERS = {
    "root": "r",
    "amem": "a",
    "bmem": "b",
    "join": "j",
    "neg": "n",
    "term": "t",
    "production": "p",
}


def render_gantt(result: SimulationResult, width: int = 72) -> str:
    """Render the recorded schedule as a per-processor timeline.

    Requires the simulation to have been run with
    ``record_placements=True``; raises ``ValueError`` otherwise.
    """
    if result.placements is None:
        raise ValueError(
            "no placements recorded; run simulate(..., record_placements=True)"
        )
    if result.makespan <= 0 or not result.placements:
        return "(empty schedule)"
    if width < 4:
        raise ValueError("width must leave room for at least a few slices")

    processors = result.config.processors
    scale = result.makespan / width
    # occupancy[p][column] -> {letter: covered time}
    rows: list[str] = []
    grid: list[list[dict[str, float]]] = [
        [dict() for _ in range(width)] for _ in range(processors)
    ]
    for placement in result.placements:
        letter = _KIND_LETTERS.get(placement.kind, "?")
        first = min(int(placement.start / scale), width - 1)
        last = min(int(placement.end / scale), width - 1)
        for column in range(first, last + 1):
            slice_start = column * scale
            slice_end = slice_start + scale
            covered = min(placement.end, slice_end) - max(placement.start, slice_start)
            if covered > 0:
                cell = grid[placement.processor][column]
                cell[letter] = cell.get(letter, 0.0) + covered

    label_width = len(f"p{processors - 1}")
    for processor in range(processors):
        cells = []
        for column in range(width):
            cell = grid[processor][column]
            if not cell:
                cells.append(".")
            else:
                cells.append(max(cell, key=cell.get))
        rows.append(f"p{processor:<{label_width - 1}} |{''.join(cells)}|")
    header = (
        f"{result.trace_name}: makespan {result.makespan:,.0f} instr, "
        f"concurrency {result.concurrency:.2f} "
        f"(each column ~ {scale:,.0f} instr; r/a/b/j/n/t/p by node kind)"
    )
    return "\n".join([header] + rows)
