"""Analytic makespan bounds: a cross-check on the simulator.

List-scheduling theory gives hard envelopes for any greedy schedule:

* **lower bound** per batch: no schedule can beat
  ``max(work / processors, critical path, heaviest lock chain)`` --
  the machine cannot do work faster than all processors combined, than
  the longest dependency chain, or than the serialisation forced by the
  most contended node memory;
* **upper bound** per batch: a greedy list scheduler never exceeds
  ``total work + total dispatch occupancy`` -- whenever a processor is
  idle with ready unblocked tasks, some other processor (or the
  dispatch channel) is making progress.

:func:`schedule_bounds` computes both envelopes from the same schedule
the simulator runs; the property-based tests assert every simulated
makespan falls inside.  The bounds are also useful on their own: the
lower bound is the best conceivable speed-up of a workload on a
machine, before running anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.events import Trace
from .granularity import Batch, build_schedule
from .machine import GRANULARITY_INTRA_NODE, MachineConfig


@dataclass(frozen=True)
class MakespanBounds:
    """Hard analytic envelope for one workload on one machine."""

    lower: float
    upper: float
    #: Decomposition of the binding lower-bound terms, summed over
    #: batches: how often each constraint was the binding one.
    bound_by_work: int
    bound_by_span: int
    bound_by_locks: int

    def speedup_ceiling(self, serial_cost: float) -> float:
        """Best conceivable true speed-up: serial cost / lower bound."""
        return serial_cost / self.lower if self.lower else 0.0


def _effective_cost(task, config: MachineConfig) -> float:
    """Processor occupancy of one task, excluding queue waits."""
    sync = config.sync_cost_per_task if task.lock_key is not None else 0.0
    return task.cost * config.work_inflation + sync + config.dispatch_cost


def _batch_bounds(
    batch: Batch, config: MachineConfig
) -> tuple[float, float, str]:
    costs = {t.uid: _effective_cost(t, config) for t in batch.tasks}

    work = sum(costs.values())

    finish: dict[int, float] = {}
    for task in batch.tasks:  # tasks are topologically ordered by uid
        start = max((finish[d] for d in task.deps), default=0.0)
        finish[task.uid] = start + costs[task.uid]
    span = max(finish.values(), default=0.0)

    ways = config.intra_node_ways if config.granularity == GRANULARITY_INTRA_NODE else 1
    lock_load: dict[int, float] = {}
    for task in batch.tasks:
        if task.lock_key is not None:
            lock_load[task.lock_key] = lock_load.get(task.lock_key, 0.0) + costs[task.uid]
    heaviest_lock = max(lock_load.values(), default=0.0) / ways

    candidates = {
        "work": work / config.processors,
        "span": span,
        "locks": heaviest_lock,
    }
    binding = max(candidates, key=candidates.get)
    return candidates[binding], work, binding


def schedule_bounds(trace: Trace, config: MachineConfig) -> MakespanBounds:
    """Lower/upper makespan envelope for *trace* on *config*.

    The bus-contention stretch is intentionally excluded (it only makes
    real schedules slower, so the lower bound stays valid; the upper
    bound accounts for it by using unstretched work times the maximum
    slowdown factor).
    """
    schedule = build_schedule(trace, config)
    lower = 0.0
    upper = 0.0
    by = {"work": 0, "span": 0, "locks": 0}
    worst_stretch = config.bus_slowdown(config.processors)
    for batch in schedule.batches:
        batch_lower, batch_work, binding = _batch_bounds(batch, config)
        cr = config.conflict_resolution_cost * len({t.firing for t in batch.tasks})
        lower += batch_lower + cr
        upper += batch_work * worst_stretch + cr
        by[binding] += 1
    return MakespanBounds(
        lower=lower,
        upper=upper,
        bound_by_work=by["work"],
        bound_by_span=by["span"],
        bound_by_locks=by["locks"],
    )
