"""The multiprocessor simulator for parallel Rete (paper Sections 5-6).

Replays node-activation traces on a parametric shared-memory machine
model and reports the paper's metrics: concurrency, true speed-up,
wme-changes/sec, and the overhead decomposition.
"""

from .bounds import MakespanBounds, schedule_bounds
from .des import ChannelPool, EventQueue, Semaphore
from .gantt import render_gantt
from .granularity import (
    Batch,
    CONFLICT_SET_LOCK,
    Schedule,
    SimTask,
    build_schedule,
)
from .machine import (
    GRANULARITY_INTRA_NODE,
    GRANULARITY_NODE,
    GRANULARITY_PRODUCTION,
    MachineConfig,
    PAPER_PSM,
    PRODUCTION_PARALLEL_PSM,
    SCHEDULER_HARDWARE,
    SCHEDULER_SOFTWARE,
)
from .partition import (
    build_partitioned_schedule,
    lpt_partition,
    partition_imbalance,
    production_costs,
    simulate_partitioned,
)
from .metrics import (
    MeasuredRun,
    SimulationResult,
    TaskPlacement,
    average_concurrency,
    average_speed,
    average_true_speedup,
    predicted_vs_measured,
)
from .simulator import simulate, simulate_many, simulate_schedule, sweep_processors

__all__ = [
    "Batch",
    "CONFLICT_SET_LOCK",
    "ChannelPool",
    "EventQueue",
    "GRANULARITY_INTRA_NODE",
    "GRANULARITY_NODE",
    "GRANULARITY_PRODUCTION",
    "MachineConfig",
    "MakespanBounds",
    "MeasuredRun",
    "PAPER_PSM",
    "PRODUCTION_PARALLEL_PSM",
    "SCHEDULER_HARDWARE",
    "SCHEDULER_SOFTWARE",
    "Schedule",
    "Semaphore",
    "SimTask",
    "SimulationResult",
    "TaskPlacement",
    "average_concurrency",
    "build_partitioned_schedule",
    "schedule_bounds",
    "lpt_partition",
    "partition_imbalance",
    "production_costs",
    "simulate_partitioned",
    "average_speed",
    "average_true_speedup",
    "predicted_vs_measured",
    "build_schedule",
    "render_gantt",
    "simulate",
    "simulate_many",
    "simulate_schedule",
    "sweep_processors",
]
