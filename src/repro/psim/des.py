"""A minimal discrete-event core: event queue and resource helpers.

The simulator needs three primitives:

* :class:`EventQueue` -- a time-ordered queue with deterministic
  tie-breaking (insertion order), so simulations are exactly
  reproducible;
* :class:`Semaphore` -- a k-way resource tracking the earliest time a
  new holder can start (the lock model for memory nodes);
* :class:`ChannelPool` -- n serial channels, each usable by one
  occupant at a time, granting the earliest available slot (the model
  for dispatch queues and, if desired, buses).

Everything works in abstract time (the simulator uses instruction
units).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Iterator, Optional


class EventQueue:
    """A priority queue of (time, payload) with FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Any]] = []
        self._counter = itertools.count()

    def push(self, time: float, payload: Any) -> None:
        if time < 0:
            raise ValueError("event time must be non-negative")
        heapq.heappush(self._heap, (time, next(self._counter), payload))

    def pop(self) -> tuple[float, Any]:
        time, _, payload = heapq.heappop(self._heap)
        return time, payload

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[tuple[float, Any]]:
        while self._heap:
            yield self.pop()


class Semaphore:
    """A k-way resource: at most *ways* concurrent holders.

    Tracks holders' release times; :meth:`earliest_start` reports when a
    new holder could begin given a desired time, and :meth:`acquire`
    commits a hold.  Used for per-node memory locks (1-way under node
    granularity, k-way under intra-node parallelism).
    """

    def __init__(self, ways: int) -> None:
        if ways < 1:
            raise ValueError("a semaphore needs at least one way")
        self.ways = ways
        self._releases: list[float] = []  # heap of current holders' end times

    def _prune(self, now: float) -> None:
        while self._releases and self._releases[0] <= now:
            heapq.heappop(self._releases)

    def earliest_start(self, desired: float) -> float:
        """Earliest time >= desired at which a slot is free."""
        self._prune(desired)
        if len(self._releases) < self.ways:
            return desired
        # All ways busy: must wait for the soonest release.
        return self._releases[0]

    def available_at(self, time: float) -> bool:
        self._prune(time)
        return len(self._releases) < self.ways

    def acquire(self, start: float, end: float) -> None:
        self._prune(start)
        if len(self._releases) >= self.ways:
            raise RuntimeError("semaphore acquired while full")
        heapq.heappush(self._releases, end)


class ChannelPool:
    """n serial channels; grants the earliest-available one.

    Each grant occupies a channel for a fixed span starting no earlier
    than the requested time.  Returns the (start, end) actually granted.
    """

    def __init__(self, channels: int) -> None:
        if channels < 1:
            raise ValueError("a channel pool needs at least one channel")
        self._free_at = [0.0] * channels

    def grant(self, desired: float, duration: float) -> tuple[float, float]:
        index = min(range(len(self._free_at)), key=lambda i: self._free_at[i])
        start = max(desired, self._free_at[index])
        end = start + duration
        self._free_at[index] = end
        return start, end

    def earliest(self) -> float:
        return min(self._free_at)
