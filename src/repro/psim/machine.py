"""The production-system machine (PSM) model: Section 5 in parameters.

:class:`MachineConfig` captures every architectural choice the paper
discusses, with defaults matching the proposed machine:

* a bus-based shared-memory multiprocessor with 32 processors of 2 MIPS
  each (Section 5, requirements 1-3);
* a hardware task scheduler costing about one bus cycle per scheduling
  operation (requirement 4) -- the ``software`` alternative models the
  serial critical-section cost the paper warns about;
* a single shared bus whose capacity comfortably carries ~32 processors
  at reasonable cache-hit ratios (Section 5: "a single high-speed bus
  should be able to handle the load put on it by about 32 processors");
* fine-grain *node* parallelism, optionally relaxed to *intra-node*
  parallelism (multiple activations of the same node in parallel,
  Section 4) or restricted to coarse *production* parallelism (the
  rejected alternative);
* parallel processing of the multiple working-memory changes of a
  firing (``wme_level_parallelism``), and of several firings at once
  (``firing_batch`` > 1 -- the figures' "parallel firings" curves);
* a work-inflation factor for the parallel implementation's loss of
  node sharing, and a per-task synchronisation cost -- two of the three
  components of the paper's 1.93 lost factor (the third, scheduling
  overhead, comes from the dispatch model).

Time is measured in *instruction units*: the time one processor needs
for one instruction.  Seconds follow from the MIPS rating at reporting
time only, so one simulation serves any processor speed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Granularity levels (Section 4's comparison).
GRANULARITY_NODE = "node"
GRANULARITY_INTRA_NODE = "intra-node"
GRANULARITY_PRODUCTION = "production"

SCHEDULER_HARDWARE = "hardware"
SCHEDULER_SOFTWARE = "software"


@dataclass(frozen=True)
class MachineConfig:
    """A parametric multiprocessor for the trace simulator."""

    #: Number of processors (paper: 32-64).
    processors: int = 32
    #: Per-processor speed, used only to convert to seconds (paper: 2).
    mips: float = 2.0

    # -- task scheduler ------------------------------------------------------
    #: "hardware" (one bus cycle per dispatch) or "software" (a serial
    #: critical section per dispatch).
    scheduler: str = SCHEDULER_HARDWARE
    #: Dispatch cost in instruction units for the hardware scheduler
    #: ("the time to schedule an activation ... one bus cycle").
    hardware_dispatch_cost: float = 1.0
    #: Dispatch critical-section cost for a software task queue.
    software_dispatch_cost: float = 60.0
    #: Number of independent software task queues (1 = the bottleneck
    #: case; more queues relieve contention at some balance cost).
    software_queues: int = 1

    # -- memory system ----------------------------------------------------------
    #: Shared buses between processors and memory.
    buses: int = 1
    #: Fraction of memory references served by the per-processor cache.
    cache_hit_ratio: float = 0.85
    #: Memory references issued per instruction.
    refs_per_instruction: float = 0.30
    #: Bus operations one bus completes per instruction unit.
    bus_ops_per_instruction_time: float = 1.6

    # -- parallelism policy -------------------------------------------------------
    #: "node", "intra-node", or "production".
    granularity: str = GRANULARITY_INTRA_NODE
    #: Max concurrent activations of one node under intra-node
    #: parallelism (hash-partitioned memory banks).
    intra_node_ways: int = 4
    #: Process the several WME changes of one firing in parallel.
    wme_level_parallelism: bool = True
    #: Number of consecutive firings whose changes are processed
    #: together (>1 reproduces the "parallel firings" curves).
    firing_batch: int = 1
    #: Hierarchical-multiprocessor extension (Section 5: "in case it
    #: does become necessary to use a larger number of processors
    #: (100-1000) ... the use of hierarchical multiprocessors is
    #: proposed").  Processors split into this many clusters; each
    #: working-memory change is handled entirely inside one cluster, so
    #: shared state stays cluster-local.  1 = flat machine.
    clusters: int = 1

    # -- parallel-implementation overheads -------------------------------------------
    #: Work inflation of the parallel Rete relative to the shared serial
    #: network (loss of sharing, per-task bookkeeping).
    sharing_loss_factor: float = 1.48
    #: Lock acquire/release instructions per task.
    sync_cost_per_task: float = 12.0
    #: Serial conflict-resolution + act overhead per production firing,
    #: in instruction units.  The paper ignores these phases ("match ...
    #: takes about 90% of the total time" and the others parallelise
    #: easily); a non-zero value models them as an Amdahl term at the
    #: recognize--act barrier.
    conflict_resolution_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("need at least one processor")
        if self.scheduler not in (SCHEDULER_HARDWARE, SCHEDULER_SOFTWARE):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.granularity not in (
            GRANULARITY_NODE,
            GRANULARITY_INTRA_NODE,
            GRANULARITY_PRODUCTION,
        ):
            raise ValueError(f"unknown granularity {self.granularity!r}")
        if not 0.0 <= self.cache_hit_ratio <= 1.0:
            raise ValueError("cache_hit_ratio must be in [0, 1]")
        if self.software_queues < 1 or self.intra_node_ways < 1 or self.firing_batch < 1:
            raise ValueError("counts must be >= 1")
        if self.buses < 1:
            raise ValueError("need at least one bus")
        if self.clusters < 1 or self.clusters > self.processors:
            raise ValueError("clusters must be between 1 and the processor count")

    # -- derived quantities ----------------------------------------------------------

    @property
    def cluster_size(self) -> int:
        """Processors per cluster (the last cluster takes any remainder)."""
        return self.processors // self.clusters

    def cluster_of(self, processor: int) -> int:
        """Which cluster a processor index belongs to."""
        return min(processor // self.cluster_size, self.clusters - 1)

    @property
    def dispatch_cost(self) -> float:
        """Instruction units one dispatch occupies its queue for."""
        if self.scheduler == SCHEDULER_HARDWARE:
            return self.hardware_dispatch_cost
        return self.software_dispatch_cost

    @property
    def dispatch_queues(self) -> int:
        """Parallel dispatch channels (hardware scheduler has one fast one)."""
        if self.scheduler == SCHEDULER_HARDWARE:
            return 1
        return self.software_queues

    @property
    def per_processor_bus_demand(self) -> float:
        """Bus operations per instruction unit one running processor makes."""
        return self.refs_per_instruction * (1.0 - self.cache_hit_ratio)

    @property
    def bus_capacity(self) -> float:
        """Total bus operations per instruction unit across all buses."""
        return self.buses * self.bus_ops_per_instruction_time

    def bus_slowdown(self, running: int) -> float:
        """Execution stretch when *running* processors execute at once.

        A linear saturation model: below capacity the bus is invisible;
        above it, everyone slows by demand/capacity.  The paper's claim
        that one bus carries ~32 processors holds at the defaults:
        32 x 0.045 = 1.44 < 1.6.
        """
        demand = running * self.per_processor_bus_demand
        if demand <= self.bus_capacity:
            return 1.0
        return demand / self.bus_capacity

    @property
    def work_inflation(self) -> float:
        """Cost multiplier vs. the shared serial network.

        Production granularity replicates shared work explicitly during
        trace regranularisation, so no additional inflation applies.
        """
        if self.granularity == GRANULARITY_PRODUCTION:
            return 1.0
        return self.sharing_loss_factor

    def seconds(self, instruction_units: float) -> float:
        """Convert simulated instruction units to wall-clock seconds."""
        return instruction_units / (self.mips * 1e6)

    def with_processors(self, processors: int) -> "MachineConfig":
        """A copy with a different processor count (for sweeps)."""
        return replace(self, processors=processors)


#: The machine of the paper's headline numbers: 32 x 2 MIPS, hardware
#: scheduler, intra-node + wme-level parallelism.
PAPER_PSM = MachineConfig()

#: The same machine restricted to coarse production parallelism.
PRODUCTION_PARALLEL_PSM = MachineConfig(granularity=GRANULARITY_PRODUCTION)
