"""Simulation results and the paper's performance metrics.

The quantities Section 6 reports:

* **concurrency** -- average number of processors kept busy
  (Figure 6-1); "busy" includes scheduling, synchronisation, and
  inflated work, which is why it exceeds...
* **true speed-up** -- execution time of the best serial implementation
  (the shared serial Rete) divided by the parallel makespan;
* the **lost factor** between the two (paper: 15.92 / 8.25 = 1.93),
  decomposed into work inflation (sharing loss), scheduling overhead,
  and synchronisation overhead;
* **execution speed** in wme-changes/sec and production firings/sec at
  the machine's MIPS rating (Figure 6-2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .machine import MachineConfig


@dataclass(frozen=True)
class TaskPlacement:
    """Where and when one task ran (recorded on request)."""

    uid: int
    kind: str
    processor: int
    start: float
    end: float


@dataclass
class SimulationResult:
    """Everything one simulator run measures.

    Time quantities are in instruction units (one unit = one
    instruction on one processor); use :attr:`seconds` and the
    throughput properties for wall-clock figures.
    """

    config: MachineConfig
    trace_name: str
    makespan: float
    #: Sum over tasks of the span their processor was occupied
    #: (dispatch wait + dispatch + sync + stretched execution).
    busy_time: float
    #: Instructions actually executed for match work (inflation and bus
    #: stretch included).
    executed_work: float
    #: The serial reference cost of the same run (shared serial Rete).
    serial_cost: float
    #: Dispatch (scheduling) instruction total.
    dispatch_work: float
    #: Synchronisation instruction total.
    sync_work: float
    #: Time processors spent waiting on dispatch queues.
    queue_wait: float
    total_tasks: int
    total_changes: int
    total_firings: int
    #: Peak processors simultaneously occupied.
    peak_concurrency: int = 0
    #: Sum of per-batch critical paths (infinite-processor bound).
    critical_path: float = 0.0
    #: Per-task (processor, start, end) spans; None unless the run was
    #: made with ``record_placements=True``.
    placements: list[TaskPlacement] | None = None

    # -- headline metrics -------------------------------------------------------

    @property
    def concurrency(self) -> float:
        """Average processors kept busy (Figure 6-1's y-axis)."""
        return self.busy_time / self.makespan if self.makespan else 0.0

    @property
    def true_speedup(self) -> float:
        """Speed-up over the best serial implementation (Section 6)."""
        return self.serial_cost / self.makespan if self.makespan else 0.0

    @property
    def lost_factor(self) -> float:
        """concurrency / true speed-up (paper: 1.93 at 32 processors)."""
        return self.concurrency / self.true_speedup if self.true_speedup else 0.0

    @property
    def seconds(self) -> float:
        return self.config.seconds(self.makespan)

    @property
    def wme_changes_per_second(self) -> float:
        """Figure 6-2's y-axis."""
        return self.total_changes / self.seconds if self.seconds else 0.0

    @property
    def firings_per_second(self) -> float:
        return self.total_firings / self.seconds if self.seconds else 0.0

    # -- loss decomposition ---------------------------------------------------------

    @property
    def work_inflation(self) -> float:
        """Executed work / serial work: the sharing-loss component."""
        return self.executed_work / self.serial_cost if self.serial_cost else 0.0

    @property
    def scheduling_fraction(self) -> float:
        """Share of busy time spent dispatching or queue-waiting."""
        if not self.busy_time:
            return 0.0
        return (self.dispatch_work + self.queue_wait) / self.busy_time

    @property
    def sync_fraction(self) -> float:
        """Share of busy time spent on lock handling."""
        return self.sync_work / self.busy_time if self.busy_time else 0.0

    @property
    def utilization(self) -> float:
        """Busy time over total processor-time."""
        capacity = self.makespan * self.config.processors
        return self.busy_time / capacity if capacity else 0.0

    def summary(self) -> str:
        """A one-paragraph human-readable report."""
        return (
            f"{self.trace_name} on {self.config.processors}p@{self.config.mips}MIPS "
            f"[{self.config.granularity}/{self.config.scheduler}]: "
            f"concurrency {self.concurrency:.2f}, true speed-up {self.true_speedup:.2f} "
            f"(lost factor {self.lost_factor:.2f}), "
            f"{self.wme_changes_per_second:.0f} wme-changes/s, "
            f"{self.firings_per_second:.0f} firings/s"
        )


@dataclass(frozen=True)
class MeasuredRun:
    """Wall-clock measurement of one live executor run.

    The live counterpart of :class:`SimulationResult`: where the
    simulator *predicts* concurrency from a task trace and a machine
    model, this records what a real run on
    :class:`~repro.parallel.executor.ParallelMatcher` actually took.
    """

    label: str
    workers: int
    #: Wall-clock seconds of the parallel run.
    elapsed: float
    #: Wall-clock seconds of the serial reference (shared serial Rete).
    serial_elapsed: float
    total_changes: int = 0
    total_firings: int = 0

    @property
    def speedup(self) -> float:
        """Measured wall-clock speed-up over the serial reference."""
        return self.serial_elapsed / self.elapsed if self.elapsed else 0.0

    @property
    def wme_changes_per_second(self) -> float:
        return self.total_changes / self.elapsed if self.elapsed else 0.0


def predicted_vs_measured(
    predicted: SimulationResult,
    measured: MeasuredRun,
    cost_model: str = "paper-sec3",
) -> dict[str, float | int | str]:
    """Line up a DES prediction with a live measurement of the same run.

    Returns a flat record (JSON-ready) pairing the simulator's
    concurrency/true-speed-up against the executor's wall-clock
    speed-up, plus the honesty ratio ``measured.speedup /
    predicted.true_speedup`` -- how much of the predicted gain the host
    actually delivered (1.0 = the model was exact; far below 1.0 on a
    GIL-bound or core-starved host).
    """
    ratio = (
        measured.speedup / predicted.true_speedup
        if predicted.true_speedup
        else 0.0
    )
    return {
        "label": measured.label,
        "workers": measured.workers,
        "cost_model": cost_model,
        "predicted_processors": predicted.config.processors,
        "predicted_concurrency": predicted.concurrency,
        "predicted_true_speedup": predicted.true_speedup,
        "predicted_lost_factor": predicted.lost_factor,
        "measured_serial_seconds": measured.serial_elapsed,
        "measured_parallel_seconds": measured.elapsed,
        "measured_speedup": measured.speedup,
        "measured_over_predicted": ratio,
        "total_changes": measured.total_changes,
        "total_firings": measured.total_firings,
    }


def average_concurrency(results: Sequence[SimulationResult]) -> float:
    """Mean concurrency across systems (the paper's 15.92 aggregate)."""
    return sum(r.concurrency for r in results) / len(results) if results else 0.0


def average_speed(results: Sequence[SimulationResult]) -> float:
    """Mean wme-changes/sec across systems (the paper's 9400)."""
    if not results:
        return 0.0
    return sum(r.wme_changes_per_second for r in results) / len(results)


def average_true_speedup(results: Sequence[SimulationResult]) -> float:
    """Mean true speed-up across systems (the paper's 8.25)."""
    return sum(r.true_speedup for r in results) / len(results) if results else 0.0
