"""Re-granularising traces for the simulator (Section 4's comparison).

The paper contrasts three ways of carving match work into schedulable
tasks:

* **node parallelism** -- each node activation is a task; activations of
  the *same* node serialise on its memory (1-way lock);
* **intra-node parallelism** -- the proposed refinement: multiple
  activations of one node may run concurrently (k-way lock, modelling
  hash-partitioned node memories), at some synchronisation cost;
* **production parallelism** -- the rejected coarse alternative: all
  match work of one affected production is a single serial task, and
  work on nodes shared between productions is *replicated* into every
  using production (sharing cannot survive distribution).

:func:`build_schedule` converts a :class:`~repro.trace.events.Trace`
into batches of :class:`SimTask` under a machine configuration,
encoding:

* intra-change dependencies (the activation DAG),
* change sequencing (parallel when ``wme_level_parallelism``, else each
  change waits for the previous change of its firing),
* firing batching (``firing_batch`` consecutive firings per barrier --
  the "parallel firings" curves).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..trace.events import ChangeTrace, Trace
from .machine import (
    GRANULARITY_PRODUCTION,
    MachineConfig,
)

#: Lock key of the shared conflict set (terminal activations).
CONFLICT_SET_LOCK = -1


@dataclass(frozen=True)
class SimTask:
    """One schedulable unit for the simulator.

    ``pin`` restricts execution to one processor index (static
    partitioning -- the compile-time assignment the paper's shared-memory
    argument is against).  ``cluster`` restricts execution to one cluster
    of processors (the hierarchical-multiprocessor extension of
    Section 5).  Both default to None: any processor may run the task,
    which is the run-time assignment shared memory enables.
    """

    uid: int
    cost: float
    deps: tuple[int, ...]
    lock_key: int | None
    kind: str
    firing: int
    change: int
    pin: int | None = None
    cluster: int | None = None
    #: Production name, set on production-granularity tasks only (used
    #: by the static partitioner to pin work).
    production: str = ""


@dataclass
class Batch:
    """Tasks between two synchronisation barriers."""

    index: int
    tasks: list[SimTask] = field(default_factory=list)


@dataclass
class Schedule:
    """The simulator's workload: barrier-separated task batches."""

    batches: list[Batch]
    total_changes: int
    total_firings: int

    @property
    def total_tasks(self) -> int:
        return sum(len(b.tasks) for b in self.batches)

    @property
    def total_cost(self) -> float:
        return sum(t.cost for b in self.batches for t in b.tasks)


class _UidAllocator:
    def __init__(self) -> None:
        self._next = 0

    def take(self) -> int:
        uid = self._next
        self._next += 1
        return uid


def _node_tasks(
    change: ChangeTrace,
    uids: _UidAllocator,
    extra_deps: tuple[int, ...],
    firing: int,
    change_index: int,
) -> list[SimTask]:
    """Node-granularity tasks for one change (lock = the node's memory)."""
    out: list[SimTask] = []
    local_uid: dict[int, int] = {}
    for task in change.tasks:
        uid = uids.take()
        local_uid[task.index] = uid
        deps = tuple(local_uid[d] for d in task.deps)
        if not deps:
            deps = extra_deps
        if task.kind == "term":
            lock: int | None = CONFLICT_SET_LOCK
        elif task.kind in ("amem", "bmem", "join", "neg"):
            lock = task.node_id
        else:
            lock = None
        out.append(
            SimTask(
                uid=uid,
                cost=float(task.cost),
                deps=deps,
                lock_key=lock,
                kind=task.kind,
                firing=firing,
                change=change_index,
            )
        )
    return out


#: Registry that maps production names to stable synthetic lock keys,
#: disjoint from node ids (which are positive) and the conflict set (-1).
class _ProductionLocks:
    def __init__(self) -> None:
        self._keys: dict[str, int] = {}

    def key(self, production: str) -> int:
        if production not in self._keys:
            self._keys[production] = -2 - len(self._keys)
        return self._keys[production]


def _production_tasks(
    change: ChangeTrace,
    uids: _UidAllocator,
    extra_deps: tuple[int, ...],
    firing: int,
    change_index: int,
    locks: _ProductionLocks,
) -> list[SimTask]:
    """Production-granularity tasks: one serial lump per affected rule.

    Work on shared nodes is charged to *every* production using them
    (loss of sharing), and unattributed work (the alpha root) is
    likewise replicated, since each production's matcher must examine
    the change itself.
    """
    costs: dict[str, float] = {}
    shared_overhead = 0.0
    for task in change.tasks:
        if task.productions:
            for production in task.productions:
                costs[production] = costs.get(production, 0.0) + task.cost
        else:
            shared_overhead += task.cost
    out: list[SimTask] = []
    if not costs:
        # Nobody affected: the change still pays its alpha pass.
        uid = uids.take()
        out.append(
            SimTask(
                uid=uid,
                cost=max(shared_overhead, 1.0),
                deps=extra_deps,
                lock_key=None,
                kind="production",
                firing=firing,
                change=change_index,
            )
        )
        return out
    for production in sorted(costs):
        uid = uids.take()
        out.append(
            SimTask(
                uid=uid,
                cost=costs[production] + shared_overhead,
                deps=extra_deps,
                lock_key=locks.key(production),
                kind="production",
                firing=firing,
                change=change_index,
                production=production,
            )
        )
    return out


def build_schedule(trace: Trace, config: MachineConfig) -> Schedule:
    """Compile *trace* into simulator batches under *config*'s policy."""
    uids = _UidAllocator()
    production_locks = _ProductionLocks()
    batches: list[Batch] = []
    firing_count = len(trace.firings)
    change_counter = 0

    for batch_start in range(0, firing_count, config.firing_batch):
        batch = Batch(index=len(batches))
        group = trace.firings[batch_start : batch_start + config.firing_batch]
        for offset, firing in enumerate(group):
            firing_index = batch_start + offset
            previous_change_uids: tuple[int, ...] = ()
            for change_index, change in enumerate(firing.changes):
                extra = () if config.wme_level_parallelism else previous_change_uids
                if config.granularity == GRANULARITY_PRODUCTION:
                    tasks = _production_tasks(
                        change, uids, extra, firing_index, change_index, production_locks
                    )
                else:
                    tasks = _node_tasks(change, uids, extra, firing_index, change_index)
                if config.clusters > 1:
                    # Hierarchical machine: the whole change stays in one
                    # cluster (its node state lives there); changes are
                    # spread round-robin across clusters.
                    cluster = change_counter % config.clusters
                    tasks = [replace(t, cluster=cluster) for t in tasks]
                change_counter += 1
                batch.tasks.extend(tasks)
                previous_change_uids = tuple(t.uid for t in tasks)
        if batch.tasks:
            batches.append(batch)

    return Schedule(
        batches=batches,
        total_changes=trace.total_changes,
        total_firings=firing_count,
    )
