"""The OPS5 production-system language substrate.

This package implements the language the paper studies (Section 2):
working memory, condition elements, productions, the LEX/MEA
conflict-resolution strategies, a parser for OPS5 source text, and the
recognize--act interpreter.  Matching itself is pluggable -- see
:mod:`repro.rete`, :mod:`repro.treat`, and :mod:`repro.naive`.
"""

from .actions import (
    Action,
    Bind,
    Compute,
    Constant,
    Expression,
    Halt,
    Make,
    Modify,
    Remove,
    VariableRef,
    Write,
)
from .condition import (
    Bindings,
    CEAnalysis,
    ConditionElement,
    ConjunctiveTest,
    ConstantTest,
    DisjunctiveTest,
    JoinTest,
    Predicate,
    PredicateTest,
    Test,
    VariableTest,
    analyze_lhs,
    wme_passes_alpha,
)
from .conflict import ConflictSet, LexStrategy, MeaStrategy, Strategy, strategy_named
from .engine import (
    BatchResult,
    CycleRecord,
    EngineListener,
    MATCHER_NAMES,
    ProductionSystem,
    RunResult,
    matcher_named,
)
from .errors import (
    DuplicateProductionError,
    ExecutionError,
    Ops5Error,
    ParseError,
    ValidationError,
    WorkingMemoryError,
)
from .matcher import ChangeRecord, Matcher, MatchStats
from .parser import Program, parse_production, parse_program, parse_wme_specs
from .production import Instantiation, Production
from .unparse import (
    unparse_action,
    unparse_condition,
    unparse_production,
    unparse_program,
    unparse_test,
)
from .watch import CHANGES, CompositeListener, FIRINGS, SILENT, WatchListener
from .wme import NIL, Value, WME, WorkingMemory, make_wme

__all__ = [
    "Action",
    "Bind",
    "Bindings",
    "CEAnalysis",
    "ChangeRecord",
    "Compute",
    "ConditionElement",
    "ConflictSet",
    "ConjunctiveTest",
    "Constant",
    "ConstantTest",
    "CHANGES",
    "CompositeListener",
    "BatchResult",
    "CycleRecord",
    "DisjunctiveTest",
    "DuplicateProductionError",
    "EngineListener",
    "ExecutionError",
    "Expression",
    "FIRINGS",
    "Halt",
    "Instantiation",
    "JoinTest",
    "LexStrategy",
    "MATCHER_NAMES",
    "Make",
    "Matcher",
    "MatchStats",
    "MeaStrategy",
    "Modify",
    "NIL",
    "Ops5Error",
    "ParseError",
    "Predicate",
    "PredicateTest",
    "Production",
    "ProductionSystem",
    "Program",
    "Remove",
    "RunResult",
    "SILENT",
    "Strategy",
    "Test",
    "ValidationError",
    "Value",
    "WatchListener",
    "VariableRef",
    "VariableTest",
    "WME",
    "WorkingMemory",
    "WorkingMemoryError",
    "Write",
    "analyze_lhs",
    "make_wme",
    "matcher_named",
    "parse_production",
    "parse_program",
    "parse_wme_specs",
    "strategy_named",
    "unparse_action",
    "unparse_condition",
    "unparse_production",
    "unparse_program",
    "unparse_test",
    "wme_passes_alpha",
]
