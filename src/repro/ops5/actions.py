"""Right-hand-side actions and value expressions.

The RHS of an OPS5 production is an unconditional sequence of actions
executed when the production fires.  The actions that change working
memory are:

* ``(make class ^attr value ...)`` — create a new WME;
* ``(remove k)`` — delete the WME matched by the *k*-th condition element;
* ``(modify k ^attr value ...)`` — remove + re-make with updated fields
  (the replacement WME receives a fresh timetag, as in OPS5).

Non-memory actions: ``(write ...)`` for output, ``(bind <x> value)`` for
RHS-local variables, ``(halt)`` to stop the interpreter.

Value positions accept *expressions*: constants, variables bound on the
LHS (or by ``bind``), and ``(compute ...)`` arithmetic.  ``compute``
evaluates a flat infix sequence strictly left to right (OPS5 gives all
operators equal precedence), e.g. ``(compute <x> + 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from .errors import ExecutionError
from .condition import Bindings
from .wme import Value, WME, is_number


# --------------------------------------------------------------------------
# Value expressions
# --------------------------------------------------------------------------


class Expression:
    """Base class for RHS value expressions."""

    __slots__ = ()

    def evaluate(self, bindings: Bindings) -> Value:
        raise NotImplementedError

    def variables(self) -> list[str]:
        return []


@dataclass(frozen=True)
class Constant(Expression):
    """A literal symbol or number."""

    value: Value

    def evaluate(self, bindings: Bindings) -> Value:
        return self.value

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VariableRef(Expression):
    """A reference to a variable bound on the LHS or by ``bind``."""

    name: str

    def evaluate(self, bindings: Bindings) -> Value:
        try:
            return bindings[self.name]
        except KeyError:
            raise ExecutionError(f"variable <{self.name}> is unbound on the RHS") from None

    def variables(self) -> list[str]:
        return [self.name]

    def __repr__(self) -> str:
        return f"<{self.name}>"


_ARITH: Mapping[str, Callable[[float, float], float]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b,
    "\\\\": lambda a, b: a % b,  # OPS5 writes modulus as \\
    "mod": lambda a, b: a % b,
}


@dataclass(frozen=True)
class Compute(Expression):
    """``(compute a <op> b <op> c ...)`` evaluated left to right.

    All operands must evaluate to numbers.  Results that are whole floats
    are normalised back to ``int`` so arithmetic on integers stays in the
    integers (OPS5 numbers are integers in the common implementations).
    """

    operands: tuple[Expression, ...]
    operators: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.operands) != len(self.operators) + 1:
            raise ExecutionError(
                "compute needs operands interleaved with operators, e.g. "
                "(compute <x> + 1)"
            )
        for op in self.operators:
            if op not in _ARITH:
                raise ExecutionError(f"unknown compute operator {op!r}")

    def evaluate(self, bindings: Bindings) -> Value:
        acc = self.operands[0].evaluate(bindings)
        if not is_number(acc):
            raise ExecutionError(f"compute on non-numeric value {acc!r}")
        for op, operand in zip(self.operators, self.operands[1:]):
            rhs = operand.evaluate(bindings)
            if not is_number(rhs):
                raise ExecutionError(f"compute on non-numeric value {rhs!r}")
            try:
                acc = _ARITH[op](acc, rhs)
            except ZeroDivisionError:
                raise ExecutionError("compute: division by zero") from None
        if isinstance(acc, float) and acc.is_integer():
            acc = int(acc)
        return acc

    def variables(self) -> list[str]:
        out: list[str] = []
        for operand in self.operands:
            out.extend(operand.variables())
        return out

    def __repr__(self) -> str:
        parts: list[str] = [repr(self.operands[0])]
        for op, operand in zip(self.operators, self.operands[1:]):
            parts.append(op)
            parts.append(repr(operand))
        return f"(compute {' '.join(parts)})"


# --------------------------------------------------------------------------
# Actions
# --------------------------------------------------------------------------


class Action:
    """Base class for RHS actions.

    Actions are *descriptions*; execution is performed by the engine via
    :meth:`~repro.ops5.engine.ProductionSystem` so that working-memory
    changes are routed through the active matcher.
    """

    __slots__ = ()

    def variables(self) -> list[str]:
        """LHS variables this action references (for validation)."""
        return []

    def ce_references(self) -> list[int]:
        """1-based condition-element indices this action references."""
        return []


@dataclass(frozen=True)
class Make(Action):
    """``(make class ^attr expr ...)``."""

    cls: str
    attributes: tuple[tuple[str, Expression], ...]

    def build(self, bindings: Bindings) -> WME:
        values = {attr: expr.evaluate(bindings) for attr, expr in self.attributes}
        return WME(self.cls, values)

    def variables(self) -> list[str]:
        out: list[str] = []
        for _attr, expr in self.attributes:
            out.extend(expr.variables())
        return out

    def __repr__(self) -> str:
        parts = [self.cls] + [f"^{a} {e!r}" for a, e in self.attributes]
        return f"(make {' '.join(parts)})"


@dataclass(frozen=True)
class Remove(Action):
    """``(remove k)`` — delete the WME bound to the k-th CE (1-based)."""

    ce_index: int

    def ce_references(self) -> list[int]:
        return [self.ce_index]

    def __repr__(self) -> str:
        return f"(remove {self.ce_index})"


@dataclass(frozen=True)
class Modify(Action):
    """``(modify k ^attr expr ...)`` — remove + make with updates."""

    ce_index: int
    attributes: tuple[tuple[str, Expression], ...]

    def updates(self, bindings: Bindings) -> dict[str, Value]:
        return {attr: expr.evaluate(bindings) for attr, expr in self.attributes}

    def variables(self) -> list[str]:
        out: list[str] = []
        for _attr, expr in self.attributes:
            out.extend(expr.variables())
        return out

    def ce_references(self) -> list[int]:
        return [self.ce_index]

    def __repr__(self) -> str:
        parts = [str(self.ce_index)] + [f"^{a} {e!r}" for a, e in self.attributes]
        return f"(modify {' '.join(parts)})"


@dataclass(frozen=True)
class Write(Action):
    """``(write expr ...)`` — append evaluated values to the output log."""

    values: tuple[Expression, ...]

    def render(self, bindings: Bindings) -> str:
        return " ".join(str(v.evaluate(bindings)) for v in self.values)

    def variables(self) -> list[str]:
        out: list[str] = []
        for expr in self.values:
            out.extend(expr.variables())
        return out

    def __repr__(self) -> str:
        return f"(write {' '.join(repr(v) for v in self.values)})"


@dataclass(frozen=True)
class Bind(Action):
    """``(bind <x> expr)`` — bind an RHS-local variable."""

    name: str
    expression: Expression

    def variables(self) -> list[str]:
        return self.expression.variables()

    def __repr__(self) -> str:
        return f"(bind <{self.name}> {self.expression!r})"


@dataclass(frozen=True)
class Halt(Action):
    """``(halt)`` — stop the recognize--act loop after this firing."""

    def __repr__(self) -> str:
        return "(halt)"


def actions_are_valid(actions: Sequence[Action], ce_is_negated: Sequence[bool]) -> list[str]:
    """Validate action CE references; return a list of problems (empty = ok).

    ``remove``/``modify`` must reference an existing, *positive* CE: a
    negated CE matched nothing, so there is no element to remove.
    """
    problems: list[str] = []
    for action in actions:
        for index in action.ce_references():
            if index < 1 or index > len(ce_is_negated):
                problems.append(
                    f"{action!r} references condition element {index}, but the LHS "
                    f"has only {len(ce_is_negated)}"
                )
            elif ce_is_negated[index - 1]:
                problems.append(
                    f"{action!r} references negated condition element {index}; "
                    "negated elements match no WME"
                )
    return problems
