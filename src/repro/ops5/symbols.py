"""Symbol interning: OPS5 symbols as small, dense integer ids.

The paper's PSM reaches its 9400 wme-changes/sec only because a
scheduling operation costs about one bus cycle (Section 5); every
software analogue of that number starts with making the *unit of work*
small.  Two hot paths in this repo hash and compare symbol strings over
and over:

* the hash-indexed Rete join memories (``JoinNode._token_key`` /
  ``_wme_key``), which build a key tuple per activation, and
* the parallel backend's wire protocol, where every WME attribute and
  value crosses a process boundary.

A :class:`SymbolTable` maps each distinct symbol string to a dense
``int`` id, one allocation per *distinct* symbol ever seen.  Join keys
then carry ints (C-speed hashing and equality), and the shared-memory
ring transport ships 4-byte ids instead of length-prefixed strings --
the Hiperfact observation that fact-layout interning, not algorithmic
novelty, is the first-order lever for Rete-family throughput.

Two usage patterns share this module:

* **The process-wide table** (:data:`SYMBOLS`, via :func:`intern_id`)
  -- used by Rete's hot-path keys and by the *coordinator* side of the
  ring transport, so one id space serves both.  Ids are process-local:
  they must never be compared across processes, only through a wire
  mirror.
* **Wire mirrors** -- a worker keeps a private :class:`SymbolTable`
  grown strictly by :meth:`SymbolTable.extend` from the deltas the
  coordinator ships in each batch frame, so the worker's ``id -> text``
  view is always a prefix-consistent copy of the coordinator's.

Numbers are never interned: OPS5 equality compares ``1`` and ``1.0``
equal but a symbol never equals a number, so join keys tag interned
positions with a type mask (see ``rete/nodes.py``) and the wire codec
tags every value (see ``parallel/codec.py``).
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

__all__ = ["SymbolTable", "SYMBOLS", "intern_id"]


class SymbolTable:
    """A dense ``str <-> int`` intern table.

    Ids are assigned sequentially from 0 in intern order, which is what
    lets a remote mirror stay consistent by receiving only the tail of
    new symbols (``delta``/``extend``).  Interning is thread-safe: the
    read path is a plain dict probe (atomic under the GIL); only a miss
    takes the lock, so concurrent sessions interning the same new
    symbol cannot race two different ids onto it.
    """

    __slots__ = ("_ids", "_texts", "_lock")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._texts: list[str] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._texts)

    def intern_id(self, text: str) -> int:
        """The id for *text*, allocating the next one on first sight."""
        ident = self._ids.get(text)
        if ident is not None:
            return ident
        with self._lock:
            ident = self._ids.get(text)
            if ident is None:
                ident = len(self._texts)
                self._texts.append(text)
                self._ids[text] = ident
            return ident

    def try_id(self, text: str) -> Optional[int]:
        """The id for *text* if already interned, else ``None``.

        The worker side of the wire uses this: a mirror must never
        allocate ids of its own (the coordinator owns the id space), so
        unknown strings fall back to inline encoding.
        """
        return self._ids.get(text)

    def text_of(self, ident: int) -> str:
        """The symbol string for *ident* (raises ``IndexError`` if unknown)."""
        return self._texts[ident]

    def delta(self, start: int) -> list[str]:
        """All symbol texts with ids ``>= start``, in id order.

        What a batch frame ships to keep a mirror current; the sender
        remembers ``len(table)`` afterwards as the new watermark.
        """
        return self._texts[start:]

    def extend(self, texts: Iterable[str]) -> None:
        """Adopt a delta from the table that owns the id space.

        Ids are assigned in arrival order, so feeding the deltas in
        send order reproduces the owner's exact ``id -> text`` mapping.
        """
        with self._lock:
            for text in texts:
                self._ids.setdefault(text, len(self._texts))
                self._texts.append(text)

    def snapshot(self) -> dict:
        """JSON-ready summary (the obs ``transport`` section reports it)."""
        return {"symbols": len(self._texts)}

    # Pickle support: a table inside a checkpointed state travels by
    # content.  The lock is recreated on load.
    def __getstate__(self) -> list[str]:
        return list(self._texts)

    def __setstate__(self, texts: list[str]) -> None:
        self._texts = list(texts)
        self._ids = {text: i for i, text in enumerate(self._texts)}
        self._lock = threading.Lock()


#: The process-wide table: Rete join keys and the coordinator side of
#: every ring transport share this one id space.
SYMBOLS = SymbolTable()

#: Bound method lookup hoisted once -- the hot paths call this a lot.
intern_id = SYMBOLS.intern_id
