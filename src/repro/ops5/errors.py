"""Exception hierarchy for the OPS5 engine.

All errors raised by the :mod:`repro.ops5` package derive from
:class:`Ops5Error`, so callers can catch one type to handle any
engine-level failure.
"""

from __future__ import annotations


class Ops5Error(Exception):
    """Base class for every error raised by the OPS5 engine."""


class ParseError(Ops5Error):
    """Raised when OPS5 source text cannot be parsed.

    Carries the approximate source position to make diagnostics useful.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class ValidationError(Ops5Error):
    """Raised when a production is structurally invalid.

    Examples: a negated first condition element, a ``modify`` action that
    refers to a negated condition element, or an RHS variable that is never
    bound on the LHS.
    """


class ExecutionError(Ops5Error):
    """Raised when an RHS action fails at run time.

    Examples: ``remove 3`` in a production with two condition elements, or
    ``compute`` applied to non-numeric values.
    """


class WorkingMemoryError(Ops5Error):
    """Raised on inconsistent working-memory operations.

    Examples: removing a WME that is not present, or re-adding a WME object
    that already carries a timetag.
    """


class DuplicateProductionError(Ops5Error):
    """Raised when a production with an existing name is added."""
