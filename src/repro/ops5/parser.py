"""Parser for OPS5 source text.

The accepted language is the attribute--value subset of OPS5 used
throughout the paper::

    (literalize block id color selected)

    (p find-colored-blk
      (goal ^type find-blk ^color <c>)
      (block ^id <i> ^color <c> ^selected no)
      -->
      (modify 2 ^selected yes))

Supported LHS forms: constants, variables ``<x>``, predicates
``= <> < <= > >= <=>`` applied to a constant or variable, conjunctive
tests ``{ ... }``, disjunctive tests ``<< a b c >>``, and negated
condition elements (a ``-`` before the pattern).

Supported RHS actions: ``make``, ``remove`` (one or more CE indices),
``modify``, ``write``, ``bind``, ``halt``.  Value positions accept
constants, variables, and ``(compute ...)`` arithmetic.

Element classes may be declared with ``literalize``; declarations are
recorded (and attribute names are checked against them when present) but
are not required -- undeclared classes are accepted with free-form
attributes, which keeps small examples terse.

Comments run from ``;`` to end of line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Sequence

from .actions import (
    Action,
    Bind,
    Compute,
    Constant,
    Expression,
    Halt,
    Make,
    Modify,
    Remove,
    VariableRef,
    Write,
)
from .condition import (
    ConditionElement,
    ConjunctiveTest,
    ConstantTest,
    DisjunctiveTest,
    Predicate,
    PredicateTest,
    Test,
    VariableTest,
)
from .errors import ParseError
from .production import Production
from .wme import Value


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for diagnostics)."""

    kind: str
    text: str
    line: int
    column: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>;[^\n]*)
  | (?P<arrow>-->)
  | (?P<ldisj><<)
  | (?P<rdisj>>>)
  | (?P<var><[A-Za-z_][A-Za-z0-9_?*-]*>)
  | (?P<pred><=>|<=|<>|>=|<|>|=)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
  | (?P<attr>\^[A-Za-z_][A-Za-z0-9_?*-]*)
  | (?P<number>-?\d+(?:\.\d+)?(?=[\s(){}^;]|$))
  | (?P<symbol>[A-Za-z0-9_*+/!?.$%&\\-][A-Za-z0-9_*+/!?.$%&\\-]*)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[Token]:
    """Split OPS5 source into tokens, raising :class:`ParseError` on junk."""
    tokens: list[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            column = pos - line_start + 1
            raise ParseError(f"unexpected character {text[pos]!r}", line, column)
        kind = match.lastgroup or ""
        lexeme = match.group()
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, lexeme, line, match.start() - line_start + 1))
        newlines = lexeme.count("\n")
        if newlines:
            line += newlines
            line_start = match.start() + lexeme.rfind("\n") + 1
        pos = match.end()
    return tokens


def _to_value(token: Token) -> Value:
    """Convert a number/symbol token to a :data:`Value`."""
    if token.kind == "number":
        text = token.text
        return float(text) if "." in text else int(text)
    return token.text


@dataclass
class Program:
    """A parsed OPS5 program: productions plus literalize declarations."""

    productions: list[Production] = field(default_factory=list)
    literalizations: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def production_named(self, name: str) -> Production:
        for production in self.productions:
            if production.name == name:
                return production
        raise KeyError(name)


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: Sequence[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token-stream primitives ------------------------------------------

    def _peek(self) -> Token | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            last = self._tokens[-1] if self._tokens else Token("", "", 1, 1)
            raise ParseError("unexpected end of input", last.line, last.column)
        self._pos += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.text!r}", token.line, token.column
            )
        return token

    def _at(self, kind: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == kind

    def _error(self, message: str) -> ParseError:
        token = self._peek() or Token("", "", 0, 0)
        return ParseError(message, token.line, token.column)

    # -- grammar ------------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while self._peek() is not None:
            self._expect("lparen")
            head = self._next()
            if head.kind == "symbol" and head.text == "literalize":
                name, attributes = self._parse_literalize()
                program.literalizations[name] = attributes
            elif head.kind == "symbol" and head.text == "p":
                program.productions.append(self._parse_production(program))
            else:
                raise ParseError(
                    f"expected 'p' or 'literalize', found {head.text!r}",
                    head.line,
                    head.column,
                )
        return program

    def _parse_literalize(self) -> tuple[str, tuple[str, ...]]:
        name = self._expect("symbol").text
        attributes: list[str] = []
        while not self._at("rparen"):
            attributes.append(self._expect("symbol").text)
        self._expect("rparen")
        return name, tuple(attributes)

    def _parse_production(self, program: Program) -> Production:
        name_token = self._next()
        if name_token.kind not in ("symbol", "number"):
            raise ParseError(
                f"expected production name, found {name_token.text!r}",
                name_token.line,
                name_token.column,
            )
        name = name_token.text
        conditions: list[ConditionElement] = []
        while not self._at("arrow"):
            conditions.append(self._parse_condition(program))
        self._expect("arrow")
        actions: list[Action] = []
        while not self._at("rparen"):
            actions.extend(self._parse_action())
        self._expect("rparen")
        return Production(name, conditions, actions)

    def _parse_condition(self, program: Program) -> ConditionElement:
        negated = False
        token = self._peek()
        if token is not None and token.kind == "symbol" and token.text == "-":
            self._next()
            negated = True
        self._expect("lparen")
        cls_token = self._expect("symbol")
        cls = cls_token.text
        declared = program.literalizations.get(cls)
        tests: dict[str, Test] = {}
        while not self._at("rparen"):
            attr_token = self._expect("attr")
            attribute = attr_token.text[1:]
            if declared is not None and attribute not in declared:
                raise ParseError(
                    f"attribute ^{attribute} is not literalized for class {cls}",
                    attr_token.line,
                    attr_token.column,
                )
            if attribute in tests:
                raise ParseError(
                    f"attribute ^{attribute} tested twice in one condition element "
                    f"(use a conjunctive test {{ ... }})",
                    attr_token.line,
                    attr_token.column,
                )
            tests[attribute] = self._parse_value_test()
        self._expect("rparen")
        return ConditionElement(cls, tests, negated)

    def _parse_value_test(self) -> Test:
        if self._at("lbrace"):
            self._next()
            inner: list[Test] = []
            while not self._at("rbrace"):
                inner.append(self._parse_simple_test())
            self._expect("rbrace")
            if not inner:
                raise self._error("empty conjunctive test { }")
            return ConjunctiveTest(tuple(inner))
        if self._at("ldisj"):
            self._next()
            values: list[Value] = []
            while not self._at("rdisj"):
                token = self._next()
                if token.kind not in ("symbol", "number"):
                    raise ParseError(
                        f"disjunctive tests hold constants only, found {token.text!r}",
                        token.line,
                        token.column,
                    )
                values.append(_to_value(token))
            self._expect("rdisj")
            if not values:
                raise self._error("empty disjunctive test << >>")
            return DisjunctiveTest(tuple(values))
        return self._parse_simple_test()

    def _parse_simple_test(self) -> Test:
        token = self._next()
        if token.kind == "pred":
            predicate = Predicate(token.text)
            operand_token = self._next()
            if operand_token.kind == "var":
                operand: ConstantTest | VariableTest = VariableTest(operand_token.text[1:-1])
            elif operand_token.kind in ("symbol", "number"):
                operand = ConstantTest(_to_value(operand_token))
            else:
                raise ParseError(
                    f"predicate operand must be a constant or variable, "
                    f"found {operand_token.text!r}",
                    operand_token.line,
                    operand_token.column,
                )
            if predicate is Predicate.EQ and isinstance(operand, ConstantTest):
                return operand  # "= c" is just the constant test
            return PredicateTest(predicate, operand)
        if token.kind == "var":
            return VariableTest(token.text[1:-1])
        if token.kind in ("symbol", "number"):
            return ConstantTest(_to_value(token))
        raise ParseError(f"expected a test, found {token.text!r}", token.line, token.column)

    # -- RHS ------------------------------------------------------------------

    def _parse_action(self) -> list[Action]:
        self._expect("lparen")
        head = self._expect("symbol")
        name = head.text
        if name == "make":
            cls = self._expect("symbol").text
            attributes = self._parse_attribute_expressions()
            self._expect("rparen")
            return [Make(cls, attributes)]
        if name == "remove":
            indices: list[int] = []
            while not self._at("rparen"):
                token = self._expect("number")
                indices.append(int(token.text))
            self._expect("rparen")
            if not indices:
                raise self._error("remove needs at least one condition-element index")
            return [Remove(i) for i in indices]
        if name == "modify":
            index = int(self._expect("number").text)
            attributes = self._parse_attribute_expressions()
            self._expect("rparen")
            return [Modify(index, attributes)]
        if name == "write":
            values: list[Expression] = []
            while not self._at("rparen"):
                values.append(self._parse_expression())
            self._expect("rparen")
            return [Write(tuple(values))]
        if name == "bind":
            var_token = self._expect("var")
            expression = self._parse_expression()
            self._expect("rparen")
            return [Bind(var_token.text[1:-1], expression)]
        if name == "halt":
            self._expect("rparen")
            return [Halt()]
        raise ParseError(f"unknown action {name!r}", head.line, head.column)

    def _parse_attribute_expressions(self) -> tuple[tuple[str, Expression], ...]:
        pairs: list[tuple[str, Expression]] = []
        while not self._at("rparen"):
            attr_token = self._expect("attr")
            pairs.append((attr_token.text[1:], self._parse_expression()))
        return tuple(pairs)

    def _parse_expression(self) -> Expression:
        token = self._next()
        if token.kind == "var":
            return VariableRef(token.text[1:-1])
        if token.kind in ("symbol", "number"):
            return Constant(_to_value(token))
        if token.kind == "lparen":
            head = self._expect("symbol")
            if head.text != "compute":
                raise ParseError(
                    f"only (compute ...) is callable in value position, "
                    f"found {head.text!r}",
                    head.line,
                    head.column,
                )
            operands: list[Expression] = [self._parse_expression()]
            operators: list[str] = []
            while not self._at("rparen"):
                op_token = self._next()
                if op_token.kind not in ("symbol", "pred"):
                    raise ParseError(
                        f"expected a compute operator, found {op_token.text!r}",
                        op_token.line,
                        op_token.column,
                    )
                operators.append(op_token.text)
                operands.append(self._parse_expression())
            self._expect("rparen")
            return Compute(tuple(operands), tuple(operators))
        raise ParseError(
            f"expected a value expression, found {token.text!r}", token.line, token.column
        )


def parse_program(text: str) -> Program:
    """Parse OPS5 source text into a :class:`Program`."""
    return _Parser(tokenize(text)).parse_program()


def parse_production(text: str) -> Production:
    """Parse source containing exactly one production."""
    program = parse_program(text)
    if len(program.productions) != 1:
        raise ParseError(
            f"expected exactly one production, found {len(program.productions)}"
        )
    return program.productions[0]


def parse_wme_specs(text: str) -> list[tuple[str, dict[str, Value]]]:
    """Parse ``(class ^attr value ...)`` element specs (for test setup).

    Returns (class, attributes) pairs ready to construct
    :class:`~repro.ops5.wme.WME` objects.
    """
    tokens = tokenize(text)
    parser = _Parser(tokens)
    specs: list[tuple[str, dict[str, Value]]] = []
    while parser._peek() is not None:
        parser._expect("lparen")
        cls = parser._expect("symbol").text
        attributes: dict[str, Value] = {}
        while not parser._at("rparen"):
            attr = parser._expect("attr").text[1:]
            value_token = parser._next()
            if value_token.kind not in ("symbol", "number"):
                raise ParseError(
                    f"WME values must be constants, found {value_token.text!r}",
                    value_token.line,
                    value_token.column,
                )
            attributes[attr] = _to_value(value_token)
        parser._expect("rparen")
        specs.append((cls, attributes))
    return specs
