"""The recognize--act interpreter.

:class:`ProductionSystem` ties together a working memory, a matcher, and
a conflict-resolution strategy, and runs the OPS5 three-phase cycle:

1. **Match** -- performed incrementally: every working-memory change is
   routed through the matcher, so by the time a cycle "starts" the
   conflict set is already current.
2. **Conflict resolution** -- the strategy picks one un-fired
   instantiation; if none exists the interpreter halts.
3. **Act** -- the selected production's actions run in order.  ``modify``
   is executed as *remove + make* with a fresh timetag, exactly as in
   OPS5, and each change takes effect immediately (later actions in the
   same RHS see it).

The engine exposes an :class:`EngineListener` hook so the trace module
can observe cycles and changes without the engine knowing about traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from .actions import Bind, Halt, Make, Modify, Remove, Write
from .conflict import Strategy, strategy_named
from .errors import ExecutionError, DuplicateProductionError, Ops5Error
from .matcher import Matcher
from .parser import Program, parse_program
from .production import Instantiation, Production
from .wme import Value, WME, WorkingMemory

#: The matcher backends :func:`matcher_named` knows how to build.
MATCHER_NAMES = (
    "naive",
    "treat",
    "rete",
    "rete-indexed",
    "oflazer",
    "compiled",
    "parallel",
)

#: One-line description per backend, for CLI listings (`repro matchers`).
MATCHER_DESCRIPTIONS = {
    "naive": "re-match every production from scratch each cycle (reference)",
    "treat": "TREAT: per-CE alpha memories, no beta state, per-cycle joins",
    "rete": "node-walking Rete with incremental beta memories",
    "rete-indexed": "Rete with hash-indexed join memories",
    "oflazer": "Oflazer-style combination matcher (counter-based join states)",
    "compiled": "per-ruleset generated kernel over columnar memories (src/repro/kernel)",
    "parallel": "multi-process partitioned Rete shards behind a flush barrier",
}


def matcher_named(name: str, **kwargs) -> Matcher:
    """Build a matcher backend by name (see :data:`MATCHER_NAMES`).

    Keyword arguments are forwarded to the backend's constructor --
    e.g. ``matcher_named("parallel", workers=4)`` or
    ``matcher_named("rete", listener=...)``.  Imports are deferred so the
    ``ops5`` package keeps no static dependency on any matcher package.
    """
    key = name.lower()
    if key == "naive":
        from ..naive import NaiveMatcher

        return NaiveMatcher(**kwargs)
    if key == "treat":
        from ..treat import TreatMatcher

        return TreatMatcher(**kwargs)
    if key == "rete":
        from ..rete.network import ReteNetwork

        return ReteNetwork(**kwargs)
    if key == "rete-indexed":
        from ..rete.network import ReteNetwork

        return ReteNetwork(indexed=True, **kwargs)
    if key == "oflazer":
        from ..oflazer import CombinationMatcher

        return CombinationMatcher(**kwargs)
    if key == "compiled":
        from ..kernel.matcher import CompiledMatcher

        return CompiledMatcher(**kwargs)
    if key == "parallel":
        from ..parallel.executor import ParallelMatcher

        return ParallelMatcher(**kwargs)
    raise Ops5Error(
        f"unknown matcher backend {name!r}; known: {', '.join(MATCHER_NAMES)}"
    )


class EngineListener:
    """Observer hooks for the recognize--act loop.

    Subclass and override what you need; all methods default to no-ops.
    The trace generator (:mod:`repro.trace.generate`) is the main client.
    """

    def on_cycle(self, cycle: int, fired: Instantiation) -> None:
        """Called after conflict resolution, before the RHS runs."""

    def on_change(self, cycle: int, kind: str, wme: WME) -> None:
        """Called for every working-memory change ('add' or 'remove')."""

    def on_halt(self, cycle: int, reason: str) -> None:
        """Called once when the run stops."""


@dataclass
class CycleRecord:
    """What happened on one recognize--act cycle."""

    cycle: int
    production: str
    timetags: tuple[int, ...]
    adds: int = 0
    removes: int = 0

    @property
    def changes(self) -> int:
        return self.adds + self.removes


#: One change in an :meth:`ProductionSystem.apply_changes` batch:
#: ``("assert", cls, attrs)``, ``("retract", timetag)``, or
#: ``("modify", timetag, updates)``.
ChangeSpec = tuple


@dataclass
class BatchResult:
    """Summary of one :meth:`ProductionSystem.apply_changes` batch."""

    #: WMEs inserted by this batch, in application order (``assert``
    #: contributes the new element, ``modify`` its replacement).
    added: list[WME] = field(default_factory=list)
    #: Timetags retracted by this batch (``retract`` + the removed half
    #: of every ``modify``).
    removed: list[int] = field(default_factory=list)

    @property
    def timetags(self) -> list[int]:
        """Timetags of the inserted elements, in application order."""
        return [wme.timetag for wme in self.added]

    @property
    def total_changes(self) -> int:
        """WME changes applied (each modify counts as remove + add)."""
        return len(self.added) + len(self.removed)


@dataclass
class RunResult:
    """Summary of a :meth:`ProductionSystem.run` call."""

    fired: int
    halted: bool
    halt_reason: str
    cycles: list[CycleRecord] = field(default_factory=list)
    output: list[str] = field(default_factory=list)

    @property
    def total_changes(self) -> int:
        return sum(c.changes for c in self.cycles)

    @property
    def mean_changes_per_firing(self) -> float:
        """Average WME changes per production firing (paper: ~2.5)."""
        if not self.cycles:
            return 0.0
        return self.total_changes / len(self.cycles)


class ProductionSystem:
    """An OPS5 interpreter over a pluggable matcher.

    Parameters
    ----------
    productions:
        A :class:`~repro.ops5.parser.Program`, OPS5 source text, or an
        iterable of :class:`Production` objects.
    matcher:
        A :class:`Matcher` instance, or a backend name from
        :data:`MATCHER_NAMES` ("rete", "treat", "parallel", ...).
        Defaults to a fresh Rete network (imported lazily to keep the
        package layering one-way).
    strategy:
        "lex" (default), "mea", or a :class:`Strategy` instance.
    listener:
        Optional :class:`EngineListener`.
    recorder:
        Optional :class:`~repro.obs.Recorder`.  When attached and
        enabled, the engine records a span per recognize--act phase
        (conflict resolution, RHS execution) and an instant event per
        working-memory change.  Defaults to the shared disabled
        recorder, whose cost is a single attribute check.
    """

    def __init__(
        self,
        productions: Program | str | Iterable[Production] = (),
        matcher: Matcher | str | None = None,
        strategy: Strategy | str = "lex",
        listener: EngineListener | None = None,
        recorder=None,
    ) -> None:
        if matcher is None:
            from ..rete.network import ReteNetwork  # layering: engine may use any matcher

            matcher = ReteNetwork()
        elif isinstance(matcher, str):
            matcher = matcher_named(matcher)
        self.matcher = matcher
        self.strategy = strategy_named(strategy) if isinstance(strategy, str) else strategy
        self.listener = listener or EngineListener()
        if recorder is None:
            from ..obs.recorder import NULL_RECORDER  # layering: obs depends on nothing here

            recorder = NULL_RECORDER
        self.recorder = recorder
        #: Lifetime working-memory changes routed through the matcher
        #: (adds + removes, never reset -- like timetags).  The matcher
        #: counts the same stream from the other end; the observability
        #: snapshot cross-checks the two (see repro.obs.metrics).
        self.total_wme_changes = 0
        #: Lifetime production firings (survives reset(), unlike `cycle`).
        self.total_firings = 0
        self.memory = WorkingMemory()
        self.output: list[str] = []
        self._fired_keys: set[tuple] = set()
        self._halted = False
        self.cycle = 0
        self.cycles: list[CycleRecord] = []

        #: ``literalize`` declarations from the loaded program; WMEs of a
        #: declared class are checked against them on insertion.
        self.literalizations: dict[str, tuple[str, ...]] = {}
        if isinstance(productions, str):
            productions = parse_program(productions)
        if isinstance(productions, Program):
            self.literalizations = dict(productions.literalizations)
            productions = productions.productions
        for production in productions:
            self.add_production(production)

    # -- program and memory management ------------------------------------

    def add_production(self, production: Production) -> None:
        """Add a rule; it is matched against current working memory."""
        if production.name in self.matcher.production_names():
            raise DuplicateProductionError(production.name)
        self.matcher.add_production(production)

    def remove_production(self, name: str) -> None:
        """Unregister the named rule and retract its instantiations."""
        self.matcher.remove_production(name)

    def add(self, cls: str, /, **attributes: Value) -> WME:
        """Create and insert a WME: ``ps.add("block", color="red")``."""
        return self.add_wme(WME(cls, attributes))

    def add_wme(self, wme: WME) -> WME:
        """Insert a prepared WME into working memory and the matcher.

        If the WME's class was ``literalize``d, its attributes must all
        be declared (the OPS5 interpreter's element check).
        """
        declared = self.literalizations.get(wme.cls)
        if declared is not None:
            unknown = set(wme.attributes) - set(declared)
            if unknown:
                raise ExecutionError(
                    f"WME of class {wme.cls!r} uses undeclared attribute(s) "
                    f"{sorted(unknown)}; literalized: {list(declared)}"
                )
        self.memory.add(wme)
        self.matcher.add_wme(wme)
        self.total_wme_changes += 1
        if self.recorder.enabled:
            self.recorder.instant("wm:add", "wm", wme_class=wme.cls, timetag=wme.timetag)
        self.listener.on_change(self.cycle, "add", wme)
        return wme

    def remove_wme(self, wme: WME) -> None:
        """Delete a WME from working memory and the matcher."""
        self.memory.remove(wme)
        self.matcher.remove_wme(wme)
        self.total_wme_changes += 1
        if self.recorder.enabled:
            self.recorder.instant("wm:remove", "wm", wme_class=wme.cls, timetag=wme.timetag)
        self.listener.on_change(self.cycle, "remove", wme)

    def load_memory(self, specs: Sequence[tuple[str, dict[str, Value]]]) -> list[WME]:
        """Bulk-insert (class, attributes) pairs (see ``parse_wme_specs``)."""
        return [self.add_wme(WME(cls, attrs)) for cls, attrs in specs]

    def apply_changes(self, changes: Sequence[ChangeSpec]) -> BatchResult:
        """Apply a batch of working-memory changes without firing rules.

        This is the serving layer's ingestion entry point
        (:mod:`repro.serve`): a batch is a sequence of change specs --

        * ``("assert", cls, attributes)`` -- insert a new element;
        * ``("retract", timetag)`` -- remove the element with *timetag*;
        * ``("modify", timetag, updates)`` -- OPS5 remove + make with a
          fresh timetag, exactly like a RHS ``modify``.

        Changes are applied strictly in sequence, so splitting one
        logical stream of changes into batches of any size -- or sending
        it through a server session in several requests -- yields
        bit-identical working memory and (after a subsequent
        :meth:`run`) a bit-identical firing sequence.  Nothing fires
        here: conflict resolution happens only in :meth:`step`/:meth:`run`,
        which is what keeps results independent of batch boundaries.

        An engine that ran out of satisfied productions is *resumed* by
        a new batch (see :meth:`resume`): quiescence is a statement
        about the old working memory, not about the new one.  A ``halt``
        action's stop stays sticky -- the program asked to stop.
        """
        if self._halted and self._halt_reason == "no satisfied production":
            self.resume()
        result = BatchResult()
        for change in changes:
            kind = change[0]
            if kind == "assert":
                _, cls, attrs = change
                result.added.append(self.add_wme(WME(cls, dict(attrs or {}))))
            elif kind == "retract":
                wme = self.memory.by_timetag(change[1])
                self.remove_wme(wme)
                result.removed.append(wme.timetag)
            elif kind == "modify":
                _, timetag, updates = change
                wme = self.memory.by_timetag(timetag)
                replacement = wme.with_updates(dict(updates or {}))
                self.remove_wme(wme)
                result.removed.append(timetag)
                result.added.append(self.add_wme(replacement))
            else:
                raise ExecutionError(
                    f"unknown change kind {kind!r}; "
                    "expected 'assert', 'retract', or 'modify'"
                )
        return result

    def reset(self) -> None:
        """Clear working memory, refraction memory, and run state.

        The compiled match network (the expensive part) is kept, so one
        engine can run many scenarios: ``reset()``, load new memory,
        ``run()`` again.  Timetags keep increasing across resets -- they
        are never reused.
        """
        for wme in self.memory.snapshot():
            self.remove_wme(wme)
        self._fired_keys.clear()
        self._halted = False
        self._halt_reason = "running"
        self.cycle = 0
        self.cycles = []
        self.output = []

    # -- state checkpoint / restore (session migration) --------------------

    #: Version tag carried by every exported state blob.
    STATE_SCHEMA = "repro.engine-state/1"

    def export_state(self) -> dict:
        """Snapshot everything a fresh engine needs to continue this run.

        The blob is JSON-serialisable and matcher-independent: working
        memory with *original* timetags, the refraction memory (fired
        instantiation keys), the recognize--act counters, halt state,
        and accumulated ``write`` output.  Match state (alpha rows, join
        indexes, conflict set) is deliberately excluded -- it is a pure
        function of (ruleset, working memory) and re-derives on restore,
        which is what keeps the blob O(working memory) and lets the
        restoring host pick any matcher backend.

        This is the serve layer's session-migration payload; the
        parallel supervisor's checkpoint+journal restore proved the
        replay-re-derivation approach bit-identical first.
        """
        return {
            "schema": self.STATE_SCHEMA,
            "wmes": [
                [wme.timetag, wme.cls, dict(wme.attributes)]
                for wme in self.memory.snapshot()
            ],
            "next_timetag": self.memory.next_timetag,
            "fired": sorted(
                [name, list(timetags)] for name, timetags in self._fired_keys
            ),
            "cycle": self.cycle,
            "total_firings": self.total_firings,
            "total_wme_changes": self.total_wme_changes,
            "halted": self._halted,
            "halt_reason": self._halt_reason,
            "output": list(self.output),
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild a run from :meth:`export_state` on this (fresh) engine.

        The engine must hold the same program and an empty working
        memory.  WMEs are re-inserted with their original timetags (see
        :meth:`WorkingMemory.adopt`) through the matcher, so the
        conflict set re-derives; together with the restored refraction
        keys, the next :meth:`run` continues the firing sequence
        bit-identically.

        Change counters restart at the replayed-WME count rather than
        the exported lifetime value: the engine and the matcher count
        the same change stream from opposite ends (the invariant
        ``repro.obs.metrics.consistency_problems`` checks), and the new
        matcher has only seen the replay.  The exported lifetime totals
        stay available to callers from the blob itself.
        """
        if state.get("schema") != self.STATE_SCHEMA:
            raise ExecutionError(
                f"cannot restore state schema {state.get('schema')!r}; "
                f"expected {self.STATE_SCHEMA!r}"
            )
        if len(self.memory):
            raise ExecutionError(
                "restore_state requires an empty working memory; "
                "use a fresh engine (or reset() first)"
            )
        for timetag, cls, attrs in state["wmes"]:
            wme = WME(cls, attrs)
            wme.timetag = int(timetag)
            self.memory.adopt(wme)
            self.matcher.add_wme(wme)
        self.memory.reserve_timetags(int(state["next_timetag"]))
        self._fired_keys = {
            (name, tuple(timetags)) for name, timetags in state["fired"]
        }
        self.cycle = int(state["cycle"])
        self.total_firings = int(state["total_firings"])
        self.total_wme_changes = len(state["wmes"])
        self._halted = bool(state["halted"])
        self._halt_reason = state["halt_reason"]
        self.output = list(state["output"])

    def resume(self) -> None:
        """Clear the halted flag so further changes can drive new cycles.

        Long-running services alternate ingestion and run-to-quiescence
        on one engine; a quiescence halt only describes the working
        memory that produced it.  Refraction memory is kept: resuming
        never re-fires an instantiation that already fired.
        """
        self._halted = False
        self._halt_reason = "running"

    # -- the recognize--act loop -------------------------------------------

    @property
    def conflict_set(self):
        """The matcher's live conflict set (satisfied instantiations)."""
        return self.matcher.conflict_set

    @property
    def halted(self) -> bool:
        """True once a halt action ran or no production was satisfied."""
        return self._halted

    def step(self) -> Optional[Instantiation]:
        """Run one recognize--act cycle; return the fired instantiation.

        Returns None (and marks the engine halted) when the conflict set
        holds no un-fired instantiation, or after a ``halt`` action.
        """
        if self._halted:
            return None
        # Branch (rather than rely on the null span) because step() is
        # the engine's innermost loop: disabled observability must not
        # even build the span's kwargs.
        if self.recorder.enabled:
            # Reading `conflict_set` is the parallel executor's flush
            # barrier, so the select span brackets match-merge +
            # resolution.
            with self.recorder.span("select", "engine", cycle=self.cycle + 1):
                selected = self.strategy.select(
                    self.conflict_set, self._fired_keys.__contains__
                )
        else:
            selected = self.strategy.select(
                self.conflict_set, self._fired_keys.__contains__
            )
        if selected is None:
            self._halted = True
            self._halt_reason = "no satisfied production"
            self.listener.on_halt(self.cycle, "no satisfied production")
            return None
        self.cycle += 1
        self.total_firings += 1
        self._fired_keys.add(selected.key)
        if len(self._fired_keys) >= self._refraction_gc_threshold:
            self._prune_refraction_memory()
        record = CycleRecord(self.cycle, selected.production.name, selected.timetags)
        self.cycles.append(record)
        self.listener.on_cycle(self.cycle, selected)
        if self.recorder.enabled:
            with self.recorder.span(
                "fire", "engine", cycle=self.cycle, production=selected.production.name
            ):
                self._execute(selected, record)
        else:
            self._execute(selected, record)
        if self._halted:
            self.listener.on_halt(self.cycle, "halt action")
        return selected

    def run(self, max_cycles: Optional[int] = None) -> RunResult:
        """Run until halt (or *max_cycles* firings); return a summary."""
        start = len(self.cycles)
        fired = 0
        while not self._halted and (max_cycles is None or fired < max_cycles):
            if self.step() is None:
                break
            fired += 1
        reason = self._halt_reason if self._halted else "cycle limit"
        return RunResult(
            fired=fired,
            halted=self._halted,
            halt_reason=reason,
            cycles=self.cycles[start:],
            output=list(self.output),
        )

    # -- refraction memory ---------------------------------------------------

    #: Prune the fired-instantiation set once it reaches this size.
    _refraction_gc_threshold = 512

    def _prune_refraction_memory(self) -> None:
        """Drop fired keys that can never match again.

        Refraction must remember every fired instantiation -- but an
        instantiation whose WMEs include a timetag no longer in working
        memory can never re-enter the conflict set (timetags are never
        reused), so its key is dead weight.  Long-running systems would
        otherwise leak memory proportional to total firings.
        """
        live = {wme.timetag for wme in self.memory}
        self._fired_keys = {
            key
            for key in self._fired_keys
            if all(tag in live for tag in key[1])
        }
        # Avoid thrashing when most keys are still live: next GC only
        # after the set grows substantially again.
        self._refraction_gc_threshold = max(512, 2 * len(self._fired_keys))

    # -- RHS execution -------------------------------------------------------

    _halt_reason = "running"

    def _execute(self, instantiation: Instantiation, record: CycleRecord) -> None:
        production = instantiation.production
        bindings = dict(instantiation.bindings)
        # Current WME per positive-CE position; `modify` rebinds, `remove`
        # clears, so later actions on the same CE see the newest element.
        current: list[Optional[WME]] = list(instantiation.wmes)

        for action in production.actions:
            if isinstance(action, Make):
                self.add_wme(action.build(bindings))
                record.adds += 1
            elif isinstance(action, Remove):
                position = production.ce_position_of(action.ce_index)
                wme = current[position]
                if wme is None:
                    raise ExecutionError(
                        f"{production.name}: condition element {action.ce_index} "
                        "was already removed in this firing"
                    )
                self.remove_wme(wme)
                current[position] = None
                record.removes += 1
            elif isinstance(action, Modify):
                position = production.ce_position_of(action.ce_index)
                wme = current[position]
                if wme is None:
                    raise ExecutionError(
                        f"{production.name}: modify of condition element "
                        f"{action.ce_index} after its removal"
                    )
                replacement = wme.with_updates(action.updates(bindings))
                self.remove_wme(wme)
                record.removes += 1
                self.add_wme(replacement)
                record.adds += 1
                current[position] = replacement
            elif isinstance(action, Write):
                self.output.append(action.render(bindings))
            elif isinstance(action, Bind):
                bindings[action.name] = action.expression.evaluate(bindings)
            elif isinstance(action, Halt):
                self._halted = True
                self._halt_reason = "halt action"
            else:  # pragma: no cover - exhaustive over Action subclasses
                raise ExecutionError(f"unknown action {action!r}")
