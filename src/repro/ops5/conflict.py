"""The conflict set and conflict-resolution strategies (LEX and MEA).

After each match phase the *conflict set* holds every instantiation of
every satisfied production.  Conflict resolution picks at most one of
them to fire:

* **Refraction** (both strategies): an instantiation that has already
  fired is never selected again.
* **LEX**: order instantiations by *recency* -- compare the matched
  timetags sorted in descending order, lexicographically; a strictly
  greater sequence wins, and when one sequence is a prefix of the other
  the longer one wins.  Ties fall back to production *specificity* (the
  number of elementary tests in the LHS) and finally to a deterministic
  arbitrary order.
* **MEA**: first compare the timetag of the WME matching the *first*
  condition element (the "means-ends-analysis" element -- usually the
  goal); ties are resolved exactly as in LEX.

The conflict set is maintained *incrementally* by matchers: matchers call
:meth:`ConflictSet.insert` / :meth:`ConflictSet.delete` as tokens reach
or leave their terminal nodes (Rete), or after per-cycle recomputation
(TREAT, naive).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from .errors import Ops5Error
from .production import Instantiation


class ConflictSet:
    """The set of instantiations of currently satisfied productions.

    Insertion and deletion are keyed by :attr:`Instantiation.key`
    (production name + matched timetags), matching OPS5 identity.
    Counters record total insert/delete traffic for the measurement
    modules.
    """

    def __init__(self) -> None:
        self._members: dict[tuple, Instantiation] = {}
        self.total_inserts = 0
        self.total_deletes = 0

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[Instantiation]:
        return iter(self._members.values())

    def __contains__(self, instantiation: Instantiation) -> bool:
        return instantiation.key in self._members

    def insert(self, instantiation: Instantiation) -> None:
        """Add an instantiation; re-inserting the same key is an error.

        Matchers must produce each instantiation exactly once; a double
        insert means the matcher's internal state is corrupt, and we fail
        loudly rather than mask it.
        """
        if instantiation.key in self._members:
            raise Ops5Error(f"duplicate conflict-set insert of {instantiation!r}")
        self._members[instantiation.key] = instantiation
        self.total_inserts += 1

    def delete(self, instantiation: Instantiation) -> None:
        """Remove an instantiation; deleting an absent key is an error."""
        self.delete_key(instantiation.key)

    def delete_key(self, key: tuple) -> None:
        """Remove the instantiation with identity *key*.

        Lets a holder of ``(production name, timetags)`` retract without
        materialising an :class:`Instantiation` -- the parallel executor
        merges shard edit streams this way.
        """
        if key not in self._members:
            raise Ops5Error(f"conflict-set delete of absent key {key!r}")
        del self._members[key]
        self.total_deletes += 1

    def get(self, key: tuple) -> Optional[Instantiation]:
        """The instantiation with identity *key*, or None."""
        return self._members.get(key)

    def clear(self) -> None:
        self._members.clear()

    def snapshot(self) -> frozenset[tuple]:
        """The current membership as a frozen set of instantiation keys."""
        return frozenset(self._members)

    def members(self) -> list[Instantiation]:
        return list(self._members.values())


def _lex_order_key(instantiation: Instantiation) -> tuple:
    """Sort key implementing the LEX ordering (larger sorts last).

    Recency sequences are compared lexicographically with the rule that a
    longer sequence beats its own prefix; appending ``-1`` sentinels would
    invert that, so we compare (recency tuple, length) -- tuple comparison
    in Python is already lexicographic-with-shorter-first-on-prefix, which
    is exactly the OPS5 rule, so the bare tuple works: ``(5, 3) < (5, 3, 1)``.
    """
    return (
        instantiation.recency_key,
        instantiation.production.specificity,
        # Deterministic arbitrary tie-break so runs are reproducible.
        instantiation.production.name,
        instantiation.timetags,
    )


def _mea_order_key(instantiation: Instantiation) -> tuple:
    """Sort key for MEA: first-CE recency, then the LEX key.

    ``timetags`` holds only the WMEs bound by *positive* condition
    elements, so ``timetags[0]`` is the first CE's recency **only if the
    first CE is positive**.  That is an invariant, not an assumption:
    :func:`~repro.ops5.condition.analyze_lhs` rejects productions whose
    leading CE is negated at parse time (for every strategy -- OPS5
    itself makes the same restriction, precisely so MEA's "means-ends"
    focus element is always a real WME).  A negated CE elsewhere in the
    LHS shifts nothing: positions in ``timetags`` follow positive-CE
    order, and position 0 is the first CE.  The empty-tuple fallback is
    unreachable through the parser (an LHS must have at least one CE)
    and exists only for hand-built instantiations.
    """
    first = instantiation.timetags[0] if instantiation.timetags else 0
    return (first,) + _lex_order_key(instantiation)


class Strategy:
    """A conflict-resolution strategy: picks the instantiation to fire."""

    name: str = "abstract"

    def _order_key(self, instantiation: Instantiation) -> tuple:
        raise NotImplementedError

    def select(
        self,
        conflict_set: Iterable[Instantiation],
        already_fired: Callable[[tuple], bool],
    ) -> Optional[Instantiation]:
        """Return the dominant un-fired instantiation, or None to halt.

        ``already_fired`` implements refraction: it reports whether an
        instantiation key has fired before.
        """
        best: Optional[Instantiation] = None
        best_key: Optional[tuple] = None
        for instantiation in conflict_set:
            if already_fired(instantiation.key):
                continue
            key = self._order_key(instantiation)
            if best_key is None or key > best_key:
                best, best_key = instantiation, key
        return best

    def order(self, conflict_set: Iterable[Instantiation]) -> list[Instantiation]:
        """The full dominance order, best first (for inspection/tests)."""
        return sorted(conflict_set, key=self._order_key, reverse=True)


class LexStrategy(Strategy):
    """The OPS5 LEX strategy: recency, then specificity."""

    name = "lex"

    def _order_key(self, instantiation: Instantiation) -> tuple:
        return _lex_order_key(instantiation)


class MeaStrategy(Strategy):
    """The OPS5 MEA strategy: first-CE recency first, then LEX."""

    name = "mea"

    def _order_key(self, instantiation: Instantiation) -> tuple:
        return _mea_order_key(instantiation)


def strategy_named(name: str) -> Strategy:
    """Look up a strategy by name ("lex" or "mea")."""
    table = {"lex": LexStrategy, "mea": MeaStrategy}
    try:
        return table[name.lower()]()
    except KeyError:
        raise Ops5Error(f"unknown conflict-resolution strategy {name!r}") from None
