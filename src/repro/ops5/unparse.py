"""Rendering parsed structures back to OPS5 source.

The inverse of :mod:`repro.ops5.parser`: productions, condition
elements, tests, and actions render to source text that parses back to
structurally equal objects (property-tested).  Useful for program
transformation tools, debugging dumps, and persisting generated rules.

Symbols are emitted verbatim, so they must be lexable (no whitespace or
parentheses inside a symbol) -- which holds for anything the parser
produced in the first place.
"""

from __future__ import annotations

import re
from decimal import Decimal

from .actions import (
    Action,
    Bind,
    Compute,
    Constant,
    Expression,
    Halt,
    Make,
    Modify,
    Remove,
    VariableRef,
    Write,
)
from .condition import (
    ConditionElement,
    ConjunctiveTest,
    ConstantTest,
    DisjunctiveTest,
    PredicateTest,
    Test,
    VariableTest,
)
from .parser import Program
from .production import Production
from .wme import Value


# What the lexer will read back as a single symbol token.
_SYMBOL_RE = re.compile(r"[A-Za-z0-9_*+/!?.$%&\\-]+\Z")
# What the lexer will read back as a number token (so a *symbol* with
# this shape would silently change type on re-parse).
_NUMBER_RE = re.compile(r"-?\d+(?:\.\d+)?\Z")


def unparse_value(value: Value) -> str:
    """A constant as source text (symbols verbatim, numbers as written).

    Raises :class:`ValueError` for values the lexer cannot read back as
    the same constant: non-finite floats, floats whose shortest repr
    needs an exponent (rendered fixed-point instead when possible), and
    symbols that are unlexable or number-shaped.
    """
    if isinstance(value, bool):
        raise ValueError(f"cannot unparse boolean constant {value!r}")
    if isinstance(value, float):
        text = repr(value)
        if _NUMBER_RE.match(text):
            return text
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"cannot unparse non-finite number {value!r}")
        # Exponent reprs ("1e-05") lex as symbols; expand to fixed-point.
        text = format(Decimal(repr(value)), "f")
        if "." not in text:
            text += ".0"
        return text
    if isinstance(value, int):
        return str(value)
    if not _SYMBOL_RE.match(value):
        raise ValueError(f"symbol {value!r} is not lexable")
    if _NUMBER_RE.match(value):
        raise ValueError(f"symbol {value!r} would re-parse as a number")
    return value


def unparse_test(test: Test) -> str:
    """One attribute test as source text."""
    if isinstance(test, ConstantTest):
        return unparse_value(test.value)
    if isinstance(test, VariableTest):
        return f"<{test.name}>"
    if isinstance(test, PredicateTest):
        return f"{test.predicate.value} {unparse_test(test.operand)}"
    if isinstance(test, ConjunctiveTest):
        inner = " ".join(unparse_test(t) for t in test.tests)
        return f"{{ {inner} }}"
    if isinstance(test, DisjunctiveTest):
        inner = " ".join(unparse_value(v) for v in test.values)
        return f"<< {inner} >>"
    raise TypeError(f"cannot unparse test {test!r}")


def unparse_condition(ce: ConditionElement) -> str:
    """A condition element, attributes in sorted (canonical) order."""
    parts = [ce.cls]
    for attribute in sorted(ce.tests):
        parts.append(f"^{attribute} {unparse_test(ce.tests[attribute])}")
    body = f"({' '.join(parts)})"
    return f"- {body}" if ce.negated else body


def unparse_expression(expression: Expression) -> str:
    """An RHS value expression."""
    if isinstance(expression, Constant):
        return unparse_value(expression.value)
    if isinstance(expression, VariableRef):
        return f"<{expression.name}>"
    if isinstance(expression, Compute):
        parts = [unparse_expression(expression.operands[0])]
        for op, operand in zip(expression.operators, expression.operands[1:]):
            parts.append(op)
            parts.append(unparse_expression(operand))
        return f"(compute {' '.join(parts)})"
    raise TypeError(f"cannot unparse expression {expression!r}")


def unparse_action(action: Action) -> str:
    """One RHS action."""
    if isinstance(action, Make):
        parts = [action.cls] + [
            f"^{attr} {unparse_expression(expr)}" for attr, expr in action.attributes
        ]
        return f"(make {' '.join(parts)})"
    if isinstance(action, Remove):
        return f"(remove {action.ce_index})"
    if isinstance(action, Modify):
        parts = [str(action.ce_index)] + [
            f"^{attr} {unparse_expression(expr)}" for attr, expr in action.attributes
        ]
        return f"(modify {' '.join(parts)})"
    if isinstance(action, Write):
        values = " ".join(unparse_expression(v) for v in action.values)
        return f"(write {values})"
    if isinstance(action, Bind):
        return f"(bind <{action.name}> {unparse_expression(action.expression)})"
    if isinstance(action, Halt):
        return "(halt)"
    raise TypeError(f"cannot unparse action {action!r}")


def unparse_production(production: Production) -> str:
    """A whole production, one CE/action per line."""
    lines = [f"(p {production.name}"]
    for ce in production.conditions:
        lines.append(f"  {unparse_condition(ce)}")
    lines.append("  -->")
    for action in production.actions:
        lines.append(f"  {unparse_action(action)}")
    return "\n".join(lines) + ")"


def unparse_program(program: Program) -> str:
    """A whole program: literalize declarations, then productions."""
    chunks = [
        f"(literalize {cls} {' '.join(attributes)})"
        for cls, attributes in program.literalizations.items()
    ]
    chunks.extend(unparse_production(p) for p in program.productions)
    return "\n\n".join(chunks)
