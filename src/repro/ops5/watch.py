"""The OPS5 ``watch`` facility: run tracing at selectable detail.

Classic OPS5 interpreters let users set a watch level:

* level 0 -- silent;
* level 1 -- print each production firing with its matched timetags;
* level 2 -- additionally print every working-memory change.

:class:`WatchListener` implements those levels as an
:class:`~repro.ops5.engine.EngineListener`; :class:`CompositeListener`
fans engine events out to several listeners (e.g. a watch and a trace
capture at once).
"""

from __future__ import annotations

import sys
from typing import IO, Sequence

from .engine import EngineListener
from .production import Instantiation
from .wme import WME

SILENT = 0
FIRINGS = 1
CHANGES = 2


class WatchListener(EngineListener):
    """Prints recognize--act activity at the given watch level."""

    def __init__(self, level: int = FIRINGS, stream: IO[str] | None = None) -> None:
        if level not in (SILENT, FIRINGS, CHANGES):
            raise ValueError(f"watch level must be 0, 1, or 2, got {level}")
        self.level = level
        self.stream = stream if stream is not None else sys.stdout

    def on_cycle(self, cycle: int, fired: Instantiation) -> None:
        if self.level >= FIRINGS:
            tags = " ".join(str(t) for t in fired.timetags)
            print(f"{cycle}. {fired.production.name} [{tags}]", file=self.stream)

    def on_change(self, cycle: int, kind: str, wme: WME) -> None:
        if self.level >= CHANGES:
            sign = "=>" if kind == "add" else "<="
            print(f"    {sign} {wme!r}", file=self.stream)

    def on_halt(self, cycle: int, reason: str) -> None:
        if self.level >= FIRINGS:
            print(f"-- halted after {cycle} cycles: {reason}", file=self.stream)


class CompositeListener(EngineListener):
    """Fans every engine event out to several listeners, in order."""

    def __init__(self, listeners: Sequence[EngineListener]) -> None:
        self.listeners = list(listeners)

    def on_cycle(self, cycle: int, fired: Instantiation) -> None:
        for listener in self.listeners:
            listener.on_cycle(cycle, fired)

    def on_change(self, cycle: int, kind: str, wme: WME) -> None:
        for listener in self.listeners:
            listener.on_change(cycle, kind, wme)

    def on_halt(self, cycle: int, reason: str) -> None:
        for listener in self.listeners:
            listener.on_halt(cycle, reason)
