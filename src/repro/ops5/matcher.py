"""The matcher interface shared by Rete, TREAT, and the naive matcher.

A matcher owns the match state for a fixed (but extensible) set of
productions and keeps a :class:`~repro.ops5.conflict.ConflictSet` up to
date as WMEs are added and removed.  The engine drives matchers through
this interface only, so strategies and matchers compose freely and the
test suite can run the same program through every matcher and compare
conflict sets cycle by cycle.

Matchers also collect :class:`MatchStats` -- the measurements the paper
builds its argument on (Sections 3, 4, 8): working-memory changes per
cycle, *affected productions* per change, and match effort counters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable

from .conflict import ConflictSet
from .production import Production
from .wme import WME


@dataclass
class ChangeRecord:
    """Per-WME-change measurements (one row per add/remove)."""

    kind: str  # "add" or "remove"
    wme_class: str
    affected_productions: int = 0
    node_activations: int = 0
    comparisons: int = 0
    tokens_built: int = 0


@dataclass
class MatchStats:
    """Aggregate measurements over a matcher's lifetime.

    ``affected productions`` follows the paper's definition: a production
    is affected by a change when the changed WME matches at least one of
    its condition elements (i.e. passes that CE's alpha tests).
    """

    changes: list[ChangeRecord] = field(default_factory=list)
    total_comparisons: int = 0
    total_tokens_built: int = 0

    def record(self, record: ChangeRecord) -> None:
        self.changes.append(record)
        self.total_comparisons += record.comparisons
        self.total_tokens_built += record.tokens_built

    @property
    def total_changes(self) -> int:
        return len(self.changes)

    @property
    def mean_affected_productions(self) -> float:
        """Average affected productions per change (paper: ~30)."""
        if not self.changes:
            return 0.0
        return sum(c.affected_productions for c in self.changes) / len(self.changes)

    @property
    def mean_node_activations(self) -> float:
        if not self.changes:
            return 0.0
        return sum(c.node_activations for c in self.changes) / len(self.changes)


class Matcher(ABC):
    """Abstract base for match algorithms.

    Contract
    --------
    * ``add_wme`` / ``remove_wme`` must leave :attr:`conflict_set`
      containing exactly the instantiations of all satisfied productions,
      under OPS5 semantics (including negated condition elements).
    * WMEs must already carry their timetag when passed in (the engine
      routes every element through
      :class:`~repro.ops5.wme.WorkingMemory` first).
    * Productions may be added at any time; the matcher must fold the
      current working memory into the new production's state.
    """

    def __init__(self) -> None:
        self.conflict_set = ConflictSet()
        self.stats = MatchStats()

    def peek_stats(self) -> MatchStats:
        """Match statistics *without* side effects.

        For most matchers this is :attr:`stats`; backends where reading
        ``stats`` is a synchronisation barrier (the parallel executor's
        flush-on-read) override it to return the last merged view, so
        observability snapshots can be taken from another thread while
        a batch is in flight.
        """
        return self.stats

    @abstractmethod
    def add_production(self, production: Production) -> None:
        """Register *production* and match it against current memory."""

    @abstractmethod
    def remove_production(self, name: str) -> None:
        """Unregister the named production and retract its instantiations."""

    @abstractmethod
    def add_wme(self, wme: WME) -> None:
        """Process the insertion of *wme* (already timetagged)."""

    @abstractmethod
    def remove_wme(self, wme: WME) -> None:
        """Process the deletion of *wme*."""

    @property
    @abstractmethod
    def productions(self) -> Iterable[Production]:
        """The productions currently registered."""

    def production_names(self) -> set[str]:
        return {p.name for p in self.productions}
