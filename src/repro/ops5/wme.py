"""Working memory elements and the working memory itself.

OPS5 working memory is a set of *working memory elements* (WMEs).  A WME is
a class name plus attribute--value pairs, e.g.::

    (block ^id b1 ^color red ^selected no)

Attributes that are never assigned hold the distinguished value ``nil``
(:data:`NIL`), matching OPS5 semantics where every field of the underlying
element vector defaults to ``nil``.

Each WME receives a unique, monotonically increasing integer *timetag* when
it enters working memory.  Timetags drive the recency comparisons of the
LEX and MEA conflict-resolution strategies.  OPS5's ``modify`` is a
*remove + make* pair, so a modified element always gets a fresh timetag;
this module follows that rule exactly (see
:meth:`WorkingMemory.modify`).
"""

from __future__ import annotations

from typing import Iterator, Mapping, Union

from .errors import WorkingMemoryError

#: The type of attribute values: symbols are plain strings, numbers are
#: ``int`` or ``float``.
Value = Union[str, int, float]

#: The OPS5 ``nil`` symbol: the value of any attribute never assigned.
NIL: str = "nil"


def is_number(value: Value) -> bool:
    """Return True when *value* is numeric (``int`` or ``float``).

    Booleans are rejected explicitly: ``True``/``False`` are not OPS5
    values and accepting them would make ``1`` and ``True`` collide.
    """
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def same_type(a: Value, b: Value) -> bool:
    """OPS5 ``<=>`` predicate: both numeric, or both symbolic."""
    return is_number(a) == is_number(b)


def values_equal(a: Value, b: Value) -> bool:
    """OPS5 equality: numbers compare numerically, symbols literally.

    ``1`` and ``1.0`` are equal; ``1`` and ``"1"`` are not.
    """
    if is_number(a) and is_number(b):
        return a == b
    if is_number(a) or is_number(b):
        return False
    return a == b


class WME:
    """A working memory element: a class name plus attribute--value pairs.

    WMEs are identity objects: two WMEs with equal content are still
    distinct elements with distinct timetags, exactly as in OPS5 where
    ``(make goal)`` twice yields two elements.  Equality and hashing are
    therefore identity-based.

    The attribute mapping is copied on construction and must not be
    mutated afterwards; ``modify`` semantics are remove-and-make.

    Parameters
    ----------
    cls:
        The element class symbol, e.g. ``"goal"``.
    attributes:
        Mapping of attribute name to value.  Attributes with value ``nil``
        are normalised away (absent and ``nil`` are indistinguishable).
    """

    __slots__ = ("cls", "_attributes", "timetag")

    def __init__(self, cls: str, attributes: Mapping[str, Value] | None = None) -> None:
        if not isinstance(cls, str) or not cls:
            raise WorkingMemoryError(f"WME class must be a non-empty symbol, got {cls!r}")
        self.cls = cls
        attrs = dict(attributes or {})
        # Absent attributes read as nil, so storing explicit nils is redundant.
        self._attributes = {a: v for a, v in attrs.items() if v != NIL}
        #: Timetag assigned by :class:`WorkingMemory`; 0 means "not in WM".
        self.timetag: int = 0

    def get(self, attribute: str) -> Value:
        """Return the value of *attribute*, or ``nil`` when unassigned."""
        return self._attributes.get(attribute, NIL)

    @property
    def attributes(self) -> Mapping[str, Value]:
        """Read-only view of the explicitly assigned attributes."""
        return dict(self._attributes)

    def with_updates(self, updates: Mapping[str, Value]) -> "WME":
        """Return a new, un-timetagged WME with *updates* applied.

        This implements the value side of ``modify``: unmentioned
        attributes carry over, mentioned ones are replaced (and a ``nil``
        update clears the attribute).
        """
        merged = dict(self._attributes)
        for attr, value in updates.items():
            if value == NIL:
                merged.pop(attr, None)
            else:
                merged[attr] = value
        return WME(self.cls, merged)

    def content_key(self) -> tuple:
        """A hashable key describing this WME's content (class + attrs).

        Used by tests and by the naive matcher to compare matcher outputs;
        *not* used for WME identity.
        """
        return (self.cls, tuple(sorted(self._attributes.items())))

    def __repr__(self) -> str:
        parts = [self.cls]
        for attr in sorted(self._attributes):
            parts.append(f"^{attr} {self._attributes[attr]}")
        tag = f" @{self.timetag}" if self.timetag else ""
        return f"({' '.join(str(p) for p in parts)}){tag}"


class WorkingMemory:
    """The OPS5 working memory: a timetagged collection of WMEs.

    The working memory is deliberately *passive*: it stores elements and
    assigns timetags but does not notify matchers.  The
    :class:`~repro.ops5.engine.ProductionSystem` routes every change to
    both the working memory and the active matcher so the two can never
    disagree.
    """

    def __init__(self) -> None:
        self._elements: dict[int, WME] = {}
        self._next_timetag = 1

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[WME]:
        return iter(self._elements.values())

    def __contains__(self, wme: WME) -> bool:
        return wme.timetag in self._elements and self._elements[wme.timetag] is wme

    def add(self, wme: WME) -> WME:
        """Insert *wme*, assigning the next timetag. Returns the WME."""
        if wme.timetag:
            raise WorkingMemoryError(
                f"WME {wme!r} already carries timetag {wme.timetag}; "
                "WMEs cannot be inserted twice"
            )
        wme.timetag = self._next_timetag
        self._next_timetag += 1
        self._elements[wme.timetag] = wme
        return wme

    def adopt(self, wme: WME) -> WME:
        """Insert a WME that already carries a timetag (state restore).

        The normal insertion path (:meth:`add`) refuses timetagged WMEs
        -- an element cannot enter working memory twice.  Restoring a
        checkpoint or migrating a session is the one legitimate
        exception: the element's *original* timetag must survive, or
        recency-based conflict resolution (LEX/MEA) would order the
        restored memory differently and the continuation would diverge.
        The timetag counter advances past every adopted tag so future
        inserts never collide.
        """
        if not wme.timetag:
            raise WorkingMemoryError(
                f"WME {wme!r} carries no timetag; use add() for new elements"
            )
        if wme.timetag in self._elements:
            raise WorkingMemoryError(
                f"timetag {wme.timetag} is already present; cannot adopt {wme!r}"
            )
        self._elements[wme.timetag] = wme
        if wme.timetag >= self._next_timetag:
            self._next_timetag = wme.timetag + 1
        return wme

    def reserve_timetags(self, next_timetag: int) -> None:
        """Advance the counter to at least *next_timetag* (state restore).

        Elements removed before a checkpoint still consumed their tags;
        without this the restored engine could re-issue them.
        """
        if next_timetag > self._next_timetag:
            self._next_timetag = next_timetag

    def remove(self, wme: WME) -> None:
        """Remove *wme*.  Raises if it is not the element stored here."""
        stored = self._elements.get(wme.timetag)
        if stored is not wme:
            raise WorkingMemoryError(f"WME {wme!r} is not in working memory")
        del self._elements[wme.timetag]

    def by_timetag(self, timetag: int) -> WME:
        """Return the element with *timetag*, raising if absent."""
        try:
            return self._elements[timetag]
        except KeyError:
            raise WorkingMemoryError(f"no WME with timetag {timetag}") from None

    def of_class(self, cls: str) -> list[WME]:
        """All current elements whose class is *cls* (timetag order)."""
        return [w for w in self._elements.values() if w.cls == cls]

    def snapshot(self) -> list[WME]:
        """All current elements in timetag order."""
        return [self._elements[t] for t in sorted(self._elements)]

    @property
    def next_timetag(self) -> int:
        """The timetag the next inserted element will receive."""
        return self._next_timetag


def make_wme(cls: str, /, **attributes: Value) -> WME:
    """Convenience constructor: ``make_wme("block", id="b1", color="red")``.

    Attribute names that clash with Python keywords can be passed via the
    :class:`WME` constructor directly.
    """
    return WME(cls, attributes)
