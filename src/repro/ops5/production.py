"""Productions and production instantiations.

A :class:`Production` is an *if--then* rule: an ordered list of condition
elements (the LHS) plus an ordered list of actions (the RHS).  An
:class:`Instantiation` is one concrete way the LHS is satisfied: the tuple
of WMEs matching the positive condition elements, together with the
variable bindings they induce.  The conflict set is a set of
instantiations.
"""

from __future__ import annotations

from typing import Sequence

from .actions import Action, Bind, actions_are_valid
from .condition import Bindings, CEAnalysis, ConditionElement, analyze_lhs
from .errors import ValidationError
from .wme import WME


class Production:
    """An OPS5 production rule.

    Construction validates the rule: at least one CE, a positive first CE,
    predicate operands bound before use, and action CE references that
    name existing positive CEs.  Invalid rules raise
    :class:`~repro.ops5.errors.ValidationError` immediately, so a loaded
    program is structurally sound before any matching happens.

    Productions are immutable after construction and hashable by name;
    a program never contains two productions with the same name.
    """

    __slots__ = ("name", "conditions", "actions", "analysis", "positive_indices", "specificity")

    def __init__(
        self,
        name: str,
        conditions: Sequence[ConditionElement],
        actions: Sequence[Action],
    ) -> None:
        if not name:
            raise ValidationError("a production needs a name")
        self.name = name
        self.conditions: tuple[ConditionElement, ...] = tuple(conditions)
        self.actions: tuple[Action, ...] = tuple(actions)
        #: Compiler-oriented LHS analysis (see :func:`analyze_lhs`); also
        #: performs the structural LHS validation.
        self.analysis: tuple[CEAnalysis, ...] = tuple(analyze_lhs(self.conditions))
        #: 0-based LHS indices of the positive (non-negated) CEs.
        self.positive_indices: tuple[int, ...] = tuple(
            i for i, ce in enumerate(self.conditions) if not ce.negated
        )
        #: Total elementary test count, used by LEX conflict resolution.
        self.specificity: int = sum(ce.specificity() for ce in self.conditions)
        self._validate_rhs()

    def _validate_rhs(self) -> None:
        problems = actions_are_valid(self.actions, [ce.negated for ce in self.conditions])
        bound: set[str] = set()
        for analysis in self.analysis:
            if not analysis.ce.negated:
                bound.update(analysis.binders)
        for action in self.actions:
            for var in action.variables():
                if var not in bound:
                    problems.append(
                        f"production {self.name}: RHS variable <{var}> is never bound"
                    )
            if isinstance(action, Bind):
                bound.add(action.name)
        if problems:
            raise ValidationError("; ".join(problems))

    def ce_position_of(self, one_based: int) -> int:
        """Map a 1-based action CE reference to a positive-match position.

        ``remove 2`` refers to LHS element 2; instantiations only carry
        WMEs for positive CEs, so the position inside the instantiation
        tuple skips negated elements.
        """
        return self.positive_indices.index(one_based - 1)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Production):
            return NotImplemented
        return self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        return f"Production({self.name}, {len(self.conditions)} CEs, {len(self.actions)} actions)"


class Instantiation:
    """A satisfied production: matched WMEs plus induced bindings.

    ``wmes`` holds one WME per *positive* CE, in LHS order.  Two
    instantiations are equal when they name the same production and the
    same WME timetags -- bindings are derived data and excluded from
    identity, matching OPS5 refraction semantics.
    """

    __slots__ = ("production", "wmes", "bindings", "timetags", "key", "recency_key")

    def __init__(
        self,
        production: Production,
        wmes: Sequence[WME],
        bindings: Bindings | None = None,
    ) -> None:
        self.production = production
        self.wmes: tuple[WME, ...] = tuple(wmes)
        self.bindings: Bindings = dict(bindings or {})
        #: Timetags of the matched WMEs, in LHS (positive-CE) order.
        self.timetags: tuple[int, ...] = tuple(w.timetag for w in self.wmes)
        #: Identity key: (production name, matched timetags).
        self.key: tuple[str, tuple[int, ...]] = (production.name, self.timetags)
        #: Timetags sorted descending -- the LEX recency ordering key.
        self.recency_key: tuple[int, ...] = tuple(sorted(self.timetags, reverse=True))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instantiation):
            return NotImplemented
        return self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:
        tags = " ".join(str(t) for t in self.timetags)
        return f"<{self.production.name}: {tags}>"
