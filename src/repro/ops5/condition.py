"""Condition elements: the left-hand-side patterns of productions.

A condition element (CE) is a partial description of a WME::

    (block ^id <i> ^color <c> ^selected no)

Each attribute position holds a :class:`Test`.  The supported test forms
mirror OPS5:

* a **constant** — matches an identical constant;
* a **variable** ``<x>`` — matches anything, but all occurrences of the
  same variable in one LHS must match equal values;
* a **predicate** ``<> <x>``, ``> 5``, ``<= <y>`` ... — the WME value must
  stand in the given relation to the operand (constant or variable);
* a **conjunction** ``{ <x> > 5 }`` — every inner test must hold;
* a **disjunction** ``<< red green blue >>`` — the value must equal one of
  the listed constants.

A CE may be *negated* (written with a leading ``-``): the production is
satisfied only when **no** WME matches the negated CE under the bindings
established by the positive CEs.

This module also provides :func:`analyze_lhs`, which classifies every test
of every CE into the categories a Rete compiler needs:

* *alpha tests* — depend on a single WME only (constant tests, predicates
  with constant operands, and intra-CE variable consistency);
* *binders* — the attribute that gives a variable its value, per CE;
* *join tests* — comparisons between this CE's attributes and variables
  bound by earlier CEs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from .errors import ValidationError
from .wme import Value, WME, is_number, same_type, values_equal

#: A variable-binding environment: variable name -> value.
Bindings = dict[str, Value]


class Predicate(enum.Enum):
    """OPS5 predicate operators usable in front of a test operand."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    SAME_TYPE = "<=>"

    def apply(self, actual: Value, operand: Value) -> bool:
        """Evaluate ``actual <op> operand`` under OPS5 comparison rules.

        Ordering predicates require both sides to be numeric; a symbolic
        operand on an ordering predicate simply fails to match (OPS5
        signals an error at run time; failing the match is the common
        implementation choice and keeps matching total).
        """
        if self is Predicate.EQ:
            return values_equal(actual, operand)
        if self is Predicate.NE:
            return not values_equal(actual, operand)
        if self is Predicate.SAME_TYPE:
            return same_type(actual, operand)
        if not (is_number(actual) and is_number(operand)):
            return False
        if self is Predicate.LT:
            return actual < operand
        if self is Predicate.LE:
            return actual <= operand
        if self is Predicate.GT:
            return actual > operand
        return actual >= operand  # GE


class Test:
    """Base class for attribute tests.

    ``evaluate(value, bindings)`` returns the updated bindings on success
    (possibly the same object when nothing was bound) or ``None`` on
    failure.  Tests never mutate the bindings they are given.
    """

    __slots__ = ()

    def evaluate(self, value: Value, bindings: Bindings) -> Optional[Bindings]:
        raise NotImplementedError

    def variables(self) -> list[str]:
        """Variables mentioned by this test, in occurrence order."""
        return []

    def binds(self) -> list[str]:
        """Variables this test can *bind* (vs. merely reference)."""
        return []

    def specificity(self) -> int:
        """Number of elementary tests, for LEX specificity ordering."""
        return 1


@dataclass(frozen=True)
class ConstantTest(Test):
    """Matches only a value equal to *value* (OPS5 constant)."""

    value: Value

    def evaluate(self, value: Value, bindings: Bindings) -> Optional[Bindings]:
        return bindings if values_equal(value, self.value) else None

    def __repr__(self) -> str:
        return f"{self.value}"


@dataclass(frozen=True)
class VariableTest(Test):
    """A variable occurrence ``<name>``.

    The first occurrence in an LHS binds the variable; later occurrences
    must match the bound value.
    """

    name: str

    def evaluate(self, value: Value, bindings: Bindings) -> Optional[Bindings]:
        if self.name in bindings:
            return bindings if values_equal(value, bindings[self.name]) else None
        new = dict(bindings)
        new[self.name] = value
        return new

    def variables(self) -> list[str]:
        return [self.name]

    def binds(self) -> list[str]:
        return [self.name]

    def __repr__(self) -> str:
        return f"<{self.name}>"


@dataclass(frozen=True)
class PredicateTest(Test):
    """``<op> operand`` where operand is a constant or a variable.

    A predicate test never binds its variable operand; the variable must
    be bound elsewhere (validated by :func:`analyze_lhs`).
    """

    predicate: Predicate
    operand: "ConstantTest | VariableTest"

    def evaluate(self, value: Value, bindings: Bindings) -> Optional[Bindings]:
        if isinstance(self.operand, VariableTest):
            if self.operand.name not in bindings:
                # Unbound predicate operand: cannot be satisfied here.
                return None
            target = bindings[self.operand.name]
        else:
            target = self.operand.value
        return bindings if self.predicate.apply(value, target) else None

    def variables(self) -> list[str]:
        return self.operand.variables()

    def __repr__(self) -> str:
        return f"{self.predicate.value} {self.operand!r}"


@dataclass(frozen=True)
class ConjunctiveTest(Test):
    """``{ t1 t2 ... }`` — all inner tests must hold on the same value."""

    tests: tuple[Test, ...]

    def evaluate(self, value: Value, bindings: Bindings) -> Optional[Bindings]:
        current: Optional[Bindings] = bindings
        for test in self.tests:
            current = test.evaluate(value, current)
            if current is None:
                return None
        return current

    def variables(self) -> list[str]:
        out: list[str] = []
        for test in self.tests:
            out.extend(test.variables())
        return out

    def binds(self) -> list[str]:
        out: list[str] = []
        for test in self.tests:
            out.extend(test.binds())
        return out

    def specificity(self) -> int:
        return sum(t.specificity() for t in self.tests)

    def __repr__(self) -> str:
        return "{ " + " ".join(repr(t) for t in self.tests) + " }"


@dataclass(frozen=True)
class DisjunctiveTest(Test):
    """``<< v1 v2 ... >>`` — the value must equal one listed constant."""

    values: tuple[Value, ...]

    def evaluate(self, value: Value, bindings: Bindings) -> Optional[Bindings]:
        for candidate in self.values:
            if values_equal(value, candidate):
                return bindings
        return None

    def __repr__(self) -> str:
        return "<< " + " ".join(str(v) for v in self.values) + " >>"


@dataclass(frozen=True)
class ConditionElement:
    """One pattern of a production LHS.

    Parameters
    ----------
    cls:
        The element class the CE describes (a constant symbol; OPS5 CEs
        always name their class).
    tests:
        Mapping of attribute name to :class:`Test`.
    negated:
        True for ``-`` (negated) condition elements.
    """

    cls: str
    tests: Mapping[str, Test] = field(default_factory=dict)
    negated: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "tests", dict(self.tests))

    def match(self, wme: WME, bindings: Bindings) -> Optional[Bindings]:
        """Match *wme* under *bindings*; return extended bindings or None.

        This is the reference matching semantics used directly by the
        naive and TREAT matchers and, indirectly, by the test suite to
        validate the Rete network.
        """
        if wme.cls != self.cls:
            return None
        current: Optional[Bindings] = bindings
        # Sorted attribute order keeps variable-binding order identical to
        # the order assumed by analyze_lhs (predicates may only reference
        # variables bound earlier in this order; validation enforces it).
        for attribute in sorted(self.tests):
            current = self.tests[attribute].evaluate(wme.get(attribute), current)
            if current is None:
                return None
        return current

    def variables(self) -> list[str]:
        """All variables mentioned, in attribute-sorted occurrence order."""
        out: list[str] = []
        for attribute in sorted(self.tests):
            out.extend(self.tests[attribute].variables())
        return out

    def specificity(self) -> int:
        """Number of elementary tests incl. the implicit class test."""
        return 1 + sum(t.specificity() for t in self.tests.values())

    def __repr__(self) -> str:
        parts = [self.cls]
        for attribute in sorted(self.tests):
            parts.append(f"^{attribute} {self.tests[attribute]!r}")
        body = f"({' '.join(parts)})"
        return f"- {body}" if self.negated else body


# --------------------------------------------------------------------------
# LHS analysis for network compilers
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class JoinTest:
    """A cross-CE comparison the beta network must perform.

    ``own_attribute`` names the field of the *new* WME (the one flowing
    into the join for this CE); the comparand is the value bound for
    ``variable`` by condition element ``other_ce`` (a 0-based LHS index)
    at ``other_attribute``.
    """

    own_attribute: str
    predicate: Predicate
    variable: str
    other_ce: int
    other_attribute: str


@dataclass(frozen=True)
class CEAnalysis:
    """Compiler-oriented view of one condition element.

    Attributes
    ----------
    alpha_tests:
        (attribute, test) pairs decidable from the WME alone.  Includes
        intra-CE variable-consistency equality tests, represented as
        ``("=", attr_a, attr_b)`` tuples in :attr:`intra_tests`.
    binders:
        variable name -> attribute supplying its value, for variables
        whose *first LHS occurrence* is in this CE.
    join_tests:
        Cross-CE tests against variables bound by earlier CEs.
    """

    index: int
    ce: ConditionElement
    alpha_tests: tuple[tuple[str, Test], ...]
    intra_tests: tuple[tuple[str, str], ...]
    binders: Mapping[str, str]
    join_tests: tuple[JoinTest, ...]


def _flatten(attribute: str, test: Test) -> list[tuple[str, Test]]:
    """Flatten conjunctive tests into their components."""
    if isinstance(test, ConjunctiveTest):
        out: list[tuple[str, Test]] = []
        for inner in test.tests:
            out.extend(_flatten(attribute, inner))
        return out
    return [(attribute, test)]


def analyze_lhs(ces: Sequence[ConditionElement]) -> list[CEAnalysis]:
    """Classify the tests of an LHS for network compilation.

    Raises
    ------
    ValidationError
        If the first CE is negated, if a negated CE tries to bind a
        variable that is used nowhere else, or if a predicate references
        a variable that is never bound by a positive CE at or before the
        point of use.
    """
    if not ces:
        raise ValidationError("a production needs at least one condition element")
    if ces[0].negated:
        raise ValidationError("the first condition element may not be negated")

    analyses: list[CEAnalysis] = []
    bound_at: dict[str, tuple[int, str]] = {}  # var -> (ce index, attribute)

    for index, ce in enumerate(ces):
        flat: list[tuple[str, Test]] = []
        for attribute in sorted(ce.tests):
            flat.extend(_flatten(attribute, ce.tests[attribute]))

        alpha: list[tuple[str, Test]] = []
        intra: list[tuple[str, str]] = []
        binders: dict[str, str] = {}
        joins: list[JoinTest] = []

        for attribute, test in flat:
            if isinstance(test, (ConstantTest, DisjunctiveTest)):
                alpha.append((attribute, test))
            elif isinstance(test, VariableTest):
                if test.name in binders:
                    # Second occurrence within this CE: intra-element
                    # equality, decidable from the WME alone.
                    intra.append((binders[test.name], attribute))
                elif test.name in bound_at and not ce.negated:
                    # Bound by an earlier CE: a join equality test -- and
                    # this CE also re-binds it locally for later tests.
                    other_ce, other_attr = bound_at[test.name]
                    joins.append(
                        JoinTest(attribute, Predicate.EQ, test.name, other_ce, other_attr)
                    )
                    binders[test.name] = attribute
                elif test.name in bound_at:
                    # Negated CE referencing an earlier binding: join test
                    # only (negated CEs never export bindings).
                    other_ce, other_attr = bound_at[test.name]
                    joins.append(
                        JoinTest(attribute, Predicate.EQ, test.name, other_ce, other_attr)
                    )
                else:
                    binders[test.name] = attribute
            elif isinstance(test, PredicateTest):
                operand = test.operand
                if isinstance(operand, ConstantTest):
                    alpha.append((attribute, test))
                else:
                    name = operand.name
                    if name in binders:
                        # Intra-CE predicate against a locally bound var:
                        # kept as a join-style test against *this* CE.
                        joins.append(
                            JoinTest(attribute, test.predicate, name, index, binders[name])
                        )
                    elif name in bound_at:
                        other_ce, other_attr = bound_at[name]
                        joins.append(
                            JoinTest(attribute, test.predicate, name, other_ce, other_attr)
                        )
                    else:
                        raise ValidationError(
                            f"variable <{name}> used in a predicate test in condition "
                            f"element {index + 1} before being bound"
                        )
            else:  # pragma: no cover - exhaustive over Test subclasses
                raise ValidationError(f"unsupported test type {type(test).__name__}")

        if ce.negated and binders:
            # Variables first bound inside a negated CE are purely local
            # wildcards; they must not leak to later CEs or the RHS.
            pass
        else:
            for name, attribute in binders.items():
                if name not in bound_at:
                    bound_at[name] = (index, attribute)

        analyses.append(
            CEAnalysis(
                index=index,
                ce=ce,
                alpha_tests=tuple(alpha),
                intra_tests=tuple(intra),
                binders=dict(binders),
                join_tests=tuple(joins),
            )
        )
    return analyses


def wme_passes_alpha(wme: WME, analysis: CEAnalysis) -> bool:
    """True when *wme* passes all single-WME tests of *analysis*.

    This is the alpha-network semantics: class test, constant tests,
    constant-operand predicates, and intra-CE variable consistency.
    """
    if wme.cls != analysis.ce.cls:
        return False
    empty: Bindings = {}
    for attribute, test in analysis.alpha_tests:
        if test.evaluate(wme.get(attribute), empty) is None:
            return False
    for attr_a, attr_b in analysis.intra_tests:
        if not values_equal(wme.get(attr_a), wme.get(attr_b)):
            return False
    return True
