"""Tokens: partial matches flowing through the Rete network.

A token is a sequence of WMEs matching a *prefix* of a production's
condition elements.  Tokens are represented as linked lists (parent
token + one WME), so common prefixes are shared exactly the way shared
beta subnetworks share partial-match state.

Position ``i`` of a token corresponds to LHS condition element ``i``.
Negated condition elements contribute a ``None`` entry: they consume no
WME but still occupy their LHS position, which keeps the join-test
indexing (``JoinTest.other_ce``) trivial.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..ops5.wme import WME


class Token:
    """A partial match: parent chain plus one WME (or None for a ~CE).

    ``Token.empty()`` is the depth-0 dummy token held by the top node --
    the left input of every production's first join.

    Tokens are content-identified by the timetags of their WME chain
    (:attr:`key`).  Memory nodes store tokens keyed that way, which is
    what makes *rematch-style deletion* work: a delete walks the network
    exactly like the original add and removes the identical keys.
    """

    __slots__ = ("parent", "wme", "key", "depth")

    def __init__(self, parent: Optional["Token"], wme: Optional[WME]) -> None:
        if parent is None:
            # The dummy top token: matches zero condition elements.
            if wme is not None:
                raise ValueError("a root token cannot carry a WME; use Token(dummy, wme)")
            self.parent = None
            self.wme = None
            self.key: tuple = ()
            self.depth = 0
            return
        self.parent = parent
        self.wme = wme
        self.key = parent.key + ((wme.timetag if wme is not None else 0),)
        self.depth = parent.depth + 1

    @classmethod
    def empty(cls) -> "Token":
        """The depth-0 dummy token."""
        return cls(None, None)

    def wmes(self) -> tuple[Optional[WME], ...]:
        """The full WME chain, index i == LHS condition element i."""
        out: list[Optional[WME]] = []
        node: Optional[Token] = self
        while node is not None and node.depth > 0:
            out.append(node.wme)
            node = node.parent
        out.reverse()
        return tuple(out)

    def wme_at(self, ce_index: int) -> Optional[WME]:
        """The WME matched at LHS position *ce_index* (None for ~CEs)."""
        steps = self.depth - 1 - ce_index
        if steps < 0 or ce_index < 0:
            raise IndexError(f"token of depth {self.depth} has no CE {ce_index}")
        node: Token = self
        for _ in range(steps):
            assert node.parent is not None
            node = node.parent
        return node.wme

    def positive_wmes(self) -> tuple[WME, ...]:
        """The non-None WMEs, in LHS order (what instantiations carry)."""
        return tuple(w for w in self.wmes() if w is not None)

    def __iter__(self) -> Iterator[Optional[WME]]:
        return iter(self.wmes())

    def __repr__(self) -> str:
        tags = ",".join(str(t) if t else "~" for t in self.key)
        return f"Token[{tags}]"
