"""The Rete match algorithm (the paper's Section 2.2), instrumented.

Public surface:

* :class:`ReteNetwork` -- the matcher; plug into
  :class:`~repro.ops5.engine.ProductionSystem` (it is the default).
* :class:`RecordingListener` / :class:`ActivationEvent` -- capture the
  node-activation trace that drives the multiprocessor simulator.
* :func:`collect_stats` / :class:`NetworkStats` -- structure & sharing
  measurements.
"""

from .instrument import (
    ActivationEvent,
    NetworkListener,
    RecorderListener,
    RecordingListener,
)
from .network import ReteNetwork
from .nodes import (
    AlphaMemory,
    AlphaTestNode,
    BetaMemory,
    JoinNode,
    NegativeNode,
    TerminalNode,
)
from .stats import NetworkStats, collect_stats
from .token import Token
from .verify import assert_network_consistent, check_network

__all__ = [
    "ActivationEvent",
    "AlphaMemory",
    "AlphaTestNode",
    "BetaMemory",
    "JoinNode",
    "NegativeNode",
    "NetworkListener",
    "NetworkStats",
    "RecorderListener",
    "RecordingListener",
    "ReteNetwork",
    "TerminalNode",
    "Token",
    "assert_network_consistent",
    "check_network",
    "collect_stats",
]
