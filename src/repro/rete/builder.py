"""Compiling productions into the shared Rete network.

The builder walks a production's LHS analysis
(:func:`repro.ops5.condition.analyze_lhs`) and materialises the node
chain, *sharing* every node whose key already exists:

* alpha chain: class root -> one :class:`AlphaTestNode` per elementary
  single-WME test (in a canonical order, so identical CEs share their
  whole chain) -> :class:`AlphaMemory`;
* beta chain: dummy top -> (join | negative) -> beta memory -> ... ->
  terminal.  Two-input nodes are shared when parent memory, alpha
  memory, and join tests all coincide -- i.e. when two productions have
  identical LHS prefixes.

Sharing is the property the paper leans on twice: it is a large
uniprocessor win (Section 4), and *losing* it is one of the three
overheads behind the 1.93 lost factor of the parallel implementation
(Section 6), since production-parallel schemes cannot share.

New nodes are populated from current working memory at build time
("quiet" population: no activation events), so productions may be added
while the system runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..ops5.condition import (
    CEAnalysis,
    ConstantTest,
    DisjunctiveTest,
    PredicateTest,
    Test,
    wme_passes_alpha,
)
from ..ops5.production import Production
from ..ops5.wme import WME, values_equal
from .nodes import (
    AlphaMemory,
    AlphaTestNode,
    BetaMemory,
    JoinNode,
    NegativeNode,
    ReteNode,
    TerminalNode,
)

if TYPE_CHECKING:  # pragma: no cover
    from .network import ReteNetwork


class _ClassRootPredicate:
    """The per-class entry point's predicate: every routed WME passes.

    Alpha predicates are plain picklable callables (not closures) so a
    whole compiled network -- and therefore a shard's match state -- can
    be checkpointed with ``pickle`` for crash recovery.
    """

    __slots__ = ()

    def __call__(self, wme: WME) -> bool:
        return True


class _AttributeTestPredicate:
    """A WME predicate for one (attribute, test) pair.

    Only constant-operand tests reach the alpha network, so evaluation
    with empty bindings is complete.
    """

    __slots__ = ("attribute", "test")

    def __init__(self, attribute: str, test: Test) -> None:
        self.attribute = attribute
        self.test = test

    def __call__(self, wme: WME) -> bool:
        return self.test.evaluate(wme.get(self.attribute), {}) is not None


class _IntraTestPredicate:
    """A WME predicate for intra-CE variable consistency."""

    __slots__ = ("attr_a", "attr_b")

    def __init__(self, attr_a: str, attr_b: str) -> None:
        self.attr_a = attr_a
        self.attr_b = attr_b

    def __call__(self, wme: WME) -> bool:
        return values_equal(wme.get(self.attr_a), wme.get(self.attr_b))


def _test_share_key(attribute: str, test: Test) -> tuple:
    """A canonical hashable key identifying one alpha test."""
    if isinstance(test, ConstantTest):
        return ("const", attribute, type(test.value).__name__, test.value)
    if isinstance(test, DisjunctiveTest):
        return ("disj", attribute, test.values)
    if isinstance(test, PredicateTest):
        assert isinstance(test.operand, ConstantTest)
        return ("pred", attribute, test.predicate.value, test.operand.value)
    raise TypeError(f"unexpected alpha test {test!r}")  # pragma: no cover


class NetworkBuilder:
    """Builds (and prunes) node chains inside one :class:`ReteNetwork`."""

    def __init__(self, net: "ReteNetwork") -> None:
        self.net = net

    # -- building -------------------------------------------------------------

    def build(self, production: Production) -> list[ReteNode]:
        """Compile *production*; return every node it uses, terminal last."""
        net = self.net
        used: list[ReteNode] = []

        current: BetaMemory = net.dummy_top
        for analysis in production.analysis:
            amem = self._alpha_chain(analysis, production.name, used)
            kind = "neg" if analysis.ce.negated else "join"
            key = ("beta", current.id, kind, amem.id, analysis.join_tests)
            node = net.share_registry.get(key)
            if node is None:
                if kind == "neg":
                    node = NegativeNode(net, current, amem, analysis.join_tests, analysis.index)
                    current.children.append(node)
                    # Descendants-first successor order (Doorenbos 2.4.1):
                    # when one WME feeds several CEs of a production
                    # through a shared alpha memory, the deeper join must
                    # right-activate before its ancestors, or the pair is
                    # produced twice.  Nodes attach top-down, so
                    # prepending yields exactly that order.
                    amem.successors.insert(0, node)
                    node.populate_from_parent()
                else:
                    node = JoinNode(
                        net, current, amem, analysis.join_tests,
                        analysis.index, indexed=net.indexed,
                    )
                    current.children.append(node)
                    amem.successors.insert(0, node)
                self._register(key, node)
            else:
                net.nodes_shared += 1
            used.append(node)

            bkey = ("bmem", node.id)
            bmem = net.share_registry.get(bkey)
            if bmem is None:
                bmem = BetaMemory(net, node)
                node.children.append(bmem)
                bmem.populate_from_parent()
                self._register(bkey, bmem)
            else:
                net.nodes_shared += 1
            assert isinstance(bmem, BetaMemory)
            used.append(bmem)
            current = bmem

        terminal = TerminalNode(
            net, current, production, self._binding_specs(production.analysis)
        )
        current.children.append(terminal)
        terminal.populate_from_parent()
        used.append(terminal)

        for node in used:
            node.refcount += 1
        return used

    def _alpha_chain(
        self, analysis: CEAnalysis, production_name: str, used: list[ReteNode]
    ) -> AlphaMemory:
        """Walk/create the constant-test chain and memory for one CE."""
        net = self.net
        cls = analysis.ce.cls

        root = net.class_roots.get(cls)
        if root is None:
            root = AlphaTestNode(net, ("class", cls), _ClassRootPredicate())
            # The per-class entry point is the change's root task in the
            # activation trace; its cost model differs from plain
            # constant tests.
            root.kind = "root"
            net.class_roots[cls] = root
            self._register(("class", cls), root)
        else:
            net.nodes_shared += 1
        used.append(root)
        parent: AlphaTestNode = root

        keys: list[tuple] = []
        predicates = []
        for attribute, test in sorted(
            analysis.alpha_tests, key=lambda pair: (pair[0], repr(pair[1]))
        ):
            keys.append(_test_share_key(attribute, test))
            predicates.append(_AttributeTestPredicate(attribute, test))
        for attr_a, attr_b in sorted(analysis.intra_tests):
            keys.append(("intra", attr_a, attr_b))
            predicates.append(_IntraTestPredicate(attr_a, attr_b))

        for key, predicate in zip(keys, predicates):
            full_key = ("alpha", parent.id) + key
            node = net.share_registry.get(full_key)
            if node is None:
                node = AlphaTestNode(net, full_key, predicate)
                node.parent = parent  # type: ignore[attr-defined]
                parent.children.append(node)
                self._register(full_key, node)
            else:
                net.nodes_shared += 1
            assert isinstance(node, AlphaTestNode)
            used.append(node)
            parent = node

        mem_key = ("amem", parent.id)
        amem = net.share_registry.get(mem_key)
        if amem is None:
            amem = AlphaMemory(net)
            amem.parent = parent  # type: ignore[attr-defined]
            parent.children.append(amem)
            # Quiet population from current working memory; the CE's alpha
            # semantics are exactly wme_passes_alpha.
            for wme in net.current_wmes():
                if wme_passes_alpha(wme, analysis):
                    amem.items[wme.timetag] = wme
            self._register(mem_key, amem)
        else:
            net.nodes_shared += 1
        assert isinstance(amem, AlphaMemory)
        amem.production_names.add(production_name)
        used.append(amem)
        return amem

    @staticmethod
    def _binding_specs(analyses) -> tuple[tuple[str, int, str], ...]:
        """First positive-CE binding site of every LHS variable."""
        seen: set[str] = set()
        specs: list[tuple[str, int, str]] = []
        for analysis in analyses:
            if analysis.ce.negated:
                continue
            for variable, attribute in analysis.binders.items():
                if variable not in seen:
                    seen.add(variable)
                    specs.append((variable, analysis.index, attribute))
        return tuple(specs)

    def _register(self, key: tuple, node: ReteNode) -> None:
        self.net.share_registry[key] = node
        node.share_key_full = key  # type: ignore[attr-defined]

    # -- pruning --------------------------------------------------------------

    def detach(self, node: ReteNode) -> None:
        """Remove a refcount-zero node from the network graph."""
        net = self.net
        key = getattr(node, "share_key_full", None)
        if key is not None:
            net.share_registry.pop(key, None)
        if isinstance(node, TerminalNode):
            node.parent.children.remove(node)
        elif isinstance(node, (JoinNode, NegativeNode)):
            node.left_memory.children.remove(node)
            node.amem.successors.remove(node)
        elif isinstance(node, BetaMemory):
            parent = node.parent
            if parent is not None:
                parent.children.remove(node)
        elif isinstance(node, AlphaMemory):
            node.parent.children.remove(node)  # type: ignore[attr-defined]
        elif isinstance(node, AlphaTestNode):
            parent = getattr(node, "parent", None)
            if parent is None:
                # A class root.
                cls = node.share_key[1]
                net.class_roots.pop(cls, None)
            else:
                parent.children.remove(node)
