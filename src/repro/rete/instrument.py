"""Node-activation instrumentation.

The paper's evaluation pipeline is *trace-driven*: an instrumented Rete
interpreter records every node activation together with the activation
that caused it, and a multiprocessor simulator replays the resulting
task graph (Section 6: "the inputs to the simulator consist of a
detailed trace of node activations from an actual run...").

:class:`ActivationEvent` is one record of that trace.  Events form a
forest per working-memory change: the root event is the change itself;
an alpha-memory activation is a child of the change; a join activation
caused by that alpha memory is a child of the alpha event, and so on.
The ``parent`` link is exactly the data dependency the simulator must
respect.

Cost-relevant measurements are captured per event:

``comparisons``
    Number of token-vs-WME consistency checks the activation performed
    (drives the cost model's per-pair term).
``outputs``
    Number of tokens the activation emitted downstream.

Since the unified observability layer landed (``repro.obs``), this
module is a *thin adapter* over that substrate: the listener protocol
stays the network's native observation surface, and
:class:`RecorderListener` bridges it onto an
:class:`~repro.obs.Recorder`, turning every node activation into a
timed span (the measured form of the paper's Section 4 per-activation
costs).  Listeners that set :attr:`NetworkListener.wants_timing` get
``ts``/``dur`` wall-clock nanoseconds on each event; the default
untimed path costs one branch per activation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class ActivationEvent:
    """One node activation in a Rete run.

    Attributes
    ----------
    seq:
        Unique, increasing id within the run (a valid topological order).
    parent:
        ``seq`` of the activation that triggered this one, or None when
        the trigger is the working-memory change itself.
    node_id / node_kind:
        Which network node ran.  Kinds: ``root``, ``const``, ``amem``,
        ``bmem``, ``join``, ``neg``, ``term``.
    direction:
        "add" or "delete" -- whether match state is being built or torn
        down (costs are symmetric in Rete; the paper sets c1 = c2).
    side:
        For two-input nodes, "left" (token arrived) or "right" (WME
        arrived); empty otherwise.
    production:
        For terminal activations, the production affected.
    """

    seq: int
    parent: Optional[int]
    node_id: int
    node_kind: str
    direction: str
    side: str = ""
    comparisons: int = 0
    outputs: int = 0
    production: str = ""
    #: Wall-clock start (raw ``time.perf_counter_ns``) and duration in
    #: nanoseconds; populated only for listeners with ``wants_timing``.
    ts: int = 0
    dur: int = 0


class NetworkListener:
    """Observer of Rete activity.  All methods default to no-ops."""

    #: Set True (RecorderListener does) to have the network stamp
    #: ``ts``/``dur`` wall-clock values on every activation event.
    wants_timing = False

    def on_change_begin(self, kind: str, wme_timetag: int, wme_class: str) -> None:
        """A working-memory change is about to flow through the network."""

    def on_activation(self, event: ActivationEvent) -> None:
        """A node activation completed (counters are final)."""

    def on_change_end(self) -> None:
        """The change has fully propagated; the network is quiescent."""


class RecordingListener(NetworkListener):
    """Records every event, grouped per working-memory change.

    The trace generator consumes :attr:`changes`: a list of
    (change kind, wme class, [events]) triples in occurrence order.
    """

    def __init__(self) -> None:
        self.changes: list[tuple[str, str, list[ActivationEvent]]] = []
        self._current: Optional[list[ActivationEvent]] = None

    def on_change_begin(self, kind: str, wme_timetag: int, wme_class: str) -> None:
        self._current = []
        self.changes.append((kind, wme_class, self._current))

    def on_activation(self, event: ActivationEvent) -> None:
        if self._current is not None:
            self._current.append(event)

    def on_change_end(self) -> None:
        self._current = None


class RecorderListener(NetworkListener):
    """Bridges Rete activity onto a :class:`~repro.obs.Recorder`.

    Every node activation becomes one timed span (name
    ``<kind>#<node id>``, category ``rete``) carrying the cost-relevant
    counters -- comparisons, outputs, causal parent -- as span args, and
    every working-memory change becomes an enclosing ``change:<kind>``
    span.  The network stamps activation timestamps with the same clock
    the recorder uses, so the spans land on the shared timeline next to
    engine-cycle and shard-batch spans.

    ``tid`` selects the recorder lane (Chrome trace thread); the
    default 0 is the main engine lane.
    """

    wants_timing = True

    def __init__(self, recorder, tid: int = 0) -> None:
        self.recorder = recorder
        self.tid = tid
        self._change_start: Optional[int] = None
        self._change_name = ""
        self._change_args: Optional[dict] = None

    def on_change_begin(self, kind: str, wme_timetag: int, wme_class: str) -> None:
        self._change_start = self.recorder.now()
        self._change_name = f"change:{kind}"
        self._change_args = {"wme_class": wme_class, "timetag": wme_timetag}

    def on_activation(self, event: ActivationEvent) -> None:
        args = {
            "seq": event.seq,
            "direction": event.direction,
            "comparisons": event.comparisons,
            "outputs": event.outputs,
        }
        if event.parent is not None:
            args["parent"] = event.parent
        if event.side:
            args["side"] = event.side
        if event.production:
            args["production"] = event.production
        self.recorder.complete(
            f"{event.node_kind}#{event.node_id}",
            "rete",
            start=event.ts,
            duration=event.dur,
            tid=self.tid,
            args=args,
        )

    def on_change_end(self) -> None:
        if self._change_start is None:
            return
        self.recorder.complete(
            self._change_name,
            "rete",
            start=self._change_start,
            duration=self.recorder.now() - self._change_start,
            tid=self.tid,
            args=self._change_args,
        )
        self._change_start = None
