"""Network consistency checking: recompute every memory from scratch.

Differential testing compares matcher *outputs* (conflict sets); this
module audits Rete's *internal* state.  For every node with memory it
recomputes, from the current WMEs and first principles, what the node
should contain:

* an alpha memory must hold exactly the WMEs passing its CE's alpha
  tests;
* a beta memory at prefix depth k must hold exactly the partial matches
  of its producing production's first k condition elements (negations
  evaluated at their position, as tokens do);
* a negative node must store every prefix token of the CEs before it,
  each with the correct blocker count;
* the conflict set must equal the set of full matches surviving all
  negations.

:func:`check_network` returns a list of discrepancy descriptions (empty
means consistent); :func:`assert_network_consistent` raises on any.
Used by the property-based tests as a deep oracle, and available to
library users as a debugging aid after suspicious behaviour.
"""

from __future__ import annotations

from ..ops5.condition import Bindings, wme_passes_alpha
from ..ops5.production import Production
from ..ops5.wme import WME
from .network import ReteNetwork
from .nodes import AlphaMemory, BetaMemory, NegativeNode, TerminalNode


def _prefix_keys(
    production: Production, depth: int, wmes: list[WME]
) -> dict[tuple, int]:
    """Expected token keys for the first *depth* CEs.

    Returns key -> blocker count *of the CE at position depth* when that
    CE is negated and ``count_next_neg`` is requested via depth pointing
    at it; for plain prefixes the value is 0 and only the keys matter.
    """
    results: dict[tuple, int] = {}

    def extend(index: int, bindings: Bindings, key: tuple) -> None:
        if index == depth:
            results[key] = results.get(key, 0)
            return
        ce = production.conditions[index]
        if ce.negated:
            for wme in wmes:
                if ce.match(wme, dict(bindings)) is not None:
                    return  # blocked: no token continues past this CE
            extend(index + 1, bindings, key + (0,))
            return
        for wme in wmes:
            extended = ce.match(wme, bindings)
            if extended is not None:
                extend(index + 1, extended, key + (wme.timetag,))

    extend(0, {}, ())
    return results


def _neg_expectations(
    production: Production, neg_index: int, wmes: list[WME]
) -> dict[tuple, int]:
    """Expected (stored token key -> blocker count) for a negative node."""
    stored: dict[tuple, int] = {}

    def extend(index: int, bindings: Bindings, key: tuple) -> None:
        if index == neg_index:
            ce = production.conditions[neg_index]
            count = sum(
                1 for wme in wmes if ce.match(wme, dict(bindings)) is not None
            )
            stored[key] = count
            return
        ce = production.conditions[index]
        if ce.negated:
            for wme in wmes:
                if ce.match(wme, dict(bindings)) is not None:
                    return
            extend(index + 1, bindings, key + (0,))
            return
        for wme in wmes:
            extended = ce.match(wme, bindings)
            if extended is not None:
                extend(index + 1, extended, key + (wme.timetag,))

    extend(0, {}, ())
    return stored


def check_network(net: ReteNetwork) -> list[str]:
    """Audit every memory in *net*; return discrepancy descriptions."""
    problems: list[str] = []
    wmes = net.current_wmes()

    for name, nodes in net._production_nodes.items():
        production = next(p for p in net.productions if p.name == name)
        beta_depth = 0
        for node in nodes:
            if isinstance(node, AlphaMemory):
                continue  # audited globally below
            if isinstance(node, NegativeNode):
                expected = _neg_expectations(production, node.ce_index, wmes)
                actual = {key: count for key, (_t, count) in node.stored.items()}
                if actual != expected:
                    problems.append(
                        f"neg node {node.id} ({name} CE {node.ce_index}): "
                        f"stored {actual} != expected {expected}"
                    )
                beta_depth = node.ce_index + 1
            elif isinstance(node, BetaMemory):
                beta_depth = _bmem_depth(node)
                expected_keys = set(_prefix_keys(production, beta_depth, wmes))
                actual_keys = set(node.items)
                if actual_keys != expected_keys:
                    problems.append(
                        f"beta memory {node.id} ({name} depth {beta_depth}): "
                        f"holds {sorted(actual_keys)} != expected "
                        f"{sorted(expected_keys)}"
                    )
            elif isinstance(node, TerminalNode):
                expected_full = set(
                    _prefix_keys(production, len(production.conditions), wmes)
                )
                actual_full = {
                    tuple(
                        key[i] for i in production.positive_indices
                    )
                    for key in expected_full
                }
                conflict_keys = {
                    inst.timetags
                    for inst in net.conflict_set
                    if inst.production.name == name
                }
                if conflict_keys != actual_full:
                    problems.append(
                        f"terminal ({name}): conflict set {sorted(conflict_keys)} "
                        f"!= expected {sorted(actual_full)}"
                    )

    # Alpha memories: shared, so audited once each against any CE using
    # them (all users have identical alpha semantics by construction).
    audited: set[int] = set()
    for name, nodes in net._production_nodes.items():
        production = next(p for p in net.productions if p.name == name)
        amem_order = [n for n in nodes if isinstance(n, AlphaMemory)]
        for analysis, amem in zip(production.analysis, amem_order):
            if amem.id in audited:
                continue
            audited.add(amem.id)
            expected_tags = {
                wme.timetag for wme in wmes if wme_passes_alpha(wme, analysis)
            }
            actual_tags = set(amem.items)
            if actual_tags != expected_tags:
                problems.append(
                    f"alpha memory {amem.id} ({name} CE {analysis.index}): "
                    f"holds {sorted(actual_tags)} != expected {sorted(expected_tags)}"
                )
    return problems


def _bmem_depth(node: BetaMemory) -> int:
    """A beta memory's prefix depth = its producing two-input node's CE + 1."""
    parent = node.parent
    ce_index = getattr(parent, "ce_index", None)
    if ce_index is None:  # pragma: no cover - dummy top never audited
        return 0
    return ce_index + 1


def assert_network_consistent(net: ReteNetwork) -> None:
    """Raise ``AssertionError`` with details if any memory is wrong."""
    problems = check_network(net)
    if problems:
        raise AssertionError("; ".join(problems))
