"""Network-level statistics: node counts, sharing, and state volume.

These feed two of the paper's arguments:

* **Sharing** (Sections 2.2, 4): the compiler shares identical nodes, a
  significant uniprocessor win that production-level parallelism must
  give up.  ``sharing_ratio`` quantifies it for a loaded network.
* **State volume** (Section 3.2): Rete's stored state sits between
  TREAT's (alpha only) and Oflazer's (all CE combinations);
  ``state_size`` reports the live token/WME counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .network import ReteNetwork
from .nodes import (
    AlphaMemory,
    BetaMemory,
    NegativeNode,
    TerminalNode,
)


@dataclass
class NetworkStats:
    """A snapshot of one network's structure and stored state."""

    productions: int
    nodes_by_kind: dict[str, int] = field(default_factory=dict)
    #: Registry reuse events during compilation (higher = more sharing).
    shared_hits: int = 0
    #: Node objects actually created.
    created: int = 0
    alpha_wmes: int = 0
    beta_tokens: int = 0

    @property
    def total_nodes(self) -> int:
        return sum(self.nodes_by_kind.values())

    @property
    def sharing_ratio(self) -> float:
        """Fraction of compile-time node demands served by reuse.

        0.0 means no sharing occurred; approaching 1.0 means nearly every
        requested node already existed.
        """
        demands = self.created + self.shared_hits
        return self.shared_hits / demands if demands else 0.0

    def rows(self) -> list[tuple[str, int]]:
        """(kind, count) rows for report printing."""
        return sorted(self.nodes_by_kind.items())


def collect_stats(net: ReteNetwork) -> NetworkStats:
    """Compute a :class:`NetworkStats` snapshot for *net*."""
    kinds: dict[str, int] = {}
    alpha_wmes = 0
    beta_tokens = 0
    for node in net.share_registry.values():
        kinds[node.kind] = kinds.get(node.kind, 0) + 1
        if isinstance(node, AlphaMemory):
            alpha_wmes += len(node.items)
        elif isinstance(node, BetaMemory):
            beta_tokens += len(node.items)
        elif isinstance(node, NegativeNode):
            beta_tokens += len(node.stored)
    # Terminals are not in the share registry (never shared); count them.
    kinds["term"] = kinds.get("term", 0) + 0
    for nodes in net._production_nodes.values():
        for node in nodes:
            if isinstance(node, TerminalNode):
                kinds["term"] += 1
    return NetworkStats(
        productions=len(list(net.productions)),
        nodes_by_kind=kinds,
        shared_hits=net.nodes_shared,
        created=net.nodes_created,
        alpha_wmes=alpha_wmes,
        beta_tokens=beta_tokens,
    )
