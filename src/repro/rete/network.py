"""The Rete network: a state-saving matcher with node sharing.

:class:`ReteNetwork` implements the :class:`~repro.ops5.matcher.Matcher`
interface.  Productions are compiled (by :mod:`repro.rete.builder`) into
a shared dataflow network; working-memory changes flow through the
network updating stored state, and the output is a stream of conflict-set
edits -- exactly the algorithm of the paper's Section 2.2.

The network is instrumented: every memory/two-input/terminal activation
is reported to an attached :class:`~repro.rete.instrument.NetworkListener`
with a causal parent link, forming the task graph the multiprocessor
simulator replays (Section 6).
"""

from __future__ import annotations

import time
from typing import Iterable

from ..ops5.errors import Ops5Error
from ..ops5.matcher import ChangeRecord, Matcher
from ..ops5.production import Production
from ..ops5.wme import WME
from .builder import NetworkBuilder
from .instrument import ActivationEvent, NetworkListener
from .nodes import ADD, AlphaTestNode, BetaMemory, DELETE, ReteNode
from .token import Token


class ReteNetwork(Matcher):
    """A Rete matcher over a dynamic set of productions.

    Parameters
    ----------
    listener:
        Optional :class:`NetworkListener` receiving activation events.
        When omitted, instrumentation costs reduce to counter updates.
    indexed:
        Use hash-indexed join memories (the hashed memory-node
        organisation): joins probe buckets instead of scanning, cutting
        comparison counts on equality-heavy programs.
    conflict_set:
        Replace the network's conflict set with a caller-supplied
        subclass.  The parallel executor injects a recording set here so
        a shard's terminal activity becomes a transferable edit stream.
    """

    def __init__(
        self,
        listener: NetworkListener | None = None,
        indexed: bool = False,
        conflict_set=None,
    ) -> None:
        super().__init__()
        if conflict_set is not None:
            self.conflict_set = conflict_set
        self.listener = listener or NetworkListener()
        #: Wall-clock per activation, only when the listener asks for it
        #: (RecorderListener does): the untimed path stays branch-cheap,
        #: keeping the Section 4 cost measurements unperturbed.
        self._activation_clock = (
            time.perf_counter_ns if getattr(self.listener, "wants_timing", False) else None
        )
        #: Hash-indexed join memories (see JoinNode); semantics are
        #: unchanged, only match effort drops.
        self.indexed = indexed
        self._next_node_id = 1
        self._next_seq = 1
        #: Sharing statistics: node creations vs. reuse hits.
        self.nodes_created = 0
        self.nodes_shared = 0
        self._wmes: dict[int, WME] = {}
        #: Per-class entry points into the alpha network.
        self.class_roots: dict[str, AlphaTestNode] = {}
        #: The dummy top beta memory: left input of every first join.
        self.dummy_top = BetaMemory(self, None)
        empty = Token.empty()
        self.dummy_top.items[empty.key] = empty
        #: Sharing registry: share key -> node (see builder for key shapes).
        self.share_registry: dict[tuple, ReteNode] = {}
        #: Per-production list of nodes, build order (terminal last).
        self._production_nodes: dict[str, list[ReteNode]] = {}
        self._productions: dict[str, Production] = {}
        self._builder = NetworkBuilder(self)
        # Per-change measurement scratch.
        self._event_stack: list[ActivationEvent] = []
        self._change_activations = 0
        self._change_comparisons = 0
        self._change_tokens = 0
        self._change_const_tests = 0
        self._change_affected: set[str] = set()

    # -- node/event bookkeeping (used by node classes and the builder) -------

    def allocate_node_id(self) -> int:
        """Hand out the next node id (node classes call this)."""
        node_id = self._next_node_id
        self._next_node_id += 1
        self.nodes_created += 1
        return node_id

    def rebuild_join_indexes(self) -> None:
        """Rekey every indexed join's hash buckets in this process.

        Index keys embed process-local symbol intern ids, so a network
        that was pickled in one process and loaded in another carries
        buckets keyed against a table that no longer exists.  Callers
        that unpickle a network (worker restore, checkpoint round-trip
        tests) must invoke this before the next activation.  Cheap when
        nothing is indexed: one isinstance scan over the registry.
        """
        from .nodes import JoinNode  # local to avoid cycle noise

        for node in self.share_registry.values():
            if isinstance(node, JoinNode) and node.indexed:
                node.rebuild_indexes()

    def start_event(self, node: ReteNode, direction: str, side: str = "") -> ActivationEvent:
        """Open an activation event; nested events record it as parent."""
        parent = self._event_stack[-1].seq if self._event_stack else None
        event = ActivationEvent(
            seq=self._next_seq,
            parent=parent,
            node_id=node.id,
            node_kind=node.kind,
            direction=direction,
            side=side,
        )
        self._next_seq += 1
        if self._activation_clock is not None:
            event.ts = self._activation_clock()
        self._event_stack.append(event)
        self._change_activations += 1
        return event

    def finish_event(self, event: ActivationEvent) -> None:
        """Close an activation event and report it to the listener."""
        popped = self._event_stack.pop()
        if popped is not event:  # pragma: no cover - propagation invariant
            raise Ops5Error("unbalanced activation events")
        if self._activation_clock is not None:
            event.dur = self._activation_clock() - event.ts
        self._change_comparisons += event.comparisons
        self.listener.on_activation(event)

    def count_constant_test(self) -> None:
        """Tally one alpha-network constant test for the current change."""
        self._change_const_tests += 1

    def count_token_built(self) -> None:
        """Tally one stored beta token for the current change."""
        self._change_tokens += 1

    def note_affected(self, production_names: set[str]) -> None:
        """Mark productions as affected by the current change."""
        self._change_affected.update(production_names)

    # -- Matcher interface -----------------------------------------------------

    @property
    def productions(self) -> Iterable[Production]:
        """The productions currently compiled into the network."""
        return self._productions.values()

    def add_production(self, production: Production) -> None:
        """Compile *production* into the network and match existing WM.

        Compilation is quiet (no activation events) but semantically
        complete: new memories are filled from current working memory and
        existing full matches enter the conflict set immediately.
        """
        if production.name in self._productions:
            raise Ops5Error(f"production {production.name!r} already in network")
        nodes = self._builder.build(production)
        self._productions[production.name] = production
        self._production_nodes[production.name] = nodes

    def remove_production(self, name: str) -> None:
        """Retract the production's instantiations and prune its nodes.

        Nodes shared with other productions survive (refcounts); nodes
        used only by this production are detached in reverse build order.
        """
        production = self._productions.pop(name, None)
        if production is None:
            raise Ops5Error(f"no production named {name!r}")
        for instantiation in list(self.conflict_set):
            if instantiation.production.name == name:
                self.conflict_set.delete(instantiation)
        nodes = self._production_nodes.pop(name)
        for node in reversed(nodes):
            node.refcount -= 1
            if node.refcount == 0:
                self._builder.detach(node)

    def add_wme(self, wme: WME) -> None:
        """Flow a WME insertion through the network."""
        self._process(wme, ADD)
        self._wmes[wme.timetag] = wme

    def remove_wme(self, wme: WME) -> None:
        """Flow a WME deletion through the network (rematch-style)."""
        if wme.timetag not in self._wmes:
            raise Ops5Error(f"WME {wme!r} was never added to this network")
        del self._wmes[wme.timetag]
        self._process(wme, DELETE)

    # -- change propagation ------------------------------------------------------

    def _process(self, wme: WME, direction: str) -> None:
        self._change_activations = 0
        self._change_comparisons = 0
        self._change_tokens = 0
        self._change_const_tests = 0
        self._change_affected = set()
        kind = "add" if direction == ADD else "remove"
        self.listener.on_change_begin(kind, wme.timetag, wme.cls)

        root = self.class_roots.get(wme.cls)
        if root is not None:
            event = self.start_event(root, direction)
            for child in root.children:
                child.activate(wme, direction)
            event.comparisons = self._change_const_tests
            self.finish_event(event)

        self.listener.on_change_end()
        self.stats.record(
            ChangeRecord(
                kind=kind,
                wme_class=wme.cls,
                affected_productions=len(self._change_affected),
                node_activations=self._change_activations,
                comparisons=self._change_comparisons,
                tokens_built=self._change_tokens,
            )
        )

    # -- introspection -------------------------------------------------------------

    @property
    def wme_count(self) -> int:
        """Number of WMEs currently known to the network."""
        return len(self._wmes)

    def current_wmes(self) -> list[WME]:
        """A snapshot list of the WMEs currently in the network."""
        return list(self._wmes.values())

    def state_size(self) -> dict[str, int]:
        """Stored-state volume: WMEs in alpha memories, tokens in betas.

        This is the quantity the paper's Section 3.2 spectrum argument is
        about (TREAT stores less, Oflazer's scheme much more).
        """
        from .nodes import AlphaMemory, NegativeNode  # local to avoid cycle noise

        alpha = 0
        beta = 0
        for node in self.share_registry.values():
            if isinstance(node, AlphaMemory):
                alpha += len(node.items)
            elif isinstance(node, BetaMemory):
                beta += len(node.items)
            elif isinstance(node, NegativeNode):
                beta += len(node.stored)
        return {"alpha_wmes": alpha, "beta_tokens": beta}
