"""Rete network node classes.

The four node kinds of the paper's Section 2.2 map onto:

* **Constant-test nodes** -- :class:`AlphaTestNode` (one per elementary
  single-WME test, shared between productions with identical tests).
* **Memory nodes** -- :class:`AlphaMemory` (WMEs matching one CE's alpha
  tests) and :class:`BetaMemory` (tokens matching a CE prefix).
* **Two-input nodes** -- :class:`JoinNode` (positive CEs) and
  :class:`NegativeNode` (negated CEs; a combined memory + join that
  counts blockers per left token).
* **Terminal nodes** -- :class:`TerminalNode`, one per production,
  editing the conflict set.

Deletion is *rematch-style*, as in Forgy's original Rete: a WME removal
flows through the same nodes as its addition, with a ``direction`` flag;
memory nodes remove the keys the addition stored.  This keeps deletion
cost symmetric with insertion cost, which is exactly the paper's
Section 3.1 assumption (c1 = c2).

Every memory, two-input, and terminal activation is reported to the
owning network for instrumentation (see :mod:`repro.rete.instrument`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..ops5.condition import JoinTest
from ..ops5.errors import Ops5Error
from ..ops5.production import Instantiation, Production
from ..ops5.symbols import intern_id
from ..ops5.wme import WME
from .token import Token

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .network import ReteNetwork

ADD = "add"
DELETE = "delete"


class ReteNode:
    """Common base: identity, children, and production refcounting.

    Every node class declares ``__slots__``: nodes sit on the
    per-activation hot path and a network holds thousands of them, so
    dropping the per-instance ``__dict__`` buys both attribute-access
    speed and memory (measured in ``benchmarks/bench_transport.py``'s
    slots micro-bench).  ``parent`` and ``share_key_full`` live on the
    base because the builder assigns them across several node kinds.
    """

    __slots__ = ("id", "net", "children", "refcount", "parent", "share_key_full", "kind")

    #: Node kind tag.  An instance slot (not a class attribute) because
    #: the builder retags a per-class alpha root as ``"root"``.
    KIND = "node"

    def __init__(self, net: "ReteNetwork") -> None:
        self.kind = self.KIND
        self.id = net.allocate_node_id()
        self.net = net
        #: Downstream nodes receiving this node's output.
        self.children: list[ReteNode] = []
        #: Number of productions whose compilation uses this node.
        self.refcount = 0
        #: Upstream node (assigned by the builder where meaningful).
        self.parent = None
        #: The sharing-registry key this node is registered under.
        self.share_key_full: tuple | None = None


# ---------------------------------------------------------------------------
# Alpha network
# ---------------------------------------------------------------------------


class AlphaTestNode(ReteNode):
    """A constant-test node: a single-WME predicate, shared by key.

    ``share_key`` is a hashable description of the test; the builder
    reuses an existing child with the same key instead of duplicating the
    node (the paper's network-sharing property).
    """

    KIND = "const"

    __slots__ = ("share_key", "predicate")

    def __init__(
        self, net: "ReteNetwork", share_key: tuple, predicate: Callable[[WME], bool]
    ) -> None:
        super().__init__(net)
        self.share_key = share_key
        self.predicate = predicate

    def activate(self, wme: WME, direction: str) -> None:
        self.net.count_constant_test()
        if self.predicate(wme):
            for child in self.children:
                child.activate(wme, direction)


class AlphaMemory(ReteNode):
    """Stores the WMEs passing one condition element's alpha tests."""

    KIND = "amem"

    __slots__ = ("items", "successors", "production_names")

    def __init__(self, net: "ReteNetwork") -> None:
        super().__init__(net)
        self.items: dict[int, WME] = {}
        #: Two-input nodes fed from the right by this memory.
        self.successors: list[ReteNode] = []
        #: Names of productions with a CE backed by this memory -- the
        #: paper's "affected productions" bookkeeping.
        self.production_names: set[str] = set()

    def activate(self, wme: WME, direction: str) -> None:
        event = self.net.start_event(self, direction)
        if direction == ADD:
            self.items[wme.timetag] = wme
        else:
            # Rematch deletion: the WME must be present; a miss means the
            # add never reached this memory, i.e. corrupted state.  Fail
            # loudly with context (the convention ConflictSet follows)
            # instead of leaking a bare KeyError.
            if wme.timetag not in self.items:
                raise Ops5Error(
                    f"alpha memory node {self.id}: delete of WME t{wme.timetag} "
                    f"({wme.cls}) that it never stored -- network state is "
                    "corrupted"
                )
            del self.items[wme.timetag]
        event.outputs = 1
        self.net.note_affected(self.production_names)
        for successor in self.successors:
            successor.right_activate(wme, direction)
        self.net.finish_event(event)


# ---------------------------------------------------------------------------
# Beta network
# ---------------------------------------------------------------------------


class BetaMemory(ReteNode):
    """Stores the tokens matching a condition-element prefix.

    The *dummy top* beta memory (depth 0) permanently holds the empty
    token and never receives activations.
    """

    KIND = "bmem"

    __slots__ = ("items",)

    def __init__(self, net: "ReteNetwork", parent: Optional[ReteNode]) -> None:
        super().__init__(net)
        self.parent = parent
        self.items: dict[tuple, Token] = {}

    def left_activate(self, token: Token, direction: str) -> None:
        event = self.net.start_event(self, direction)
        if direction == ADD:
            self.items[token.key] = token
            self.net.count_token_built()
        else:
            token = self.items.pop(token.key)
        event.outputs = 1
        for child in self.children:
            child.left_activate(token, direction)
        self.net.finish_event(event)

    def populate_from_parent(self) -> None:
        """Build-time fill for a freshly created memory (quiet: no events)."""
        parent = self.parent
        if isinstance(parent, JoinNode):
            for token in parent.left_memory.items.values():
                for wme in parent.amem.items.values():
                    if parent.matches(token, wme):
                        child = Token(token, wme)
                        self.items[child.key] = child
        elif isinstance(parent, NegativeNode):
            for key, (token, count) in parent.stored.items():
                if count == 0:
                    child = Token(token, None)
                    self.items[child.key] = child
        elif parent is not None:  # pragma: no cover - builder invariant
            raise TypeError(f"beta memory under unexpected parent {parent!r}")


def _evaluate_join_tests(
    tests: tuple[JoinTest, ...], token: Token, wme: WME, own_ce: int
) -> bool:
    """Evaluate the cross-CE consistency tests for a candidate pair.

    ``own_ce`` is the LHS index of the CE this two-input node implements;
    a test whose ``other_ce`` equals it compares two fields of the
    candidate WME itself (an intra-CE predicate against a locally bound
    variable).
    """
    for test in tests:
        own_value = wme.get(test.own_attribute)
        other_wme = wme if test.other_ce == own_ce else token.wme_at(test.other_ce)
        if other_wme is None:  # pragma: no cover - validation forbids this
            return False
        if not test.predicate.apply(own_value, other_wme.get(test.other_attribute)):
            return False
    return True


class JoinNode(ReteNode):
    """A two-input node for a positive condition element.

    Left input: tokens from ``left_memory`` (the preceding beta memory).
    Right input: WMEs from ``amem``.  Emits extended tokens for every
    consistent pair.

    With ``indexed=True`` (the hashed-memory organisation studied in the
    PSM project's implementation work), the node keeps hash indexes over
    both inputs keyed by the equality-join values, so an activation
    probes a bucket instead of scanning the whole opposite memory.
    Non-equality (predicate) tests remain residual per-candidate checks.
    The conflict-set semantics are identical either way -- only the
    comparison counts (and therefore the modelled cost) change.
    """

    KIND = "join"

    __slots__ = (
        "left_memory",
        "amem",
        "tests",
        "ce_index",
        "eq_tests",
        "residual_tests",
        "indexed",
        "left_index",
        "right_index",
    )

    def __init__(
        self,
        net: "ReteNetwork",
        left_memory: BetaMemory,
        amem: AlphaMemory,
        tests: tuple[JoinTest, ...],
        ce_index: int,
        indexed: bool = False,
    ) -> None:
        super().__init__(net)
        self.left_memory = left_memory
        self.amem = amem
        self.tests = tests
        self.ce_index = ce_index
        # Equality tests against earlier CEs are hashable; intra-CE
        # predicates and ordering predicates stay residual.
        self.eq_tests = tuple(
            t
            for t in tests
            if t.predicate.name == "EQ" and t.other_ce != ce_index
        )
        self.residual_tests = tuple(t for t in tests if t not in self.eq_tests)
        self.indexed = indexed and bool(self.eq_tests)
        #: eq-key tuple -> {token.key: token} (left input index).
        self.left_index: dict[tuple, dict[tuple, Token]] = {}
        #: eq-key tuple -> {timetag: wme} (right input index).
        self.right_index: dict[tuple, dict[int, WME]] = {}
        self.rebuild_indexes()

    # Join keys intern symbol strings to dense ints (one dict probe on a
    # table that converges to the program's vocabulary), so bucket lookup
    # hashes and compares machine ints instead of strings.  Interned ids
    # could collide with genuine numeric values (id 5 vs the number 5),
    # and OPS5 equality makes 1 == 1.0 but never symbol == number, so the
    # key carries a bitmask of which positions hold interned symbols as
    # its final element: (id 5, mask bit set) never equals (number 5,
    # bit clear), while raw numbers keep Python's cross-type hash/eq.
    # Ids are process-local, so pickled indexed networks must call
    # ``rebuild_indexes`` after loading (see
    # ``ReteNetwork.rebuild_join_indexes``).

    def _token_key(self, token: Token) -> tuple:
        values = []
        mask = 0
        for i, test in enumerate(self.eq_tests):
            other = token.wme_at(test.other_ce)
            v = other.get(test.other_attribute) if other else None
            if type(v) is str:
                v = intern_id(v)
                mask |= 1 << i
            values.append(v)
        values.append(mask)
        return tuple(values)

    def _wme_key(self, wme: WME) -> tuple:
        values = []
        mask = 0
        for i, test in enumerate(self.eq_tests):
            v = wme.get(test.own_attribute)
            if type(v) is str:
                v = intern_id(v)
                mask |= 1 << i
            values.append(v)
        values.append(mask)
        return tuple(values)

    def rebuild_indexes(self) -> None:
        """Recompute both hash indexes from the backing memories.

        Called at construction, and again after unpickling a network in
        another process: index keys embed process-local intern ids, so a
        restored network's buckets must be rekeyed against the loading
        process's table before any activation probes them.
        """
        self.left_index.clear()
        self.right_index.clear()
        if not self.indexed:
            return
        for token in self.left_memory.items.values():
            self.left_index.setdefault(self._token_key(token), {})[
                token.key
            ] = token
        for wme in self.amem.items.values():
            self.right_index.setdefault(self._wme_key(wme), {})[
                wme.timetag
            ] = wme

    def matches(self, token: Token, wme: WME) -> bool:
        return _evaluate_join_tests(self.tests, token, wme, self.ce_index)

    def _residual_matches(self, token: Token, wme: WME) -> bool:
        return _evaluate_join_tests(self.residual_tests, token, wme, self.ce_index)

    def right_activate(self, wme: WME, direction: str) -> None:
        """A WME entered/left our alpha memory: pair with stored tokens."""
        event = self.net.start_event(self, direction, side="right")
        matched: list[Token] = []
        if self.indexed:
            key = self._wme_key(wme)
            if direction == ADD:
                self.right_index.setdefault(key, {})[wme.timetag] = wme
            else:
                bucket = self.right_index.get(key, {})
                bucket.pop(wme.timetag, None)
                if not bucket:
                    self.right_index.pop(key, None)
            event.comparisons += 1  # the hash probe
            for token in self.left_index.get(key, {}).values():
                event.comparisons += 1 if self.residual_tests else 0
                if self._residual_matches(token, wme):
                    matched.append(token)
        else:
            for token in self.left_memory.items.values():
                event.comparisons += 1
                if self.matches(token, wme):
                    matched.append(token)
        for token in matched:
            event.outputs += 1
            child_token = Token(token, wme)
            for child in self.children:
                child.left_activate(child_token, direction)
        self.net.finish_event(event)

    def left_activate(self, token: Token, direction: str) -> None:
        """A token entered/left our beta memory: pair with stored WMEs."""
        event = self.net.start_event(self, direction, side="left")
        matched: list[WME] = []
        if self.indexed:
            key = self._token_key(token)
            if direction == ADD:
                self.left_index.setdefault(key, {})[token.key] = token
            else:
                bucket = self.left_index.get(key, {})
                bucket.pop(token.key, None)
                if not bucket:
                    self.left_index.pop(key, None)
            event.comparisons += 1  # the hash probe
            for wme in self.right_index.get(key, {}).values():
                event.comparisons += 1 if self.residual_tests else 0
                if self._residual_matches(token, wme):
                    matched.append(wme)
        else:
            for wme in self.amem.items.values():
                event.comparisons += 1
                if self.matches(token, wme):
                    matched.append(wme)
        for wme in matched:
            event.outputs += 1
            child_token = Token(token, wme)
            for child in self.children:
                child.left_activate(child_token, direction)
        self.net.finish_event(event)


class NegativeNode(ReteNode):
    """A two-input node for a negated condition element.

    Stores each left token together with the count of WMEs currently
    blocking it.  A token flows downstream (extended with a ``None``
    entry to keep LHS positions aligned) exactly while its count is zero.
    """

    KIND = "neg"

    __slots__ = ("left_memory", "amem", "tests", "ce_index", "stored")

    def __init__(
        self,
        net: "ReteNetwork",
        left_memory: BetaMemory,
        amem: AlphaMemory,
        tests: tuple[JoinTest, ...],
        ce_index: int,
    ) -> None:
        super().__init__(net)
        self.left_memory = left_memory
        self.amem = amem
        self.tests = tests
        self.ce_index = ce_index
        #: token.key -> (token, number of blocking WMEs)
        self.stored: dict[tuple, tuple[Token, int]] = {}

    def matches(self, token: Token, wme: WME) -> bool:
        return _evaluate_join_tests(self.tests, token, wme, self.ce_index)

    def _propagate(self, token: Token, direction: str) -> int:
        child_token = Token(token, None)
        for child in self.children:
            child.left_activate(child_token, direction)
        return 1

    def left_activate(self, token: Token, direction: str) -> None:
        event = self.net.start_event(self, direction, side="left")
        if direction == ADD:
            count = 0
            for wme in self.amem.items.values():
                event.comparisons += 1
                if self.matches(token, wme):
                    count += 1
            self.stored[token.key] = (token, count)
            if count == 0:
                event.outputs += self._propagate(token, ADD)
        else:
            stored_token, count = self.stored.pop(token.key)
            if count == 0:
                event.outputs += self._propagate(stored_token, DELETE)
        self.net.finish_event(event)

    def right_activate(self, wme: WME, direction: str) -> None:
        event = self.net.start_event(self, direction, side="right")
        for key, (token, count) in list(self.stored.items()):
            event.comparisons += 1
            if not self.matches(token, wme):
                continue
            if direction == ADD:
                self.stored[key] = (token, count + 1)
                if count == 0:
                    # Newly blocked: retract the downstream match.
                    event.outputs += self._propagate(token, DELETE)
            else:
                self.stored[key] = (token, count - 1)
                if count == 1:
                    # Last blocker gone: the negation is now satisfied.
                    event.outputs += self._propagate(token, ADD)
        self.net.finish_event(event)

    def populate_from_parent(self) -> None:
        """Build-time fill (quiet): count blockers for existing tokens."""
        for token in self.left_memory.items.values():
            count = sum(1 for wme in self.amem.items.values() if self.matches(token, wme))
            self.stored[token.key] = (token, count)


class TerminalNode(ReteNode):
    """One per production: edits the conflict set.

    ``binding_specs`` lists (variable, ce_index, attribute) triples for
    each variable's first (positive-CE) binding site, so instantiations
    carry the bindings the RHS needs.
    """

    KIND = "term"

    __slots__ = ("production", "binding_specs")

    def __init__(
        self,
        net: "ReteNetwork",
        parent: BetaMemory,
        production: Production,
        binding_specs: tuple[tuple[str, int, str], ...],
    ) -> None:
        super().__init__(net)
        self.parent = parent
        self.production = production
        self.binding_specs = binding_specs

    def _instantiation(self, token: Token) -> Instantiation:
        bindings = {}
        for variable, ce_index, attribute in self.binding_specs:
            wme = token.wme_at(ce_index)
            assert wme is not None  # binding sites are positive CEs
            bindings[variable] = wme.get(attribute)
        return Instantiation(self.production, token.positive_wmes(), bindings)

    def left_activate(self, token: Token, direction: str) -> None:
        event = self.net.start_event(self, direction)
        event.production = self.production.name
        event.outputs = 1
        instantiation = self._instantiation(token)
        if direction == ADD:
            self.net.conflict_set.insert(instantiation)
        else:
            self.net.conflict_set.delete(instantiation)
        self.net.finish_event(event)

    def populate_from_parent(self) -> None:
        """Build-time fill (quiet): instantiate existing full matches."""
        for token in self.parent.items.values():
            self.net.conflict_set.insert(self._instantiation(token))
