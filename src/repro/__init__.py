"""Reproduction of Gupta, Forgy, Newell & Wedig (ISCA 1986):
"Parallel Algorithms and Architectures for Rule-Based Systems".

The library has four layers:

* :mod:`repro.ops5` -- the OPS5 production-system language: parser,
  working memory, conflict resolution, recognize--act engine;
* matchers -- :mod:`repro.rete` (instrumented, node-sharing Rete),
  :mod:`repro.treat` (alpha-state-only TREAT), :mod:`repro.naive`
  (non-state-saving reference);
* :mod:`repro.trace` + :mod:`repro.psim` -- node-activation traces, the
  instruction cost model, and the discrete-event multiprocessor
  simulator reproducing the paper's Section 6 evaluation;
* :mod:`repro.machines`, :mod:`repro.workloads`, :mod:`repro.analysis`
  -- the Section 7 architecture comparison, the calibrated workloads,
  and the Sections 3/4/8 measurements.

Quickstart::

    from repro.ops5 import ProductionSystem

    ps = ProductionSystem('''
      (p hello (greeting ^to <x>) --> (write hello <x>) (remove 1))
    ''')
    ps.add("greeting", to="world")
    print(ps.run().output)   # ['hello world']
"""

from .ops5 import ProductionSystem, Production, WME, parse_program
from .rete import ReteNetwork
from .treat import TreatMatcher
from .naive import NaiveMatcher
from .oflazer import CombinationMatcher
from .trace import CostModel, Trace, capture_trace
from .psim import MachineConfig, SimulationResult, simulate, sweep_processors

__version__ = "1.0.0"

__all__ = [
    "CombinationMatcher",
    "CostModel",
    "MachineConfig",
    "NaiveMatcher",
    "Production",
    "ProductionSystem",
    "ReteNetwork",
    "SimulationResult",
    "Trace",
    "TreatMatcher",
    "WME",
    "capture_trace",
    "parse_program",
    "simulate",
    "sweep_processors",
    "__version__",
]
