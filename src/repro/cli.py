"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run FILE``
    Execute an OPS5 program file (optionally with ``--wmes`` initial
    memory) and print its output and run statistics.
``demo NAME``
    Run one of the bundled programs (``hanoi``, ``blocks``, ``monkey``,
    ``eight-puzzle``, ``closure``).
``matchers``
    List the registered matcher backends and shard transports, with
    one-line descriptions from the engine registry.
``simulate``
    Generate a calibrated system workload (or capture one from a
    program file) and replay it on a configurable PSM.
``measure``
    Print Gupta-Forgy-style static and dynamic measurement tables for a
    program file or bundled demo.
``figures``
    Print the Figure 6-1 / 6-2 series for the six paper systems.
``compare``
    Print the Section 7 architecture comparison table.
``serve``
    Run the long-lived multi-session rule server (``docs/serve.md``).
``profile``
    Run a program under the observability recorder and export the
    timeline (Chrome trace / JSONL) plus the unified metrics snapshot
    (``docs/observability.md``).
``chaos``
    Run a demo on the parallel backend under a seeded fault plan
    (worker crashes/hangs) and verify the recovered run is bit-identical
    to the inline reference (``docs/fault-tolerance.md``).
``fuzz``
    Differential-fuzz every matcher backend with generated OPS5
    programs; mismatches are shrunk to minimal (ruleset, stream) pairs
    and written to a JSON report (``docs/workloads.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import render_series, render_table
from .ops5 import MATCHER_NAMES, Ops5Error, ProductionSystem, parse_wme_specs
from .psim import MachineConfig, simulate as run_simulation, sweep_processors
from .rete import ReteNetwork, collect_stats
from .trace import capture_trace, load_trace, save_trace
from .workloads import PAPER_SYSTEMS, generate_trace, profile_named
from .workloads.programs import ALL_PROGRAMS


def _build_matcher(args):
    """Construct the requested matcher through the engine registry.

    Every backend -- current and future -- goes through
    :func:`~repro.ops5.engine.matcher_named`; ``--workers`` and
    ``--transport`` are forwarded to the parallel backend (the only one
    that takes them).
    """
    from .serve.session import build_matcher

    return build_matcher(
        args.matcher,
        workers=getattr(args, "workers", None),
        transport=getattr(args, "transport", None),
    )


def _close_matcher(matcher) -> None:
    """Reap worker processes if the matcher owns any."""
    close = getattr(matcher, "close", None)
    if close is not None:
        close()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OPS5 engine + parallel Rete multiprocessor simulator "
        "(reproduction of Gupta et al., ISCA 1986)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute an OPS5 program file")
    run.add_argument("file", help="OPS5 source file")
    run.add_argument("--wmes", help="file of initial (class ^attr value ...) elements")
    run.add_argument("--matcher", choices=sorted(MATCHER_NAMES), default="rete")
    run.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for --matcher parallel (0 = inline)",
    )
    run.add_argument(
        "--transport", choices=["auto", "ring", "pipe", "local"], default=None,
        help="shard transport for --matcher parallel "
             "(auto = shared-memory ring when available)",
    )
    run.add_argument("--strategy", choices=["lex", "mea"], default="lex")
    run.add_argument("--max-cycles", type=int, default=None)
    run.add_argument("--stats", action="store_true", help="print match statistics")
    run.add_argument(
        "--verify", action="store_true",
        help="audit the matcher's internal state after the run "
             "(rete and compiled matchers)",
    )

    sub.add_parser(
        "matchers",
        help="list the registered matcher backends and shard transports",
    )

    demo = sub.add_parser("demo", help="run a bundled example program")
    demo.add_argument("name", choices=sorted(ALL_PROGRAMS))
    demo.add_argument("--matcher", choices=sorted(MATCHER_NAMES), default="rete")
    demo.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for --matcher parallel (0 = inline)",
    )
    demo.add_argument(
        "--transport", choices=["auto", "ring", "pipe", "local"], default=None,
        help="shard transport for --matcher parallel",
    )

    sim = sub.add_parser("simulate", help="replay a workload on the PSM model")
    source = sim.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--system", choices=[p.name for p in PAPER_SYSTEMS],
        help="one of the paper's calibrated systems",
    )
    source.add_argument("--file", help="capture a trace from an OPS5 program file")
    source.add_argument("--trace", help="replay a saved trace (JSON, see 'trace')")
    sim.add_argument("--wmes", help="initial memory for --file runs")
    sim.add_argument("--processors", type=int, default=32)
    sim.add_argument("--mips", type=float, default=2.0)
    sim.add_argument("--scheduler", choices=["hardware", "software"], default="hardware")
    sim.add_argument(
        "--granularity", choices=["node", "intra-node", "production"],
        default="intra-node",
    )
    sim.add_argument("--firing-batch", type=int, default=1)
    sim.add_argument("--firings", type=int, default=60, help="synthetic run length")
    sim.add_argument("--seed", type=int, default=42)
    sim.add_argument(
        "--gantt", action="store_true",
        help="render the schedule as a per-processor timeline",
    )

    measure = sub.add_parser(
        "measure", help="print measurement tables for a program"
    )
    measure_source = measure.add_mutually_exclusive_group(required=True)
    measure_source.add_argument("--file", help="OPS5 program file")
    measure_source.add_argument("--demo", choices=sorted(ALL_PROGRAMS))
    measure.add_argument("--wmes", help="initial memory for --file runs")
    measure.add_argument("--max-cycles", type=int, default=None)

    trace_cmd = sub.add_parser("trace", help="capture a run's trace to JSON")
    trace_source = trace_cmd.add_mutually_exclusive_group(required=True)
    trace_source.add_argument("--file", help="OPS5 program file")
    trace_source.add_argument(
        "--system", choices=[p.name for p in PAPER_SYSTEMS],
        help="generate a calibrated synthetic trace instead",
    )
    trace_cmd.add_argument("--wmes", help="initial memory for --file runs")
    trace_cmd.add_argument("--out", required=True, help="output JSON path")
    trace_cmd.add_argument("--firings", type=int, default=60)
    trace_cmd.add_argument("--seed", type=int, default=42)
    trace_cmd.add_argument("--max-cycles", type=int, default=None)

    figures = sub.add_parser("figures", help="print the Figure 6-1/6-2 series")
    figures.add_argument("--firings", type=int, default=40)
    figures.add_argument("--seed", type=int, default=42)

    sub.add_parser("compare", help="print the Section 7 architecture table")

    serve = sub.add_parser(
        "serve", help="run the multi-session rule server (see docs/serve.md)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7410,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--socket", help="listen on a unix socket instead")
    serve.add_argument(
        "--max-pending", type=int, default=None,
        help="per-session request-queue bound before backpressure (default 64)",
    )
    serve.add_argument(
        "--workers", type=int, default=0,
        help="run N worker servers behind a front-door router at the "
             "given address (0 = single server, no router)",
    )
    serve.add_argument(
        "--tenant-quota", type=int, default=None,
        help="max concurrent sessions per tenant (default: unlimited)",
    )
    serve.add_argument(
        "--processes", action="store_true",
        help="spawn the --workers as real OS processes under a durable "
             "supervisor: sessions survive worker SIGKILL via the "
             "write-ahead journal (see docs/fault-tolerance.md)",
    )
    serve.add_argument(
        "--durability-dir", default=None,
        help="journal + checkpoint directory for --processes "
             "(default: a temporary directory deleted on exit; name one "
             "to make sessions survive router restarts too)",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=16,
        help="checkpoint a session every N journaled ops under "
             "--processes (0 = journal-only replay)",
    )
    serve.add_argument(
        "--heartbeat-interval", type=float, default=0.5,
        help="seconds between worker liveness probes under --processes",
    )
    serve.add_argument(
        "--fsync", action="store_true",
        help="fsync the session journal before acknowledging each op "
             "under --processes (survives host power loss, not just "
             "worker death)",
    )
    serve.add_argument(
        "--commit-window", type=float, default=0.0,
        help="group-commit window in seconds for --fsync: batch journal "
             "fsyncs behind one barrier per window (0 = fsync every op)",
    )

    profile = sub.add_parser(
        "profile",
        help="run a program under the observability recorder "
             "(see docs/observability.md)",
    )
    profile_source = profile.add_mutually_exclusive_group(required=True)
    profile_source.add_argument("--file", help="OPS5 program file")
    profile_source.add_argument("--demo", choices=sorted(ALL_PROGRAMS))
    profile.add_argument("--wmes", help="initial memory for --file runs")
    profile.add_argument("--matcher", choices=sorted(MATCHER_NAMES), default="rete")
    profile.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for --matcher parallel (0 = inline)",
    )
    profile.add_argument(
        "--transport", choices=["auto", "ring", "pipe", "local"], default=None,
        help="shard transport for --matcher parallel",
    )
    profile.add_argument("--strategy", choices=["lex", "mea"], default="lex")
    profile.add_argument("--max-cycles", type=int, default=None)
    profile.add_argument(
        "--trace-out",
        help="write a Chrome trace-event JSON (open in https://ui.perfetto.dev)",
    )
    profile.add_argument(
        "--events-out", help="write the raw event timeline as JSONL"
    )
    profile.add_argument(
        "--metrics-out", help="write the unified metrics snapshot as JSON"
    )

    chaos = sub.add_parser(
        "chaos",
        help="run a demo under injected shard faults and verify the "
             "recovered run is bit-identical (see docs/fault-tolerance.md)",
    )
    chaos.add_argument("--demo", choices=sorted(ALL_PROGRAMS), default="closure")
    chaos.add_argument(
        "--workers", type=int, default=2,
        help="shard worker processes for the faulted run",
    )
    chaos.add_argument(
        "--transport", choices=["auto", "ring", "pipe", "local"], default="auto",
        help="shard transport for the faulted run (recovery must be "
             "bit-identical over either)",
    )
    chaos.add_argument(
        "--seed", type=int, default=42,
        help="derive the fault plan from this seed (reproducible)",
    )
    chaos.add_argument("--crashes", type=int, default=1,
                       help="worker crashes to schedule")
    chaos.add_argument("--hangs", type=int, default=1,
                       help="worker hangs to schedule")
    chaos.add_argument(
        "--horizon", type=int, default=16,
        help="fault positions are drawn from the first N batches per shard",
    )
    chaos.add_argument(
        "--collect-deadline", type=float, default=2.0,
        help="seconds of shard silence before declaring a hang",
    )
    chaos.add_argument(
        "--checkpoint-every", type=int, default=8,
        help="checkpoint a shard every N applied batches (0 = never)",
    )
    chaos.add_argument("--max-cycles", type=int, default=500)
    chaos.add_argument(
        "--with-compiled", action="store_true",
        help="add the compiled kernel (in Rete-oracle mode) as a third "
             "participant in the bit-identity comparison",
    )
    chaos.add_argument("--report-out", help="write the chaos report as JSON")
    chaos.add_argument(
        "--fleet", action="store_true",
        help="chaos the durable serve fleet instead of the shard pool: "
             "SIGKILL real worker OS processes (--crashes of them) under "
             "multitenant session load and verify every session recovers "
             "bit-identically from journal + checkpoint",
    )
    chaos.add_argument(
        "--sessions", type=int, default=6,
        help="concurrent sessions across three tenants (--fleet only)",
    )
    chaos.add_argument(
        "--rounds", type=int, default=6,
        help="assert+run rounds applied to every session (--fleet only)",
    )
    chaos.add_argument(
        "--heartbeat-interval", type=float, default=0.5,
        help="worker liveness probe period in seconds (--fleet only)",
    )
    chaos.add_argument(
        "--journal-dir", default=None,
        help="keep the fleet's journals + checkpoints in this directory "
             "instead of a temporary one (--fleet only; the CI artifact)",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="differential-fuzz all matcher backends with generated OPS5 "
             "programs and shrink any mismatch (see docs/workloads.md)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed; case i uses a seed derived from (seed, i)",
    )
    fuzz.add_argument(
        "--budget", type=float, default=60.0,
        help="wall-clock budget in seconds (generation + runs + shrinking)",
    )
    fuzz.add_argument(
        "--iterations", type=int, default=None,
        help="stop after N cases even if budget remains",
    )
    fuzz.add_argument(
        "--profile", default="default",
        help="generator profile: 'default' or a paper system "
             "(vt, ilog, mud, daa, r1-soar, ep-soar)",
    )
    fuzz.add_argument(
        "--workers", type=int, default=2,
        help="worker processes per parallel backend",
    )
    fuzz.add_argument(
        "--transports", default="pipe,ring,local",
        help="comma-separated parallel transports to include "
             "(ring is skipped with a note when unavailable)",
    )
    fuzz.add_argument("--max-cycles", type=int, default=40)
    fuzz.add_argument(
        "--shrink-attempts", type=int, default=250,
        help="shrink budget per counterexample",
    )
    fuzz.add_argument(
        "--case-seed", type=int, default=None,
        help="replay one case seed from a report (skips the campaign)",
    )
    fuzz.add_argument(
        "--report-out", help="write the fuzz report as JSON (the CI artifact)"
    )
    return parser


def _load_system(args, matcher) -> ProductionSystem:
    with open(args.file) as handle:
        source = handle.read()
    system = ProductionSystem(
        source,
        matcher=matcher,
        strategy=getattr(args, "strategy", "lex"),
    )
    if args.wmes:
        with open(args.wmes) as handle:
            system.load_memory(parse_wme_specs(handle.read()))
    return system


def _cmd_run(args) -> int:
    # The matcher is built first and reaped in ``finally`` so a worker
    # pool can never outlive an error in parsing, loading, or running.
    matcher = _build_matcher(args)
    try:
        system = _load_system(args, matcher)
        return _run_and_report(args, system)
    finally:
        _close_matcher(matcher)


def _run_and_report(args, system: ProductionSystem) -> int:
    result = system.run(args.max_cycles)
    for line in result.output:
        print(line)
    print(
        f"-- fired {result.fired} productions; {result.halt_reason}; "
        f"{len(system.memory)} elements in working memory"
    )
    if args.stats:
        stats = system.matcher.stats
        print(
            f"-- {stats.total_changes} wme-changes, "
            f"mean affected productions {stats.mean_affected_productions:.2f}, "
            f"{stats.total_comparisons} comparisons"
        )
        if isinstance(system.matcher, ReteNetwork):
            network = collect_stats(system.matcher)
            print(
                f"-- rete: {network.total_nodes} nodes, "
                f"sharing ratio {network.sharing_ratio:.2f}"
            )
    if args.verify:
        from .kernel.matcher import CompiledMatcher

        if isinstance(system.matcher, ReteNetwork):
            from .rete import check_network

            problems = check_network(system.matcher)
        elif isinstance(system.matcher, CompiledMatcher):
            from .kernel import check_kernel

            problems = check_kernel(system.matcher)
        else:
            print(
                "error: --verify requires a rete or compiled matcher",
                file=sys.stderr,
            )
            return 2
        if problems:
            for problem in problems:
                print(f"INCONSISTENT: {problem}", file=sys.stderr)
            return 1
        print("-- matcher state verified consistent")
    return 0


def _cmd_demo(args) -> int:
    module = ALL_PROGRAMS[args.name]
    matcher = _build_matcher(args)
    try:
        result = module.run(matcher=matcher)
    finally:
        _close_matcher(matcher)
    for line in result.output:
        print(line)
    print(f"-- fired {result.fired} productions; {result.halt_reason}")
    return 0


def _machine_from(args) -> MachineConfig:
    return MachineConfig(
        processors=args.processors,
        mips=args.mips,
        scheduler=args.scheduler,
        granularity=args.granularity,
        firing_batch=args.firing_batch,
    )


def _cmd_simulate(args) -> int:
    if args.system:
        trace = generate_trace(
            profile_named(args.system), seed=args.seed, firings=args.firings
        )
    elif args.trace:
        trace = load_trace(args.trace)
    else:
        with open(args.file) as handle:
            source = handle.read()
        setup = []
        if args.wmes:
            with open(args.wmes) as handle:
                setup = parse_wme_specs(handle.read())
        trace, _, _ = capture_trace(source, setup, name=args.file)
    result = run_simulation(
        trace, _machine_from(args), record_placements=args.gantt
    )
    print(result.summary())
    if args.gantt:
        from .psim import render_gantt

        print(render_gantt(result))
    print(
        f"   work: serial {result.serial_cost:,.0f} instr, executed "
        f"{result.executed_work:,.0f} (inflation {result.work_inflation:.2f}); "
        f"overheads: scheduling {result.scheduling_fraction:.1%}, "
        f"sync {result.sync_fraction:.1%}"
    )
    return 0


def _cmd_measure(args) -> int:
    from .analysis import measure_dynamic, measure_static
    from .ops5 import parse_program

    if args.demo:
        module = ALL_PROGRAMS[args.demo]
        name = args.demo
        productions = parse_program(module.PROGRAM).productions
        builder = module.build
    else:
        with open(args.file) as handle:
            source = handle.read()
        name = args.file
        program = parse_program(source)
        productions = program.productions
        setup = []
        if args.wmes:
            with open(args.wmes) as handle:
                setup = parse_wme_specs(handle.read())

        def builder(**kwargs):
            system = ProductionSystem(source, **kwargs)
            system.load_memory(setup)
            return system

    static = measure_static(productions, name)
    dynamic = measure_dynamic(builder, name, max_cycles=args.max_cycles)
    print(render_table(["static measurement", "value"], static.rows(), title=name))
    print()
    print(render_table(["dynamic measurement", "value"], dynamic.rows()))
    return 0


def _cmd_trace(args) -> int:
    if args.system:
        trace = generate_trace(
            profile_named(args.system), seed=args.seed, firings=args.firings
        )
    else:
        with open(args.file) as handle:
            source = handle.read()
        setup = []
        if args.wmes:
            with open(args.wmes) as handle:
                setup = parse_wme_specs(handle.read())
        trace, result, _ = capture_trace(
            source, setup, name=args.file, max_cycles=args.max_cycles
        )
        print(f"captured {result.fired} firings")
    save_trace(trace, args.out)
    print(
        f"wrote {args.out}: {trace.total_changes} changes, "
        f"{trace.total_tasks} tasks, serial cost {trace.serial_cost:,} instr"
    )
    return 0


def _cmd_figures(args) -> int:
    counts = [1, 2, 4, 8, 16, 32, 48, 64]
    concurrency: dict[str, list[float]] = {}
    speed: dict[str, list[float]] = {}
    for profile in PAPER_SYSTEMS:
        trace = generate_trace(profile, seed=args.seed, firings=args.firings)
        results = sweep_processors(trace, MachineConfig(), counts)
        concurrency[profile.name] = [r.concurrency for r in results]
        speed[profile.name] = [r.wme_changes_per_second for r in results]
    print(render_series("procs", counts, concurrency,
                        title="Figure 6-1: concurrency"))
    print()
    print(render_series("procs", counts, speed,
                        title="Figure 6-2: wme-changes/sec", precision=0))
    return 0


def _cmd_compare(args) -> int:
    from .machines import render_table as render_machines

    print(render_machines())
    return 0


def _cmd_profile(args) -> int:
    import json

    from .obs import (
        Recorder,
        consistency_problems,
        snapshot,
        write_chrome_trace,
        write_jsonl,
    )
    from .serve.session import build_matcher

    recorder = Recorder()
    matcher = build_matcher(
        args.matcher, workers=getattr(args, "workers", None), recorder=recorder
    )
    try:
        if args.demo:
            module = ALL_PROGRAMS[args.demo]
            system = module.build(matcher=matcher, recorder=recorder)
        else:
            with open(args.file) as handle:
                source = handle.read()
            system = ProductionSystem(
                source, matcher=matcher, strategy=args.strategy, recorder=recorder
            )
            if args.wmes:
                with open(args.wmes) as handle:
                    system.load_memory(parse_wme_specs(handle.read()))
        result = system.run(args.max_cycles)
        # Drain any ops still queued behind the cycle barrier so the
        # snapshot's engine and match sections count the same stream.
        flush = getattr(system.matcher, "flush", None)
        if flush is not None:
            flush()
        data = snapshot(system, recorder=recorder)
    finally:
        _close_matcher(matcher)

    print(
        f"-- fired {result.fired} productions; {result.halt_reason}; "
        f"recorded {len(recorder.events)} events"
    )
    problems = consistency_problems(data)
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"-- wrote metrics snapshot to {args.metrics_out}")
    if args.events_out:
        lines = write_jsonl(recorder.events, args.events_out)
        print(f"-- wrote {lines} events to {args.events_out}")
    if args.trace_out:
        thread_names = {0: "engine"}
        for event in recorder.events:
            if event.tid > 0:
                thread_names.setdefault(event.tid, f"shard {event.tid - 1}")
        rows = write_chrome_trace(
            recorder.events, args.trace_out, thread_names=thread_names
        )
        print(
            f"-- wrote {rows} trace rows to {args.trace_out} "
            "(open in https://ui.perfetto.dev)"
        )
    if problems:
        for problem in problems:
            print(f"INCONSISTENT: {problem}", file=sys.stderr)
        return 1
    engine = data["engine"]
    match = data["match"]
    print(
        f"-- metrics consistent: {engine['wme_changes']} wme-changes "
        f"(engine == matcher: {match['wme_changes']}), "
        f"{engine['firings']} firings over {engine['cycles']} cycles"
    )
    return 0


def _cmd_serve(args) -> int:
    from .serve import DEFAULT_MAX_PENDING, run_server

    max_pending = (
        args.max_pending if args.max_pending is not None else DEFAULT_MAX_PENDING
    )

    if args.processes:
        # Durable topology: N worker OS processes under a supervisor,
        # one router journaling every state-changing op so sessions
        # survive worker death (docs/fault-tolerance.md).
        import time as _time

        from .serve import ProcessRouterFleet

        workers = args.workers if args.workers and args.workers > 0 else 2
        try:
            with ProcessRouterFleet(
                workers=workers,
                durability_dir=args.durability_dir,
                checkpoint_every=args.checkpoint_every,
                heartbeat_interval=args.heartbeat_interval,
                max_pending=max_pending,
                fsync=args.fsync,
                commit_window=args.commit_window,
                host=args.host,
                port=args.port,
                unix_path=args.socket,
                default_tenant_quota=args.tenant_quota,
            ) as fleet:
                where = (
                    args.socket
                    if args.socket
                    else "%s:%s" % fleet.address
                )
                journals = fleet.durability.root
                print(
                    f"routing on {where} ({workers} process workers, "
                    f"journals in {journals})",
                    flush=True,
                )
                while True:
                    _time.sleep(3600)
        except KeyboardInterrupt:
            print("interrupted; fleet drained", file=sys.stderr)
        return 0

    if args.workers and args.workers > 0:
        # Scale-out topology: N in-process worker servers on ephemeral
        # ports, one router at the requested address fanning sessions
        # over them (docs/serve.md, "Multi-tenant scale-out").
        import time as _time

        from .serve import RouterFleet

        try:
            with RouterFleet(
                workers=args.workers,
                worker_kwargs={
                    "max_pending": max_pending,
                    "default_tenant_quota": args.tenant_quota,
                },
                host=args.host,
                port=args.port,
                unix_path=args.socket,
                default_tenant_quota=args.tenant_quota,
            ) as fleet:
                if args.socket:
                    print(f"routing on {args.socket} "
                          f"({args.workers} workers)", flush=True)
                else:
                    host, port = fleet.address
                    print(f"routing on {host}:{port} "
                          f"({args.workers} workers)", flush=True)
                while True:
                    _time.sleep(3600)
        except KeyboardInterrupt:
            print("interrupted; fleet drained", file=sys.stderr)
        return 0

    def announce(server) -> None:
        if server.unix_path:
            print(f"serving on {server.unix_path}", flush=True)
        else:
            print(f"serving on {server.host}:{server.port}", flush=True)

    try:
        run_server(
            host=args.host,
            port=args.port,
            unix_path=args.socket,
            max_pending=max_pending,
            announce=announce,
            default_tenant_quota=args.tenant_quota,
        )
    except KeyboardInterrupt:
        print("interrupted; sessions drained", file=sys.stderr)
    return 0


def _cmd_matchers(args) -> int:
    """List matcher backends and shard transports from the registries."""
    from .ops5.engine import MATCHER_DESCRIPTIONS
    from .parallel import ring_available

    print("matchers:")
    for name in MATCHER_NAMES:
        print(f"  {name:<13} {MATCHER_DESCRIPTIONS[name]}")
    print("transports (for --matcher parallel):")
    ring_note = "" if ring_available() else " [unavailable on this host]"
    print("  pipe          pickled duplex pipes (always available)")
    print(f"  ring          shared-memory SPSC byte rings{ring_note}")
    print("  local         thread shards sharing one compiled kernel "
          "(zero-copy, work stealing)")
    print("  auto          ring when available, else pipe")
    return 0


def _cmd_chaos(args) -> int:
    """Run a demo under injected faults; exit 0 iff bit-identical."""
    import json

    if args.fleet:
        return _cmd_chaos_fleet(args)

    from .faults import FaultPlan, run_chaos
    from .parallel import SupervisorConfig

    module = ALL_PROGRAMS[args.demo]
    try:
        plan = FaultPlan.seeded(
            args.seed,
            shards=max(1, args.workers),
            horizon=args.horizon,
            crashes=args.crashes,
            hangs=args.hangs,
        )
        config = SupervisorConfig(
            collect_deadline=args.collect_deadline,
            checkpoint_every=args.checkpoint_every or None,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for spec in plan.specs:
        print(f"-- scheduled {spec.kind} on shard {spec.index} at batch {spec.at}")
    report = run_chaos(
        module.PROGRAM,
        module.setup(),
        plan,
        workers=args.workers,
        supervisor=config,
        max_cycles=args.max_cycles,
        transport=args.transport,
        with_compiled=args.with_compiled,
    )
    if args.with_compiled:
        print("-- compiled kernel (oracle mode) joined the comparison")
    for event in report.recovery_events:
        print(
            f"-- shard {event['shard']} {event['cause']} at seq {event['seq']}: "
            f"{event['action']} after replaying {event['replayed_ops']} ops "
            f"in {event['replay_seconds'] * 1e3:.1f} ms"
            + (" (from checkpoint)" if event["used_checkpoint"] else "")
        )
    if not report.recovery_events:
        print("-- no scheduled fault fired (run ended before the horizon)")
    verdict = "bit-identical" if report.identical else "DIVERGED"
    print(
        f"-- faulted run ({report.transport} transport) vs inline reference: "
        f"{verdict} ({report.fired_cycles} cycles, halted={report.halted})"
    )
    for problem in report.divergences:
        print(f"--   {problem}")
    if args.report_out:
        with open(args.report_out, "w") as handle:
            json.dump(report.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"-- wrote chaos report to {args.report_out}")
    return 0 if report.identical else 1


def _cmd_chaos_fleet(args) -> int:
    """SIGKILL real worker processes under load; exit 0 iff no loss."""
    import json

    from .faults import fleet_chaos

    try:
        report = fleet_chaos(
            args.seed,
            workers=max(1, args.workers),
            sessions=args.sessions,
            rounds=args.rounds,
            kills=args.crashes,
            checkpoint_every=args.checkpoint_every,
            heartbeat_interval=args.heartbeat_interval,
            durability_dir=args.journal_dir,
            on_event=lambda line: print(f"-- {line}", flush=True),
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not report.kills:
        print("-- no kill scheduled (need rounds >= 2 and crashes >= 1)")
    for event in report.recovery_events:
        kind = event.get("type", "?")
        if kind in ("recovered", "resumed", "lost", "rolled"):
            extra = ""
            if kind == "recovered":
                via = (
                    "checkpoint + journal tail"
                    if event.get("used_checkpoint")
                    else "journal replay"
                )
                extra = f" ({event.get('replayed_ops', 0)} ops, {via})"
            print(f"-- session {event.get('session')}: {kind}{extra}")
        else:
            print(f"-- worker {event.get('worker')}: {kind}")
    verdict = "bit-identical" if report.identical else "DIVERGED"
    print(
        f"-- fleet run ({report.workers} process workers, "
        f"{report.sessions} sessions, {len(report.kills)} kills) vs inline "
        f"reference: {verdict}; recovered={len(report.recovered_sessions)} "
        f"lost={len(report.lost_sessions)} "
        f"reconnects={report.client_reconnects}"
    )
    for problem in report.divergences:
        print(f"--   {problem}")
    if report.durability:
        print(
            f"-- journal: {report.durability.get('appends', 0)} appends, "
            f"{report.durability.get('checkpoints', 0)} checkpoints, "
            f"{report.durability.get('bytes_appended', 0)} bytes"
        )
    if args.journal_dir:
        print(f"-- journals kept in {args.journal_dir}")
    if args.report_out:
        with open(args.report_out, "w") as handle:
            json.dump(report.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"-- wrote fleet chaos report to {args.report_out}")
    return 0 if report.ok else 1


def _cmd_fuzz(args) -> int:
    """Differential-fuzz the matcher fleet; exit 0 iff no mismatches."""
    import json

    from .workloads.generator import (
        FUZZ_PROFILES,
        MatcherFleet,
        case_from_seed,
        fuzz,
        run_case,
    )

    profile = FUZZ_PROFILES.get(args.profile)
    if profile is None:
        print(
            f"error: unknown profile {args.profile!r} "
            f"(choose from {', '.join(sorted(FUZZ_PROFILES))})",
            file=sys.stderr,
        )
        return 2
    transports = tuple(t.strip() for t in args.transports.split(",") if t.strip())

    if args.case_seed is not None:
        # Replay mode: one seed from a report, full source + verdict.
        case = case_from_seed(profile, args.case_seed)
        print(case.source())
        print()
        print(case.stream_text())
        with MatcherFleet(workers=args.workers, transports=transports) as fleet:
            for note in fleet.notes:
                print(f"-- {note}")
            outcome = run_case(case, fleet.backends(), max_cycles=args.max_cycles)
        if outcome.ok:
            print(f"-- case seed {args.case_seed}: all backends agree")
            return 0
        print(f"-- case seed {args.case_seed}: {outcome.kind}")
        for line in outcome.divergences():
            print(f"--   {line}")
        return 1

    def progress(iteration: int, outcome) -> None:
        if not outcome.ok:
            print(f"-- case {iteration} (seed {outcome.case.case_seed}): {outcome.kind}")

    report = fuzz(
        seed=args.seed,
        budget=args.budget,
        profile=profile,
        workers=args.workers,
        transports=transports,
        max_cycles=args.max_cycles,
        iterations=args.iterations,
        shrink_attempts=args.shrink_attempts,
        on_case=progress,
    )
    for note in report.notes:
        print(f"-- {note}")
    print(
        f"-- profile {report.profile}: {report.iterations} cases in "
        f"{report.elapsed:.1f}s across {len(report.backends)} backends "
        f"({', '.join(report.backends)})"
    )
    for counter in report.counterexamples:
        shrunk = counter.shrunk
        print(
            f"-- counterexample (case seed {counter.case_seed}, {counter.kind}): "
            f"shrunk to {len(shrunk.productions)} rule(s) / "
            f"{len(shrunk.stream)} op(s) in {counter.shrink_attempts} attempts"
        )
        for line in counter.divergences[:4]:
            print(f"--   {line}")
    if args.report_out:
        with open(args.report_out, "w") as handle:
            json.dump(report.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"-- wrote fuzz report to {args.report_out}")
    verdict = "no mismatches" if report.ok else f"{len(report.counterexamples)} mismatch(es)"
    print(f"-- verdict: {verdict}")
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "demo": _cmd_demo,
        "matchers": _cmd_matchers,
        "simulate": _cmd_simulate,
        "measure": _cmd_measure,
        "trace": _cmd_trace,
        "figures": _cmd_figures,
        "compare": _cmd_compare,
        "serve": _cmd_serve,
        "profile": _cmd_profile,
        "chaos": _cmd_chaos,
        "fuzz": _cmd_fuzz,
    }
    try:
        return handlers[args.command](args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except Ops5Error as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
