"""The production-system machine (PSM): this paper's proposal.

Thirty-two 2-MIPS processors on a shared bus with caches, private
memories, and a hardware task scheduler (Section 5).  Unlike the other
entries of the Section 7 comparison, the PSM's number is *ours to
measure*: :func:`measured_speed` runs the discrete-event simulator over
the six calibrated system workloads and averages -- the reproduction of
the paper's "average execution speed is 9400 wme-changes/sec".

:data:`PSM` is the same machine expressed in the uniform analytic model
(exploitable parallelism = the measured concurrency ~16, penalty = the
measured lost factor ~1.93), so the comparison table can be built with
or without running simulations.
"""

from __future__ import annotations

from ..psim.machine import MachineConfig
from ..psim.metrics import SimulationResult, average_speed
from ..psim.simulator import simulate
from ..workloads.profiles import PAPER_SYSTEMS
from ..workloads.synthetic import generate_trace
from .base import MachineModel

PSM = MachineModel(
    name="PSM (this paper)",
    algorithm="rete",
    processors=32,
    processor_mips=2.0,
    processor_bits=32,
    topology="shared-bus",
    exploitable_parallelism=16.3,
    implementation_penalty=1.93,
    published_speed=9400.0,
    notes="32 x 2 MIPS, hardware task scheduler; measured by this repo's simulator",
)


def measured_results(
    config: MachineConfig | None = None,
    seed: int = 42,
    firings: int = 80,
) -> list[SimulationResult]:
    """Simulate all six paper systems on the PSM; one result each."""
    machine = config or MachineConfig()
    return [
        simulate(generate_trace(profile, seed=seed, firings=firings), machine)
        for profile in PAPER_SYSTEMS
    ]


def measured_speed(
    config: MachineConfig | None = None, seed: int = 42, firings: int = 80
) -> float:
    """Average wme-changes/sec over the six systems (paper: 9400)."""
    return average_speed(measured_results(config, seed, firings))
