"""Simulating tree machines (DADO / NON-VON style) on our traces.

The Section 7 table quotes each machine's own published prediction; this
module goes further and *executes* our workload traces on a model of the
tree organisation, so the comparison no longer depends on quoted
numbers.

The model follows the DADO implementation the paper describes
(Section 7.1): the production system is split into P partitions; each
partition's Rete runs on a PM-level processing element with its
WM-subtree.  Per working-memory change:

1. the change is **broadcast** down the tree to every PM-level element
   (``tree_depth * broadcast_cost`` instruction units);
2. every partition processes *its* affected productions **serially** on
   its PE -- partition-level parallelism only, so the change's makespan
   is the *maximum* partition load, with each instruction stretched by
   the weak PE's ``datapath_penalty`` (8-bit ALUs on symbolic data,
   interpreted node programs);
3. results **funnel** back up for conflict resolution
   (``tree_depth * funnel_cost``).

Changes of one firing are processed sequentially (the tree organisation
has no equivalent of the PSM's parallel wme-changes -- the paper lists
that as one of its advantages).  Partitioning uses the oracle LPT
packing from :mod:`repro.psim.partition`, which flatters the tree
machines just as it flattered static partitioning.

With the published configurations (16 partitions of 0.5-MIPS 8-bit PEs
for DADO; 32 partitions of 3-MIPS PEs with a lighter penalty for
NON-VON), the simulated throughputs land near the cited 175 / 2000
wme-changes/sec (see ``bench_sec7_comparison.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..psim.partition import lpt_partition, production_costs
from ..trace.events import Trace


@dataclass(frozen=True)
class TreeMachineConfig:
    """A partitioned tree machine (the DADO organisation)."""

    name: str = "tree-machine"
    #: PM-level partitions (the paper: DADO used 16-32).
    partitions: int = 16
    #: Speed of one processing element, MIPS.
    pe_mips: float = 0.5
    #: Work inflation of the weak PEs relative to the cost model's
    #: wide-datapath instructions (8-bit ALUs, interpretation, small
    #: memories).
    datapath_penalty: float = 3.5
    #: Tree levels between the root and the PM level.
    tree_depth: int = 10  # a 16K-element binary tree
    #: Instruction units per level to broadcast a change down.
    broadcast_cost: float = 12.0
    #: Instruction units per level to funnel match results up.
    funnel_cost: float = 12.0

    def __post_init__(self) -> None:
        if self.partitions < 1:
            raise ValueError("need at least one partition")
        if self.pe_mips <= 0:
            raise ValueError("PE speed must be positive")
        if self.datapath_penalty < 1.0:
            raise ValueError("datapath penalty cannot be under 1.0")

    @property
    def communication_per_change(self) -> float:
        return self.tree_depth * (self.broadcast_cost + self.funnel_cost)


@dataclass
class TreeSimulationResult:
    """Throughput of one trace on one tree machine."""

    config: TreeMachineConfig
    trace_name: str
    makespan: float  # instruction units at 1 MIPS-equivalent
    total_changes: int
    total_firings: int
    busy_time: float
    communication_time: float

    @property
    def seconds(self) -> float:
        return self.makespan / (self.config.pe_mips * 1e6)

    @property
    def wme_changes_per_second(self) -> float:
        return self.total_changes / self.seconds if self.seconds else 0.0

    @property
    def firings_per_second(self) -> float:
        return self.total_firings / self.seconds if self.seconds else 0.0

    @property
    def partition_utilization(self) -> float:
        """Mean busy partitions during match (excludes communication)."""
        compute = self.makespan - self.communication_time
        return self.busy_time / compute if compute > 0 else 0.0


def simulate_tree(trace: Trace, config: TreeMachineConfig) -> TreeSimulationResult:
    """Execute *trace* on the partitioned tree machine model.

    Deterministic and closed-form per change: communication latency plus
    the maximum partition load, with partitions assigned once for the
    whole run by oracle LPT over total per-production costs.
    """
    assignment = lpt_partition(production_costs(trace), config.partitions)

    makespan = 0.0
    busy = 0.0
    communication = 0.0
    for firing in trace.firings:
        for change in firing.changes:
            loads = [0.0] * config.partitions
            shared = 0.0
            for task in change.tasks:
                if task.productions:
                    share = task.cost / len(task.productions)
                    for production in task.productions:
                        partition = assignment.get(production, 0)
                        loads[partition] += share * config.datapath_penalty
                else:
                    # Unattributed alpha work happens in every partition
                    # examining the change (replicated, like sharing loss
                    # under production parallelism).
                    shared += task.cost * config.datapath_penalty
            loads = [load + shared for load in loads]
            busy += sum(loads)
            makespan += config.communication_per_change + max(loads)
            communication += config.communication_per_change

    return TreeSimulationResult(
        config=config,
        trace_name=trace.name,
        makespan=makespan,
        total_changes=trace.total_changes,
        total_firings=len(trace.firings),
        busy_time=busy,
        communication_time=communication,
    )


#: DADO's prototype, as described in Section 7.1: 16 partitions on
#: 0.5-MIPS 8-bit PEs in a 16K-element tree.  Calibrated to land near
#: the cited 175 wme-changes/sec on the paper workloads.
DADO_TREE = TreeMachineConfig(
    name="DADO (simulated)",
    partitions=16,
    pe_mips=0.5,
    datapath_penalty=4.0,
    tree_depth=int(math.log2(16_384)),
)

#: NON-VON, Section 7.2: LPE/SPE organisation modelled as 32 partitions
#: of 3-MIPS elements with a lighter (but still 8-bit-SPE-bound)
#: penalty.  Calibrated to land near the cited 2000 wme-changes/sec.
NONVON_TREE = TreeMachineConfig(
    name="NON-VON (simulated)",
    partitions=32,
    pe_mips=3.0,
    datapath_penalty=2.6,
    tree_depth=int(math.log2(16_384)),
)
