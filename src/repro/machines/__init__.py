"""Architecture models for the paper's Section 7 comparison."""

from .base import MachineModel
from .comparison import (
    ALL_MACHINES,
    ComparisonRow,
    comparison_table,
    render_table,
    speed_ratios,
)
from .dado import DADO_RETE, DADO_TREAT
from .nonvon import NONVON
from .oflazer import OFLAZER, OFLAZER_SPEED_RANGE
from .pesa import PESA1
from .psm import PSM, measured_results, measured_speed
from .treesim import (
    DADO_TREE,
    NONVON_TREE,
    TreeMachineConfig,
    TreeSimulationResult,
    simulate_tree,
)

__all__ = [
    "ALL_MACHINES",
    "ComparisonRow",
    "DADO_RETE",
    "DADO_TREE",
    "DADO_TREAT",
    "MachineModel",
    "NONVON",
    "NONVON_TREE",
    "OFLAZER",
    "OFLAZER_SPEED_RANGE",
    "PESA1",
    "PSM",
    "TreeMachineConfig",
    "TreeSimulationResult",
    "comparison_table",
    "measured_results",
    "measured_speed",
    "render_table",
    "simulate_tree",
    "speed_ratios",
]
