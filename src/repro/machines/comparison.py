"""The Section 7 comparison: five architectures, one table.

Reproduces the paper's cross-machine throughput comparison:

==================  ==========================  ==================
machine             configuration               wme-changes/sec
==================  ==========================  ==================
DADO (Rete)         16K x 0.5 MIPS 8-bit, tree  175
DADO (TREAT)        16K x 0.5 MIPS 8-bit, tree  215
NON-VON             32 LPE + 16K SPE, 3 MIPS    2000
Oflazer's machine   512 x 5-10 MIPS, tree       4500-7000
PSM (this paper)    32 x 2 MIPS, shared bus     9400
PESA-1              dataflow                    (not published)
==================  ==========================  ==================

The qualitative conclusions the numbers support (Section 7.5): the
small-processor-count machines beat the massively parallel trees,
because intrinsic parallelism is small and thousands of weak processors
cannot individually be made fast; and the state-storing strategy
matters little on the highly parallel machines (DADO's Rete and TREAT
land within ~20% of each other).
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import MachineModel
from .dado import DADO_RETE, DADO_TREAT
from .nonvon import NONVON
from .oflazer import OFLAZER, OFLAZER_SPEED_RANGE
from .pesa import PESA1
from .psm import PSM

#: All Section 7 entries, slowest to fastest published prediction.
ALL_MACHINES: tuple[MachineModel, ...] = (
    DADO_RETE,
    DADO_TREAT,
    NONVON,
    OFLAZER,
    PSM,
    PESA1,
)


@dataclass(frozen=True)
class ComparisonRow:
    """One line of the Section 7 table."""

    machine: str
    algorithm: str
    processors: int
    processor_mips: float
    topology: str
    model_speed: float
    published_speed: float | None

    @property
    def published_label(self) -> str:
        if self.published_speed is None:
            return "not published"
        if self.machine.startswith("Oflazer"):
            low, high = OFLAZER_SPEED_RANGE
            return f"{low:.0f}-{high:.0f}"
        return f"{self.published_speed:.0f}"


def comparison_table(
    machines: tuple[MachineModel, ...] = ALL_MACHINES,
    serial_instructions_per_change: float = 1800.0,
) -> list[ComparisonRow]:
    """Model speeds next to the published predictions, paper order."""
    return [
        ComparisonRow(
            machine=m.name,
            algorithm=m.algorithm,
            processors=m.processors,
            processor_mips=m.processor_mips,
            topology=m.topology,
            model_speed=m.predicted_speed(serial_instructions_per_change),
            published_speed=m.published_speed,
        )
        for m in machines
    ]


def render_table(rows: list[ComparisonRow] | None = None) -> str:
    """A printable Section 7 table."""
    rows = rows if rows is not None else comparison_table()
    header = (
        f"{'machine':<20} {'alg':<13} {'procs':>7} {'MIPS':>5} "
        f"{'topology':<11} {'model':>8} {'published':>12}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.machine:<20} {row.algorithm:<13} {row.processors:>7} "
            f"{row.processor_mips:>5.1f} {row.topology:<11} "
            f"{row.model_speed:>8.0f} {row.published_label:>12}"
        )
    return "\n".join(lines)


def speed_ratios(rows: list[ComparisonRow] | None = None) -> dict[str, float]:
    """Each machine's model speed relative to the PSM (who-wins shape)."""
    rows = rows if rows is not None else comparison_table()
    psm = next(r for r in rows if r.machine.startswith("PSM"))
    return {r.machine: r.model_speed / psm.model_speed for r in rows}
