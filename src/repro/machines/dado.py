"""DADO (Columbia): a tree of sixteen thousand 8-bit processors.

Paper Section 7.1.  The prototype: Intel 8751-based processing elements
(4K EPROM, 256 B on-chip RAM, 8 KB external RAM) at ~0.5 MIPS, joined by
a custom binary-tree switch.  The production system is split into 16-32
partitions; each partition's Rete network runs on a PM-level element
whose WM-subtree performs associative matching below it.

Published predictions the models reproduce: **175 wme-changes/sec** with
the parallel Rete algorithm and **215 wme-changes/sec** with TREAT.

Calibration of the uniform model (see :mod:`repro.machines.base`):

* ``exploitable_parallelism = 2.5`` -- partition-level parallelism is a
  weak form of production parallelism; with ~30 affected productions
  spread unevenly over 16-32 partitions and high processing variance,
  the effective speed-up is small (the paper's Section 7.5 argument 1).
* ``implementation_penalty ~ 4.0 / 3.2`` -- 8-bit datapaths on symbolic
  data, interpreted node programs in 4K EPROM, and up-tree result
  funnelling (argument 2).  TREAT's penalty is lower: no beta-memory
  maintenance and dynamically re-ordered joins compensate for the
  recomputation, which is the paper's observation that on DADO the two
  algorithms perform about the same.
"""

from __future__ import annotations

from .base import MachineModel

DADO_RETE = MachineModel(
    name="DADO (Rete)",
    algorithm="rete",
    processors=16_000,
    processor_mips=0.5,
    processor_bits=8,
    topology="tree",
    exploitable_parallelism=2.5,
    implementation_penalty=3.97,
    published_speed=175.0,
    notes="16-32 partitions, PM-level + WM-subtree associative match",
)

DADO_TREAT = MachineModel(
    name="DADO (TREAT)",
    algorithm="treat",
    processors=16_000,
    processor_mips=0.5,
    processor_bits=8,
    topology="tree",
    exploitable_parallelism=2.5,
    implementation_penalty=3.23,
    published_speed=215.0,
    notes="alpha-only state; WM-subtree recomputes joins with dynamic ordering",
)
