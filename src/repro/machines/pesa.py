"""PESA-1 (Honeywell): a tagged dataflow processor for OPS5.

Paper Section 7.4.  Maps the Rete dataflow graph directly onto a
dataflow machine, with buses in known low-traffic areas and direct
paths elsewhere.  The paper could not obtain performance estimates
("at the time of this writing, accurate performance estimates ... are
not available") but speculates PESA-1 "should be able to achieve
similar performance levels" to the PSM, being the closest effort in
spirit.

The model therefore carries **no published speed**; ``predicted_speed``
uses parameters set to the paper's speculation (PSM-like effectiveness
on a dataflow substrate) and must be read as that speculation, not a
measurement -- ``published_speed`` stays ``None`` and the comparison
table marks the row accordingly.
"""

from __future__ import annotations

from .base import MachineModel

PESA1 = MachineModel(
    name="PESA-1",
    algorithm="dataflow-rete",
    processors=64,
    processor_mips=2.0,
    processor_bits=32,
    topology="dataflow",
    exploitable_parallelism=15.0,
    implementation_penalty=1.93,
    published_speed=None,
    notes="no published estimate; parameters encode the paper's 'similar to PSM' speculation",
)
