"""NON-VON (Columbia): a massively parallel tree with LPEs and SPEs.

Paper Section 7.2.  16,000+ small processing elements (SPEs, 32-256
bytes of memory each) form the tree; near the root each SPE is paired
with a large processing element (LPE) with real memory and a disk
interface.  LPEs can drive their SPE subtrees in multiple-SIMD mode.
Both PE classes run at ~3 MIPS.  The proposed OPS5 implementation is a
DADO-style partitioned Rete adapted to the tiny SPE memories.

Published prediction the model reproduces: **2000 wme-changes/sec**
(thirty-two 32-bit LPEs + sixteen thousand 8-bit SPEs at 3 MIPS).  The
paper attributes NON-VON's advantage over DADO partly to PEs being six
times faster.

Calibration: ``exploitable_parallelism = 4.0`` (the LPE/MSIMD
organisation extracts a bit more of the production-level parallelism
than DADO's static partitioning) and ``implementation_penalty = 3.33``
(8-bit SPEs, state squeezed into 32-256 byte memories, MSIMD lockstep).
"""

from __future__ import annotations

from .base import MachineModel

NONVON = MachineModel(
    name="NON-VON",
    algorithm="rete",
    processors=16_032,
    processor_mips=3.0,
    processor_bits=8,
    topology="tree",
    exploitable_parallelism=4.0,
    implementation_penalty=3.33,
    published_speed=2000.0,
    notes="32 LPEs + 16K SPEs, MSIMD; Rete state packed into 32-256 B SPEs",
)
