"""Oflazer's machine (CMU): a tree of a few hundred strong processors.

Paper Section 7.3.  Oflazer's thesis argues TREAT and Rete are both too
conservative: store tokens for *all* combinations of condition elements
so each change interacts with the old state fully independently.  The
proposed hardware: ~512 16-bit processors at 5-10 MIPS as tree leaves
with custom switches inside, productions statically partitioned onto
fixed leaf sets (the NP-complete partitioning problem the PSM bypasses
with shared memory).

Published prediction the model reproduces: **4500-7000 wme-changes/sec**
(midpoint 5750).

Calibration: ``exploitable_parallelism = 4.8`` -- larger than the tree
machines (powerful processors, finer state) but capped well below the
PSM because (paper's speculation) (1) extra processors are eaten by the
less conservative state-storing strategy, (2) the state-update scheme
adds garbage-collection overheads, and (3) multiple WME changes cannot
be processed in parallel.  ``implementation_penalty = 3.48`` folds in
the all-pairs state maintenance and its garbage collection.
"""

from __future__ import annotations

from .base import MachineModel

OFLAZER = MachineModel(
    name="Oflazer's machine",
    algorithm="all-pairs",
    processors=512,
    processor_mips=7.5,
    processor_bits=16,
    topology="tree",
    exploitable_parallelism=4.8,
    implementation_penalty=3.48,
    published_speed=5750.0,
    notes="state for all CE combinations; compile-time partitioning; no parallel wme changes",
)

#: The published range rather than its midpoint.
OFLAZER_SPEED_RANGE: tuple[float, float] = (4500.0, 7000.0)
