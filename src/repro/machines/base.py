"""The common throughput model for production-system machines.

Section 7 of the paper compares *predicted* throughputs quoted from the
machines' own papers.  To reproduce the comparison rather than just the
quotes, every machine here is described by one uniform analytic model::

    speed [wme-changes/sec] =
        exploitable_parallelism * processor_mips * 1e6
        / (serial_instructions_per_change * implementation_penalty)

* ``exploitable_parallelism`` -- the effective speed-up the architecture
  extracts from the workload's intrinsic parallelism.  It is bounded by
  the small number of affected productions (~30) and their processing
  variance, which is why tens of thousands of processors do not help
  (the paper's Section 7.5 argument (1)).
* ``implementation_penalty`` -- the work inflation of running the match
  on that hardware relative to an ideal serial Rete on a wide-datapath
  processor: 8-bit datapaths on symbolic data, interpretation overhead,
  tree communication, MSIMD lockstep, garbage collection of oversized
  state, etc.  (argument (2): weak processing elements).

``serial_instructions_per_change`` defaults to the paper's c1 = 1800.
The per-machine parameter values are calibrated so the model reproduces
each cited prediction; the calibration is part of each machine module's
documentation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.costmodel import C1_INSTRUCTIONS_PER_INSERT


@dataclass(frozen=True)
class MachineModel:
    """An architecture entry for the Section 7 comparison."""

    name: str
    #: Match algorithm the machine runs ("rete", "treat", "all-pairs",
    #: "dataflow-rete").
    algorithm: str
    #: Number of processing elements doing match work.
    processors: int
    #: Speed of one processing element, MIPS.
    processor_mips: float
    #: Datapath width of the match processors, bits.
    processor_bits: int
    #: Interconnect topology ("shared-bus", "tree", "dataflow").
    topology: str
    #: Effective parallel speed-up extracted from the workload.
    exploitable_parallelism: float
    #: Work-inflation factor relative to ideal serial Rete.
    implementation_penalty: float
    #: The throughput the machine's own paper predicts (wme-changes/sec);
    #: None when the source published no number (PESA-1).
    published_speed: float | None = None
    #: One-line provenance/assumption notes.
    notes: str = ""

    def predicted_speed(
        self, serial_instructions_per_change: float = C1_INSTRUCTIONS_PER_INSERT
    ) -> float:
        """Model throughput in wme-changes/sec."""
        return (
            self.exploitable_parallelism
            * self.processor_mips
            * 1e6
            / (serial_instructions_per_change * self.implementation_penalty)
        )

    def calibration_error(self) -> float | None:
        """Relative error of the model against the published prediction."""
        if self.published_speed is None:
            return None
        return abs(self.predicted_speed() - self.published_speed) / self.published_speed
