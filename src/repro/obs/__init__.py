"""Unified observability: tracing, metrics, and trace export.

The paper's whole argument rests on measurement -- per-node-activation
costs (Section 4), affected-production counts (Section 3), sustained
wme-changes/sec (Section 6) -- and so does every performance PR in this
repo.  This package is the single instrumentation substrate the live
layers share:

* :mod:`~repro.obs.recorder` -- the structured event/span recorder
  (near-zero cost when disabled) that the engine, the Rete network
  (via :class:`~repro.rete.instrument.RecorderListener`), the parallel
  executor, and the serve layer all report into;
* :mod:`~repro.obs.metrics` -- the versioned snapshot schema unifying
  :class:`~repro.ops5.matcher.MatchStats`,
  :class:`~repro.serve.stats.Telemetry`, and the Rete structural
  counters, with cross-section consistency checking;
* :mod:`~repro.obs.export` -- JSONL event logs and Chrome trace-event
  JSON (Perfetto-loadable) exporters.

Entry points: ``repro profile`` (CLI), the rule server's ``stats``
RPC, and ``benchmarks/bench_obs_overhead.py`` (the disabled-path
overhead guard).  See ``docs/observability.md``.
"""

from .export import (
    chrome_trace,
    event_to_chrome,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import SCHEMA, consistency_problems, engine_section, match_section, snapshot
from .recorder import NULL_RECORDER, Event, Recorder

__all__ = [
    "Event",
    "NULL_RECORDER",
    "Recorder",
    "SCHEMA",
    "chrome_trace",
    "consistency_problems",
    "engine_section",
    "event_to_chrome",
    "match_section",
    "read_jsonl",
    "snapshot",
    "write_chrome_trace",
    "write_jsonl",
]
