"""Exporters: the recorder's timeline as JSONL and Chrome trace JSON.

Two formats, two audiences:

* **JSONL** (:func:`write_jsonl` / :func:`read_jsonl`) -- one event per
  line, lossless, trivially greppable and streamable; the format for
  archiving a run or feeding downstream analysis.
* **Chrome trace-event JSON** (:func:`chrome_trace` /
  :func:`write_chrome_trace`) -- the ``{"traceEvents": [...]}`` format
  read by Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.
  Recorder lanes (``tid``) become named trace threads, so a parallel
  run opens as a real per-shard schedule -- the measured counterpart of
  the psim ASCII Gantt (:func:`repro.psim.render_gantt`), side by side
  for predicted-vs-measured comparison.

Timestamps: recorder events carry integer nanoseconds; the trace-event
format wants microseconds, so exported ``ts``/``dur`` are floats in us.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping, Optional

from .recorder import Event, PH_COMPLETE, PH_INSTANT

#: pid stamped on exported events (one process timeline per file).
_PID = 1


def event_to_chrome(event: Event, pid: int = _PID) -> dict:
    """One recorder event as a Chrome trace-event dict."""
    row: dict = {
        "name": event.name,
        "cat": event.cat or "repro",
        "ph": event.ph,
        "ts": event.ts / 1000.0,
        "pid": pid,
        "tid": event.tid,
    }
    if event.ph == PH_COMPLETE:
        row["dur"] = event.dur / 1000.0
    elif event.ph == PH_INSTANT:
        row["s"] = "t"  # thread-scoped instant
    if event.args:
        row["args"] = dict(event.args)
    return row


def chrome_trace(
    events: Iterable[Event],
    thread_names: Optional[Mapping[int, str]] = None,
    process_name: str = "repro",
) -> dict:
    """The full trace document for *events*.

    ``thread_names`` maps recorder lanes (tids) to display names --
    e.g. ``{0: "coordinator", 1: "shard 0"}``.  Unnamed lanes render by
    number; Perfetto sorts threads by the ``thread_sort_index`` we emit
    alongside, keeping the coordinator lane on top.
    """
    rows: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for tid, name in sorted((thread_names or {}).items()):
        rows.append(
            {"name": "thread_name", "ph": "M", "pid": _PID, "tid": tid, "args": {"name": name}}
        )
        rows.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    rows.extend(event_to_chrome(event) for event in events)
    return {"traceEvents": rows, "displayTimeUnit": "ms"}


def write_chrome_trace(
    events: Iterable[Event],
    path: str,
    thread_names: Optional[Mapping[int, str]] = None,
    process_name: str = "repro",
) -> int:
    """Write the Chrome trace JSON for *events*; returns the row count."""
    document = chrome_trace(events, thread_names=thread_names, process_name=process_name)
    with open(path, "w") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return len(document["traceEvents"])


def write_jsonl(events: Iterable[Event], path: str) -> int:
    """Write one JSON object per event line; returns the line count."""
    count = 0
    with open(path, "w") as handle:
        for event in events:
            row: dict = {
                "name": event.name,
                "cat": event.cat,
                "ph": event.ph,
                "ts": event.ts,
                "dur": event.dur,
                "tid": event.tid,
            }
            if event.args:
                row["args"] = dict(event.args)
            handle.write(json.dumps(row))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> list[Event]:
    """Load a JSONL event log back into :class:`Event` rows."""
    events: list[Event] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            events.append(
                Event(
                    name=row["name"],
                    cat=row.get("cat", ""),
                    ph=row.get("ph", PH_INSTANT),
                    ts=row.get("ts", 0),
                    dur=row.get("dur", 0),
                    tid=row.get("tid", 0),
                    args=row.get("args"),
                )
            )
    return events
