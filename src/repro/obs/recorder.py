"""The structured event/span recorder at the heart of ``repro.obs``.

Every live layer of the system -- the engine's recognize--act cycle,
the Rete network's node activations, the parallel executor's shard
batches, the serve layer's request lifecycle -- reports into one
:class:`Recorder`, producing a single timeline that the exporters
(:mod:`repro.obs.export`) can turn into a JSONL event log or a Chrome
trace-event file for Perfetto.

Design constraints, in order:

1. **Near-zero cost when disabled.**  The paper's numbers (50-100
   instructions per node activation, Section 4) mean instrumentation
   overhead is a first-class correctness concern: a recorder that taxes
   the disabled path would corrupt every future measurement.  A
   disabled recorder's methods return after a single attribute check,
   ``span`` hands back one shared no-op context manager, and genuinely
   hot paths (per-activation, per-WME-change) guard with
   ``if recorder.enabled:`` so the disabled cost is one branch.
   ``benchmarks/bench_obs_overhead.py`` pins this down.
2. **One clock.**  All timestamps come from ``time.perf_counter_ns``
   relative to the recorder's epoch, so events recorded by different
   layers (and externally timed spans handed in via :meth:`complete`)
   land on one coherent timeline.
3. **Plain data out.**  Events are small dataclasses; exporters and
   tests consume them directly, no parsing.

Threads: one recorder instance is meant to be fed from one thread (or
from call sites that are already serialised, like a session's worker
thread).  Cross-process layers (the parallel shards) are timed from the
coordinator side instead of shipping clocks across processes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: Event phases, mirroring the Chrome trace-event vocabulary:
#: ``X`` = complete (has a duration), ``i`` = instant.
PH_COMPLETE = "X"
PH_INSTANT = "i"


@dataclass
class Event:
    """One recorded event on the observability timeline.

    ``ts`` and ``dur`` are integer nanoseconds relative to the owning
    recorder's epoch (``dur`` is 0 for instants).  ``tid`` is a logical
    lane: 0 for the main engine/coordinator thread, ``1 + shard`` for
    parallel shard batches -- the exporters turn lanes into Chrome
    trace threads so a parallel run renders as a real shard schedule.
    """

    name: str
    cat: str
    ph: str
    ts: int
    dur: int = 0
    tid: int = 0
    args: Optional[dict] = None


class _NullSpan:
    """The shared no-op context manager handed out while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: times ``with`` entry to exit, then records."""

    __slots__ = ("_recorder", "name", "cat", "tid", "args", "_start")

    def __init__(self, recorder: "Recorder", name: str, cat: str, tid: int, args: dict) -> None:
        self._recorder = recorder
        self.name = name
        self.cat = cat
        self.tid = tid
        self.args = args

    def __enter__(self) -> "_Span":
        self._start = self._recorder._elapsed()
        return self

    def __exit__(self, *exc_info) -> bool:
        recorder = self._recorder
        recorder.events.append(
            Event(
                name=self.name,
                cat=self.cat,
                ph=PH_COMPLETE,
                ts=self._start,
                dur=recorder._elapsed() - self._start,
                tid=self.tid,
                args=self.args or None,
            )
        )
        return False


@dataclass
class Recorder:
    """Collects :class:`Event` rows; a no-op when ``enabled`` is False.

    Usage::

        rec = Recorder()
        with rec.span("cycle", "engine", production="expand"):
            ...
        rec.instant("wm:add", "wm", wme_class="goal", timetag=7)
        events = rec.drain()

    Call sites on hot paths should guard with ``if rec.enabled:`` so
    the disabled configuration costs exactly one attribute check.
    """

    enabled: bool = True
    clock: Callable[[], int] = time.perf_counter_ns
    events: list[Event] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.epoch = self.clock()

    # -- time ----------------------------------------------------------------

    def now(self) -> int:
        """The raw clock, for call sites that time work themselves and
        hand the result to :meth:`complete` (same clock, one timeline)."""
        return self.clock()

    def _elapsed(self) -> int:
        return self.clock() - self.epoch

    # -- recording -----------------------------------------------------------

    def span(self, name: str, cat: str = "", tid: int = 0, **args: Any):
        """A context manager timing its body as one complete event."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, tid, args)

    def instant(self, name: str, cat: str = "", tid: int = 0, **args: Any) -> None:
        """Record a point-in-time event."""
        if not self.enabled:
            return
        self.events.append(
            Event(name=name, cat=cat, ph=PH_INSTANT, ts=self._elapsed(), tid=tid, args=args or None)
        )

    def complete(
        self,
        name: str,
        cat: str = "",
        *,
        start: int,
        duration: int,
        tid: int = 0,
        args: Optional[dict] = None,
    ) -> None:
        """Record an externally timed span.

        ``start`` is a raw :meth:`now` value (or any reading of the
        recorder's clock -- e.g. the Rete network's own activation
        timestamps); ``duration`` is in nanoseconds.
        """
        if not self.enabled:
            return
        self.events.append(
            Event(
                name=name,
                cat=cat,
                ph=PH_COMPLETE,
                ts=start - self.epoch,
                dur=duration,
                tid=tid,
                args=args,
            )
        )

    # -- access ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def drain(self) -> list[Event]:
        """Hand over (and clear) the recorded events."""
        events, self.events = self.events, []
        return events


#: The process-wide disabled recorder: layers that were not given a
#: recorder point here, so instrumentation call sites never need a
#: None check -- only the cheap ``enabled`` check.
NULL_RECORDER = Recorder(enabled=False)
