"""The unified metrics snapshot: one schema for every counter source.

Before this module existed the repo had three unrelated counter piles:
:class:`~repro.ops5.matcher.MatchStats` (per-change match effort),
:class:`~repro.serve.stats.Telemetry` (request/latency counters), and
the Rete network's structural counters (sharing, node kinds).  Each
grew its own ad-hoc reporting; none cross-checked the others.  This
module folds them into **one** JSON-ready snapshot under a versioned
schema, used identically by the ``stats`` RPC of the rule server, the
``repro profile`` CLI, and the tests that pin the counters against each
other.

Snapshot shape (sections appear when their source exists)::

    {
      "schema": "repro.metrics/1",
      "engine":   {"cycles", "firings", "wme_changes", "halted",
                   "working_memory", "output_lines"},
      "match":    {"wme_changes", "comparisons", "tokens_built",
                   "mean_affected_productions", "mean_node_activations"},
      "rete":     {"nodes", "nodes_by_kind", "sharing_ratio",
                   "alpha_wmes", "beta_tokens"},
      "parallel": {"workers", "shards", "productions_per_shard",
                   "shard_weights", "degraded_shards"},
      "faults":   {"crashes", "hangs", "respawns", "demotions",
                   "checkpoints", "replayed_ops", "replay_seconds",
                   "checkpoint_seconds", "events", ...},
      "transport": {"kind", "dispatches", "eager_dispatches",
                   "frames_sent", "bytes_sent", "frames_received",
                   "bytes_received", "pickle_fallbacks", "ring_stalls",
                   "mean_dispatch_latency_us", "symbols", ...},
      "kernel":   {"compiles", "ruleset_digest", "stores", "store_rows",
                   "columns", "subscriptions", "replayed_wmes", "oracle",
                   "cache"},
      "scheduler": {"workers", "grain", "tasks_executed", "tasks_helped",
                   "fast_batches", "steals", "epochs", "epoch_waits",
                   "max_queue_depth", "queue_depths"},
      "serve":    Telemetry.snapshot(),
      "recorder": {"enabled", "events"},
    }

The load-bearing invariant -- checked by :func:`consistency_problems`
and asserted by ``repro profile`` -- is that ``engine.wme_changes``
(counted by the engine as it routes changes) equals
``match.wme_changes`` (counted by the matcher as it processes them).
The paper's argument is measurement; a snapshot whose own sections
disagree is worse than none.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..ops5.matcher import MatchStats

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps layering one-way
    from ..ops5.engine import ProductionSystem
    from ..serve.stats import Telemetry
    from .recorder import Recorder

#: Version tag carried by every snapshot; bump on breaking shape changes.
SCHEMA = "repro.metrics/1"


def match_section(stats: MatchStats) -> dict:
    """The MatchStats rollup: total and per-change match effort."""
    return {
        "wme_changes": stats.total_changes,
        "comparisons": stats.total_comparisons,
        "tokens_built": stats.total_tokens_built,
        "mean_affected_productions": stats.mean_affected_productions,
        "mean_node_activations": stats.mean_node_activations,
    }


def engine_section(system: "ProductionSystem") -> dict:
    """The engine's own counters for the recognize--act loop."""
    return {
        "cycles": system.cycle,
        "firings": system.total_firings,
        "wme_changes": system.total_wme_changes,
        "halted": system.halted,
        "working_memory": len(system.memory),
        "output_lines": len(system.output),
    }


def _matcher_sections(matcher) -> dict:
    """Backend-specific sections (imports deferred: obs must not force
    every matcher package into memory just to report on one)."""
    sections: dict[str, dict] = {}
    from ..rete.network import ReteNetwork

    if isinstance(matcher, ReteNetwork):
        from ..rete.stats import collect_stats

        stats = collect_stats(matcher)
        sections["rete"] = {
            "nodes": stats.total_nodes,
            "nodes_by_kind": dict(stats.nodes_by_kind),
            "sharing_ratio": stats.sharing_ratio,
            "alpha_wmes": stats.alpha_wmes,
            "beta_tokens": stats.beta_tokens,
        }
        return sections

    from ..kernel.matcher import CompiledMatcher

    if isinstance(matcher, CompiledMatcher):
        # Codegen rollup: compiles, cache hit/miss, store shape, and the
        # structural digest identifying the generated kernel.
        sections["kernel"] = matcher.kernel_summary()
        return sections

    try:
        from ..parallel.executor import ParallelMatcher
    except ImportError:  # pragma: no cover - parallel is always present
        return sections
    if isinstance(matcher, ParallelMatcher):
        partitions = matcher.partition_snapshot()
        sections["parallel"] = {
            "workers": matcher.workers,
            "shards": len(partitions),
            "productions_per_shard": [len(p.productions) for p in partitions],
            "shard_weights": [p.weight for p in partitions],
            "degraded_shards": [p.index for p in partitions if p.degraded],
        }
        # Supervision rollup: failure/recovery counters, replay and
        # checkpoint timings, recent recovery events.  Reading it does
        # not flush (it is coordinator-side bookkeeping only).
        sections["faults"] = matcher.fault_summary()
        # Dispatch-path rollup: frames/bytes per direction, pickle
        # fallbacks, ring stall episodes, intern-table size, and the
        # per-dispatch latency the batching is trying to amortise.
        sections["transport"] = matcher.transport_summary()
        # Shared-memory backend only: the work-stealing scheduler's
        # counters (steals, helped tasks, fast-path batches, epoch
        # waits, live queue depths).  Like every section here the read
        # is side-effect free -- it never advances the epoch barrier.
        scheduler = matcher.scheduler_summary()
        if scheduler is not None:
            sections["scheduler"] = scheduler
    return sections


def snapshot(
    system: "ProductionSystem",
    telemetry: Optional["Telemetry"] = None,
    recorder: Optional["Recorder"] = None,
) -> dict:
    """The unified metrics snapshot for one engine (plus optional serve
    telemetry and recorder status).

    Side-effect free: matcher statistics are read through
    :meth:`~repro.ops5.matcher.Matcher.peek_stats`, which never triggers
    the parallel executor's flush barrier -- safe to call from the
    server's event loop while the session's worker thread is matching.
    """
    data: dict = {
        "schema": SCHEMA,
        "engine": engine_section(system),
        "match": match_section(system.matcher.peek_stats()),
    }
    data.update(_matcher_sections(system.matcher))
    if telemetry is not None:
        data["serve"] = telemetry.snapshot()
    if recorder is not None:
        data["recorder"] = {"enabled": recorder.enabled, "events": len(recorder.events)}
    return data


def consistency_problems(data: dict) -> list[str]:
    """Cross-check a snapshot's sections against each other.

    Returns a list of human-readable mismatch descriptions (empty when
    the snapshot is internally consistent).  The engine and the matcher
    count the same stream of working-memory changes from opposite ends;
    any disagreement means a layer dropped or double-counted work.
    """
    problems: list[str] = []
    engine = data.get("engine", {})
    match = data.get("match", {})
    if engine.get("wme_changes") != match.get("wme_changes"):
        problems.append(
            f"engine counted {engine.get('wme_changes')} wme-changes but the "
            f"matcher recorded {match.get('wme_changes')}"
        )
    if engine.get("firings", 0) < engine.get("cycles", 0):
        problems.append(
            f"engine.firings ({engine.get('firings')}) fell behind "
            f"engine.cycles ({engine.get('cycles')})"
        )
    serve = data.get("serve")
    if serve is not None and serve.get("firings", 0) > engine.get("firings", 0):
        problems.append(
            f"serve telemetry reports {serve.get('firings')} firings but the "
            f"engine only executed {engine.get('firings')}"
        )
    return problems
