"""Kernel verification: store invariants plus a one-shot Rete check.

:func:`check_kernel` is the compiled counterpart of the Rete
``check_network`` hook used by ``repro run --verify``: it audits the
columnar stores against the WM mirror (membership, column/row
consistency, encoded values) and then replays the whole session through
a fresh node-walking :class:`~repro.rete.ReteNetwork`, comparing
conflict sets.  It returns a list of human-readable problems -- empty
means the kernel state is exactly what the interpreted Rete would hold.
"""

from __future__ import annotations

from .layout import encode_value
from .matcher import CompiledMatcher

__all__ = ["check_kernel"]


def check_kernel(matcher: CompiledMatcher) -> list[str]:
    """Audit a compiled matcher's state; return problem descriptions."""
    problems: list[str] = []
    runtime = matcher.runtime
    wmes = matcher.current_wmes()
    if runtime is not None:
        by_tag = {w.timetag: w for w in wmes}
        for index, store in enumerate(runtime.stores):
            for timetag, wme in store.rows.items():
                if by_tag.get(timetag) is not wme:
                    problems.append(
                        f"store {index}: row {timetag} is not the WM mirror's WME"
                    )
                if store.predicate is not None and not store.predicate(wme):
                    problems.append(
                        f"store {index}: row {timetag} fails its alpha predicate"
                    )
            for attr, col in store.cols.items():
                if col.keys() != store.rows.keys():
                    problems.append(
                        f"store {index}: column {attr!r} keys diverge from rows"
                    )
                    continue
                for timetag, encoded in col.items():
                    expected = encode_value(store.rows[timetag].get(attr))
                    if encoded != expected:
                        problems.append(
                            f"store {index}: column {attr!r} row {timetag} "
                            f"holds {encoded}, expected {expected}"
                        )
            for wme in wmes:
                if wme.cls != store.cls or wme.timetag in store.rows:
                    continue
                if store.predicate is None or store.predicate(wme):
                    problems.append(
                        f"store {index}: WME {wme.timetag} passes the alpha "
                        "tests but is missing from the store"
                    )

    # One-shot differential check against the node-walking Rete.
    from ..rete.network import ReteNetwork

    reference = ReteNetwork()
    for production in matcher.productions:
        reference.add_production(production)
    for wme in wmes:
        reference.add_wme(wme)
    ours = matcher.conflict_set.snapshot()
    theirs = reference.conflict_set.snapshot()
    if ours != theirs:
        missing = sorted(theirs - ours)
        extra = sorted(ours - theirs)
        problems.append(
            f"conflict set diverges from Rete: missing={missing[:5]!r} "
            f"extra={extra[:5]!r}"
        )
    return problems
