"""The compiled matcher: drives generated kernels behind the Matcher ABC.

:class:`CompiledMatcher` is a drop-in peer of the interpreted matchers
(``matcher_named("compiled")``).  It keeps the canonical WM mirror and
production list, compiles the ruleset on demand (cached by structural
fingerprint, see ``kernel/cache.py``), and dispatches each WME change to
the generated subscriber closures.

Rebuild policy
--------------
The kernel is compiled lazily: production edits only mark the matcher
dirty while working memory is empty (the common case -- a program loads
all productions, then WMEs arrive), so loading N productions costs one
compile, not N.  The immutable half (codegen, ``compile()``, module
``exec``) lives in the process-wide :mod:`~repro.kernel.shared`
registry, so a rebuild on an already-seen ruleset shape is just a fresh
:class:`~repro.kernel.runtime.KernelRuntime` attach -- closure
construction plus WM replay, zero codegen.  Once WMEs exist, a production edit rebuilds
immediately -- the engine may inspect the conflict set right after --
by clearing the conflict set and replaying the WM mirror through the
fresh kernel in timetag order.  Replay is *quiet*: no per-change stats
rows, and per-change counter deltas are snapshotted after the rebuild,
so measurements reflect only real WM traffic (the interpreted Rete's
``add_production`` folds existing WM the same way).

Deletion is two-phase: every store's delete subscribers run while the
rows and columns still hold the dying WME (retraction re-builds token
keys from the columns of *all* constituent WMEs, including the dying
one), then the rows drop.

Oracle mode
-----------
``CompiledMatcher(oracle=True)`` shadows every mutation through a
node-walking :class:`~repro.rete.ReteNetwork` and compares conflict-set
snapshots after each change, raising :class:`~repro.ops5.errors.Ops5Error`
on the first divergence -- the differential harness the fuzz fleet and
chaos harness lean on.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..obs.recorder import NULL_RECORDER, Recorder
from ..ops5.errors import Ops5Error
from ..ops5.matcher import ChangeRecord, Matcher
from ..ops5.production import Production
from ..ops5.wme import WME
from .cache import CompiledRuleset, cache_stats
from .runtime import KernelRuntime
from .shared import SharedKernel, shared_kernel, shared_kernel_stats

__all__ = ["CompiledMatcher", "KernelRuntime"]


class CompiledMatcher(Matcher):
    """Matcher backed by per-ruleset generated code (see package docs)."""

    def __init__(
        self,
        oracle: bool = False,
        recorder: Optional[Recorder] = None,
    ) -> None:
        super().__init__()
        self._recorder = recorder or NULL_RECORDER
        self._productions: dict[str, Production] = {}
        self._wmes: dict[int, WME] = {}
        self._rt: Optional[KernelRuntime] = None
        self._kernel: Optional[SharedKernel] = None
        self._dirty = True
        self._compiles = 0
        self._replayed = 0
        self._oracle = None
        if oracle:
            from ..rete.network import ReteNetwork

            self._oracle = ReteNetwork()

    # -- production edits -------------------------------------------------

    def add_production(self, production: Production) -> None:
        if production.name in self._productions:
            raise Ops5Error(f"production {production.name!r} is already registered")
        self._productions[production.name] = production
        self._after_ruleset_edit(lambda: self._oracle.add_production(production))

    def remove_production(self, name: str) -> None:
        if name not in self._productions:
            raise Ops5Error(f"unknown production {name!r}")
        del self._productions[name]
        self._after_ruleset_edit(lambda: self._oracle.remove_production(name))

    def _after_ruleset_edit(self, shadow) -> None:
        if self._oracle is not None:
            shadow()
        if self._wmes:
            # The engine may read the conflict set before the next WME
            # change, so fold the edit in now.
            self._rebuild()
            if self._oracle is not None:
                self._check_oracle("production edit")
        else:
            self._dirty = True

    # -- WME changes -------------------------------------------------------

    def add_wme(self, wme: WME) -> None:
        self._ensure_compiled()
        self._wmes[wme.timetag] = wme
        counters = self._rt.counters
        base = tuple(counters)
        affected: set[str] = set()
        for store in self._rt.by_class.get(wme.cls, ()):
            predicate = store.predicate
            if predicate is None or predicate(wme):
                store.insert(wme)
                affected |= store.production_names
                for fn in store.add_subs:
                    fn(wme)
        self._record("add", wme, affected, base)
        if self._oracle is not None:
            self._oracle.add_wme(wme)
            self._check_oracle(f"add of {wme!r}")

    def remove_wme(self, wme: WME) -> None:
        timetag = wme.timetag
        if timetag not in self._wmes:
            raise Ops5Error(f"WME {wme!r} was never added")
        self._ensure_compiled()
        counters = self._rt.counters
        base = tuple(counters)
        affected: set[str] = set()
        hit = [s for s in self._rt.by_class.get(wme.cls, ()) if timetag in s.rows]
        # Phase 1: propagate retraction while columns still hold the WME.
        for store in hit:
            affected |= store.production_names
            for fn in store.del_subs:
                fn(wme)
        # Phase 2: drop rows and columns.
        for store in hit:
            store.remove(wme)
        del self._wmes[timetag]
        self._record("remove", wme, affected, base)
        if self._oracle is not None:
            self._oracle.remove_wme(wme)
            self._check_oracle(f"remove of {wme!r}")

    def _record(
        self, kind: str, wme: WME, affected: set[str], base: tuple
    ) -> None:
        counters = self._rt.counters
        self.stats.record(
            ChangeRecord(
                kind=kind,
                wme_class=wme.cls,
                affected_productions=len(affected),
                node_activations=counters[0] - base[0],
                comparisons=counters[1] - base[1],
                tokens_built=counters[2] - base[2],
            )
        )

    # -- compilation -------------------------------------------------------

    def _ensure_compiled(self) -> None:
        if self._dirty:
            self._rebuild()

    def _rebuild(self) -> None:
        productions = list(self._productions.values())
        with self._recorder.span(
            "kernel:compile",
            cat="kernel",
            productions=len(productions),
            wmes=len(self._wmes),
        ):
            # Process-wide immutable half: codegen + compile() + module
            # exec happen at most once per ruleset shape, in the shared
            # registry.  This call is a pure lookup on the warm path.
            kernel = shared_kernel(productions)
            self.conflict_set.clear()
            # Per-session mutable half: fresh closures over the shared
            # code object, then a quiet O(WM) replay from the mirror --
            # no per-change stats rows, counter deltas absorbed below.
            self._rt = kernel.attach(
                self.conflict_set,
                productions,
                (self._wmes[t] for t in sorted(self._wmes)),
            )
            self._kernel = kernel
            self._compiles += 1
            self._dirty = False
            self._replayed += len(self._wmes)

    # -- oracle ------------------------------------------------------------

    def _check_oracle(self, context: str) -> None:
        ours = self.conflict_set.snapshot()
        reference = self._oracle.conflict_set.snapshot()
        if ours != reference:
            missing = sorted(reference - ours)
            extra = sorted(ours - reference)
            raise Ops5Error(
                "compiled kernel diverged from Rete oracle after "
                f"{context}: missing={missing[:5]!r} extra={extra[:5]!r} "
                f"(ruleset {self._kernel.digest if self._kernel else '?'})"
            )

    # -- introspection -----------------------------------------------------

    @property
    def productions(self) -> Iterable[Production]:
        return list(self._productions.values())

    def current_wmes(self) -> list[WME]:
        """The WM mirror, in timetag order (verify hooks)."""
        return [self._wmes[t] for t in sorted(self._wmes)]

    @property
    def runtime(self) -> Optional[KernelRuntime]:
        """The live built kernel state, or None before first compile."""
        return self._rt

    @property
    def _ruleset(self) -> Optional[CompiledRuleset]:
        """The cache entry behind the current kernel (back-compat)."""
        return self._kernel.ruleset if self._kernel else None

    @property
    def shared(self) -> Optional[SharedKernel]:
        """The process-wide kernel this session is attached to."""
        return self._kernel

    @property
    def generated_source(self) -> Optional[str]:
        """Source of the current kernel (debugging / docs examples)."""
        return self._kernel.ruleset.source if self._kernel else None

    def state_size(self) -> int:
        """Rows across all stores (parity with ReteNetwork.state_size)."""
        if self._rt is None:
            return 0
        return self._rt.state_size()

    def kernel_summary(self) -> dict:
        """The ``kernel`` section of the unified metrics snapshot."""
        runtime = self._rt
        return {
            "compiles": self._compiles,
            "ruleset_digest": self._kernel.digest if self._kernel else None,
            "stores": len(runtime.stores) if runtime else 0,
            "store_rows": sum(len(s) for s in runtime.stores) if runtime else 0,
            "columns": sum(len(s.cols) for s in runtime.stores) if runtime else 0,
            "subscriptions": runtime.subscriptions if runtime else 0,
            "replayed_wmes": self._replayed,
            "oracle": self._oracle is not None,
            "cache": cache_stats(),
            "shared": shared_kernel_stats(),
        }
