"""Per-session kernel state: the mutable half of a compiled ruleset.

A compiled ruleset splits in two (ROADMAP item 3, the multi-tenant
serve story):

* the **immutable artifact** -- generated source, code object, exec'd
  ``build`` function -- lives process-wide in
  :class:`~repro.kernel.shared.SharedKernel`, built once per ruleset
  *shape* and shared by every session running it;
* the **mutable state** -- :class:`~repro.kernel.layout.AlphaStore`
  rows/columns, the beta index dicts the generated closures capture,
  blocker counts, and the conflict-set edits -- lives here, one
  :class:`KernelRuntime` per session.

Attaching a session to a warm kernel therefore costs closure
construction (one ``build`` call over the already-compiled code object)
plus a working-memory replay -- never codegen, ``compile()``, or module
``exec``.  Each runtime's stores and index dicts are private: sessions
share the code, never the state, which is the copy-on-write discipline
that keeps thousands of concurrent sessions isolated.
"""

from __future__ import annotations

from typing import Iterable

from ..ops5.production import Instantiation, Production
from ..ops5.wme import WME, is_number, same_type, values_equal
from .layout import AlphaStore

__all__ = ["KernelRuntime"]


def _eqn(a, b) -> bool:
    """``a == b`` where *b* is a numeric constant (symbols never match)."""
    return is_number(a) and a == b


def _lt(a, b) -> bool:
    return is_number(a) and is_number(b) and a < b


def _le(a, b) -> bool:
    return is_number(a) and is_number(b) and a <= b


def _gt(a, b) -> bool:
    return is_number(a) and is_number(b) and a > b


def _ge(a, b) -> bool:
    return is_number(a) and is_number(b) and a >= b


def _anyeq(a, values) -> bool:
    """OPS5 disjunction ``<< v1 v2 ... >>`` membership."""
    for v in values:
        if values_equal(a, v):
            return True
    return False


class KernelRuntime:
    """Everything a generated ``build(rt)`` needs, plus the built state.

    The generated module binds the helper functions and conflict-set
    editors to locals once per build; ``store``/``subscribe`` are called
    during build to materialise the columnar memories and register the
    per-CE right-activation closures.
    """

    __slots__ = ("counters", "cs_insert", "cs_delete", "instantiation",
                 "productions", "stores", "by_class", "subscriptions")

    # Comparison helpers, shared by every generated kernel.
    veq = staticmethod(values_equal)
    same = staticmethod(same_type)
    num = staticmethod(is_number)
    eqn = staticmethod(_eqn)
    lt = staticmethod(_lt)
    le = staticmethod(_le)
    gt = staticmethod(_gt)
    ge = staticmethod(_ge)
    anyeq = staticmethod(_anyeq)

    def __init__(self, conflict_set, productions: list[Production]) -> None:
        #: [node activations, comparisons, tokens built] -- the generated
        #: code increments these; the matcher snapshots deltas per change.
        self.counters = [0, 0, 0]
        self.cs_insert = conflict_set.insert
        self.cs_delete = conflict_set.delete_key
        self.instantiation = Instantiation
        #: Positional production list, in codegen order.
        self.productions = productions
        self.stores: list[AlphaStore] = []
        self.by_class: dict[str, list[AlphaStore]] = {}
        self.subscriptions = 0

    def store(
        self,
        index: int,
        cls: str,
        columns: tuple[str, ...],
        predicate,
        production_names: tuple[str, ...],
    ) -> AlphaStore:
        assert index == len(self.stores)
        store = AlphaStore(cls, columns, predicate, frozenset(production_names))
        self.stores.append(store)
        self.by_class.setdefault(cls, []).append(store)
        return store

    def subscribe(self, store: AlphaStore, add_fn, del_fn) -> None:
        store.add_subs.append(add_fn)
        store.del_subs.append(del_fn)
        self.subscriptions += 1

    def replay(self, wmes: Iterable[WME]) -> int:
        """Feed existing WMEs (in timetag order) into the fresh state.

        This is the O(working-memory) half of a session attach: stores
        fill, join indexes build, and the conflict set re-derives --
        quietly, with no per-change stats rows (the caller snapshots
        counter deltas around the whole replay).
        """
        count = 0
        for wme in wmes:
            for store in self.by_class.get(wme.cls, ()):
                predicate = store.predicate
                if predicate is None or predicate(wme):
                    store.insert(wme)
                    for fn in store.add_subs:
                        fn(wme)
            count += 1
        return count

    def state_size(self) -> int:
        """Rows across all stores (parity with ReteNetwork.state_size)."""
        return sum(len(s) for s in self.stores)
