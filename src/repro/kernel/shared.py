"""Process-wide shared kernels: build once, attach per session.

The serve layer's scaling premise (ROADMAP item 3) is that millions of
users run the *same* rulesets, so the expensive artifacts of a compiled
ruleset -- codegen, ``compile()``, module ``exec`` -- should be paid
once per process, not once per session.  :func:`shared_kernel` is that
registry: it resolves a production list to a :class:`SharedKernel`
through the structural-fingerprint cache (``kernel/cache.py``) and
exec's the generated module exactly once, keeping the resulting
``build`` function for every later attach.

``SharedKernel.attach`` then materialises a private
:class:`~repro.kernel.runtime.KernelRuntime` for one session: closure
construction over the pre-compiled code plus an O(working-memory)
replay.  The N-th session of a ruleset performs **zero** codegen --
``tests/kernel/test_shared.py`` pins that with the cache-hit counters,
and the multi-tenant serve benchmark measures it end to end.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

from ..ops5.production import Production
from ..ops5.wme import WME
from .cache import CompiledRuleset, compiled_ruleset
from .runtime import KernelRuntime

__all__ = ["SharedKernel", "clear_shared_kernels", "shared_kernel", "shared_kernel_stats"]


class SharedKernel:
    """The immutable, process-wide half of one compiled ruleset.

    Holds the cache entry (fingerprint, source, code object) plus the
    exec'd ``build`` function.  Everything here is stateless with
    respect to sessions: attaching never mutates the kernel beyond the
    attach counter, and two runtimes attached to one kernel share no
    mutable match state.
    """

    __slots__ = ("ruleset", "build_fn", "attaches", "_lock")

    def __init__(self, ruleset: CompiledRuleset) -> None:
        self.ruleset = ruleset
        namespace: dict = {}
        exec(ruleset.code, namespace)  # noqa: S102 - our own codegen
        self.build_fn = namespace["build"]
        #: Runtimes ever built from this kernel (sessions + rebuilds).
        self.attaches = 0
        self._lock = threading.Lock()

    @property
    def digest(self) -> str:
        return self.ruleset.digest

    def attach(
        self,
        conflict_set,
        productions: Sequence[Production],
        wmes: Iterable[WME] = (),
    ) -> KernelRuntime:
        """Build one session's private match state on this kernel.

        *wmes* (timetag order) are replayed into the fresh runtime, so
        the cost of this call is closure construction plus O(|wmes|) --
        no codegen, no ``compile()``, no module ``exec``.
        """
        runtime = KernelRuntime(conflict_set, list(productions))
        self.build_fn(runtime)
        runtime.replay(wmes)
        with self._lock:
            self.attaches += 1
        return runtime

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedKernel({self.digest}, attaches={self.attaches})"


_KERNELS: dict[str, SharedKernel] = {}
_LOCK = threading.Lock()
_EXECS = 0


def shared_kernel(productions: Sequence[Production]) -> SharedKernel:
    """The (cached) process-wide kernel for *productions*.

    Resolution goes through :func:`~repro.kernel.cache.compiled_ruleset`
    -- so structurally identical rulesets, even under different
    production names, land on one kernel -- and the generated module is
    exec'd at most once per kernel per process.
    """
    global _EXECS
    ruleset = compiled_ruleset(productions)
    kernel = _KERNELS.get(ruleset.digest)
    if kernel is not None:
        return kernel
    with _LOCK:
        kernel = _KERNELS.get(ruleset.digest)
        if kernel is None:
            kernel = SharedKernel(ruleset)
            _KERNELS[ruleset.digest] = kernel
            _EXECS += 1
        return kernel


def shared_kernel_stats() -> dict:
    """Process-wide registry counters (metrics ``kernel.shared`` block).

    ``execs`` counts generated-module executions -- the last per-session
    cost the registry eliminates -- and ``attaches`` total runtimes ever
    built; ``attaches - execs`` is therefore the number of warm,
    codegen-free session attaches this process has served.
    """
    with _LOCK:
        return {
            "kernels": len(_KERNELS),
            "execs": _EXECS,
            "attaches": sum(k.attaches for k in _KERNELS.values()),
        }


def clear_shared_kernels() -> None:
    """Drop the registry and its counters (test isolation)."""
    global _EXECS
    with _LOCK:
        _KERNELS.clear()
        _EXECS = 0
