"""Rete-to-Python codegen: one generated module per ruleset.

:func:`generate_source` turns a production list into the source of a
single ``build(rt)`` function.  Executing the compiled module and
calling ``build`` with a :class:`~repro.kernel.matcher.KernelRuntime`
materialises the whole match network as *closures over local dicts*:

* one fused alpha predicate per distinct (class, alpha tests) store;
* per production, a linear join chain -- for condition element ``i`` a
  left index ``li`` (join key -> {left key -> token}), a right index
  ``ri`` (join key -> {timetag -> WME}), and for negated CEs a blocker
  count ``nc`` (left key -> int);
* a terminal that edits the conflict set directly.

Join keys are tuples (or bare ints) of encoded column values read
straight out of the :class:`~repro.kernel.layout.AlphaStore` columns --
one dict probe per component, no string hashing, no method dispatch.
Tokens are plain tuples of WMEs (``None`` at negated positions) and
left keys are the matching timetag tuples (``0`` at negated positions),
the same identity the interpreted Rete's ``Token.key`` uses, so the
terminal's conflict-set keys are bit-identical to the oracle's.

The generated source contains *no* production names, no symbol-table
ids, and no RHS data: constants are embedded by ``repr``, productions
are looked up positionally from the runtime at build time, and values
are encoded only when WMEs arrive.  Compiling therefore never touches
the intern table, and two structurally identical rulesets -- even under
different production names -- share one code object (see
``kernel/cache.py``).

Correctness notes (mirroring the node-walking Rete):

* Exactly-once pairing when one WME feeds several CEs of a production:
  each CE's right entry inserts into its own ``ri`` bucket and probes
  the opposite ``li`` within the same call, so whichever of the two
  subscriber calls runs second forms the pair -- no Doorenbos
  descendants-first ordering is needed.
* Deletion is rematch-style: the delete path probes the same indexes
  and re-evaluates residual tests, exactly like ``JoinNode``.
* Negated CEs keep a per-left-token blocker count, like
  ``NegativeNode``: 0 -> 1 retracts the downstream token, 1 -> 0
  re-propagates it.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..ops5.condition import (
    CEAnalysis,
    ConstantTest,
    DisjunctiveTest,
    JoinTest,
    Predicate,
    PredicateTest,
)
from ..ops5.errors import Ops5Error
from ..ops5.production import Production

__all__ = ["StorePlan", "alpha_items", "generate_source", "plan_stores"]

_ORDERING = {
    Predicate.LT: "_lt",
    Predicate.LE: "_le",
    Predicate.GT: "_gt",
    Predicate.GE: "_ge",
}


# ---------------------------------------------------------------------------
# Alpha planning: canonical test items and store sharing
# ---------------------------------------------------------------------------


def alpha_items(analysis: CEAnalysis) -> tuple:
    """Canonical, typed, hashable form of one CE's single-WME tests.

    Typed on purpose: ``repr`` alone would conflate ``5`` with ``"5"``
    (both render as ``5`` in OPS5 constant tests), and the generated
    predicate for the two differs.
    """
    items: list[tuple] = []
    for attr, test in analysis.alpha_tests:
        if isinstance(test, ConstantTest):
            items.append(("const", attr, type(test.value).__name__, test.value))
        elif isinstance(test, DisjunctiveTest):
            items.append(
                ("disj", attr, tuple((type(v).__name__, v) for v in test.values))
            )
        elif isinstance(test, PredicateTest):
            operand = test.operand
            assert isinstance(operand, ConstantTest)  # variable operands are joins
            items.append(
                (
                    "pred",
                    attr,
                    test.predicate.value,
                    type(operand.value).__name__,
                    operand.value,
                )
            )
        else:  # pragma: no cover - analyze_lhs is exhaustive
            raise Ops5Error(f"unsupported alpha test {test!r}")
    for attr_a, attr_b in analysis.intra_tests:
        items.append(("intra", attr_a, attr_b))
    # repr-keyed sort: deterministic over mixed value types.
    return tuple(sorted(items, key=repr))


class StorePlan:
    """One shared alpha store: class, fused tests, columns, subscribers."""

    __slots__ = ("index", "cls", "items", "columns", "production_names")

    def __init__(self, index: int, cls: str, items: tuple) -> None:
        self.index = index
        self.cls = cls
        self.items = items
        #: Attributes any subscriber's join keys read, in first-need order.
        self.columns: list[str] = []
        self.production_names: list[str] = []

    def need_column(self, attr: str) -> int:
        """Register *attr* as a column; return its column index."""
        try:
            return self.columns.index(attr)
        except ValueError:
            self.columns.append(attr)
            return len(self.columns) - 1


def _split_tests(analysis: CEAnalysis) -> tuple[list[JoinTest], list[JoinTest]]:
    """(hash-indexable equality tests, residual tests) for one CE.

    Equality against an *earlier* CE's binding is indexable; everything
    else (ordering/NE/SAME_TYPE predicates, and any test whose comparand
    lives on the candidate WME itself) is evaluated per probed pair --
    the same split ``JoinNode`` makes.
    """
    eq: list[JoinTest] = []
    residual: list[JoinTest] = []
    for jt in analysis.join_tests:
        if jt.predicate is Predicate.EQ and jt.other_ce != analysis.index:
            eq.append(jt)
        else:
            residual.append(jt)
    return eq, residual


def plan_stores(
    productions: Sequence[Production],
) -> tuple[list[StorePlan], dict[tuple[int, int], StorePlan]]:
    """Shared-store layout: plans plus a (production, ce) -> plan map."""
    plans: list[StorePlan] = []
    by_sig: dict[tuple, StorePlan] = {}
    use: dict[tuple[int, int], StorePlan] = {}
    for p_idx, production in enumerate(productions):
        for analysis in production.analysis:
            sig = (analysis.ce.cls, alpha_items(analysis))
            plan = by_sig.get(sig)
            if plan is None:
                plan = StorePlan(len(plans), analysis.ce.cls, sig[1])
                plans.append(plan)
                by_sig[sig] = plan
            if production.name not in plan.production_names:
                plan.production_names.append(production.name)
            use[(p_idx, analysis.index)] = plan
    # Column needs: every equality join key component, both sides.
    for p_idx, production in enumerate(productions):
        for analysis in production.analysis:
            eq, _residual = _split_tests(analysis)
            own = use[(p_idx, analysis.index)]
            for jt in eq:
                own.need_column(jt.own_attribute)
                use[(p_idx, jt.other_ce)].need_column(jt.other_attribute)
    return plans, use


# ---------------------------------------------------------------------------
# Expression fragments
# ---------------------------------------------------------------------------


def _const_eq(attr: str, type_name: str, value) -> str:
    if type_name == "str":
        # A symbol constant: plain == is complete (a number never equals
        # a str, matching values_equal's symbol/number separation).
        return f"g({attr!r}) == {value!r}"
    return f"_eqn(g({attr!r}), {value!r})"


def _alpha_part(item: tuple) -> str:
    kind = item[0]
    if kind == "const":
        _, attr, type_name, value = item
        return _const_eq(attr, type_name, value)
    if kind == "disj":
        _, attr, typed_values = item
        listing = ", ".join(repr(v) for _t, v in typed_values)
        return f"_anyeq(g({attr!r}), ({listing},))"
    if kind == "pred":
        _, attr, op, type_name, value = item
        numeric = type_name != "str"
        if op == "=":
            return _const_eq(attr, type_name, value)
        if op == "<>":
            if numeric:
                return f"not _eqn(g({attr!r}), {value!r})"
            return f"g({attr!r}) != {value!r}"
        if op == "<=>":
            return f"_num(g({attr!r}))" if numeric else f"not _num(g({attr!r}))"
        # Ordering predicate: a symbolic constant operand can never
        # match (Predicate.apply requires both sides numeric).
        if not numeric:
            return "False"
        helper = _ORDERING[Predicate(op)]
        return f"{helper}(g({attr!r}), {value!r})"
    _, attr_a, attr_b = item
    return f"_veq(g({attr_a!r}), g({attr_b!r}))"


def _alpha_expr(items: tuple) -> str:
    return " and ".join(_alpha_part(item) for item in items)


def _residual_expr(
    residual: Sequence[JoinTest], ce_index: int, own: Callable[[str], str]
) -> str:
    """The per-pair test chain; *own* renders a candidate-WME access."""
    parts: list[str] = []
    for jt in residual:
        a = own(jt.own_attribute)
        if jt.other_ce == ce_index:
            b = own(jt.other_attribute)
        else:
            b = f"tok[{jt.other_ce}].get({jt.other_attribute!r})"
        p = jt.predicate
        if p is Predicate.EQ:
            parts.append(f"_veq({a}, {b})")
        elif p is Predicate.NE:
            parts.append(f"not _veq({a}, {b})")
        elif p is Predicate.SAME_TYPE:
            parts.append(f"_same({a}, {b})")
        else:
            parts.append(f"{_ORDERING[p]}({a}, {b})")
    return " and ".join(parts)


def _col_var(plan: StorePlan, attr: str) -> str:
    return f"c{plan.index}_{plan.columns.index(attr)}"


def _key_expr(components: list[str]) -> str:
    """A hash key from encoded components: bare int, tuple, or the
    shared single bucket ``0`` when the join has no equality tests."""
    if not components:
        return "0"
    if len(components) == 1:
        return components[0]
    return "(" + ", ".join(components) + ")"


def _wme_key(eq: Sequence[JoinTest], own_plan: StorePlan) -> str:
    return _key_expr([f"{_col_var(own_plan, jt.own_attribute)}[wt]" for jt in eq])


def _token_key(
    eq: Sequence[JoinTest], use: dict, p_idx: int
) -> str:
    return _key_expr(
        [
            f"{_col_var(use[(p_idx, jt.other_ce)], jt.other_attribute)}"
            f"[lk[{jt.other_ce}]]"
            for jt in eq
        ]
    )


def _tuple_literal(parts: list[str]) -> str:
    if not parts:
        return "()"
    if len(parts) == 1:
        return f"({parts[0]},)"
    return "(" + ", ".join(parts) + ")"


# ---------------------------------------------------------------------------
# Source generation
# ---------------------------------------------------------------------------


def _binding_specs(
    analyses: Sequence[CEAnalysis],
) -> tuple[tuple[str, int, str], ...]:
    """First positive-CE binding site per variable (builder semantics)."""
    seen: set[str] = set()
    specs: list[tuple[str, int, str]] = []
    for analysis in analyses:
        if analysis.ce.negated:
            continue
        for variable, attribute in analysis.binders.items():
            if variable not in seen:
                seen.add(variable)
                specs.append((variable, analysis.index, attribute))
    return tuple(specs)


def _emit_production(
    out: list[str], p_idx: int, production: Production, use: dict
) -> None:
    analyses = production.analysis
    depth = len(analyses)
    emit = out.append
    pre = f"p{p_idx}"

    emit(f"    pr{p_idx} = P[{p_idx}]")
    emit(f"    nm{p_idx} = pr{p_idx}.name")
    for i in range(1, depth):
        emit(f"    li{p_idx}_{i} = {{}}")
        emit(f"    ri{p_idx}_{i} = {{}}")
        if analyses[i].ce.negated:
            emit(f"    nc{p_idx}_{i} = {{}}")

    # Terminal (level == depth): edits the conflict set.
    positive = [i for i, a in enumerate(analyses) if not a.ce.negated]
    wmes = _tuple_literal([f"tok[{i}]" for i in positive])
    tags = _tuple_literal([f"lk[{i}]" for i in positive])
    bindings = ", ".join(
        f"{var!r}: tok[{ce}].get({attr!r})"
        for var, ce, attr in _binding_specs(analyses)
    )
    emit(f"    def {pre}_l{depth}_a(tok, lk):")
    emit("        ctr[0] += 1; ctr[2] += 1")
    emit(f"        cs_insert(Inst(pr{p_idx}, {wmes}, {{{bindings}}}))")
    emit(f"    def {pre}_l{depth}_d(tok, lk):")
    emit("        ctr[0] += 1")
    emit(f"        cs_delete((nm{p_idx}, {tags}))")

    # Join levels, deepest first so each function sits below its callee.
    for i in range(depth - 1, 0, -1):
        analysis = analyses[i]
        eq, residual = _split_tests(analysis)
        li = f"li{p_idx}_{i}"
        ri = f"ri{p_idx}_{i}"
        nc = f"nc{p_idx}_{i}"
        tkey = _token_key(eq, use, p_idx)
        wkey = _wme_key(eq, use[(p_idx, i)])
        down_a = f"{pre}_l{i + 1}_a"
        down_d = f"{pre}_l{i + 1}_d"
        left_guard = _residual_expr(residual, i, lambda a: f"w.get({a!r})")
        right_guard = _residual_expr(residual, i, lambda a: f"wg({a!r})")

        if not analysis.ce.negated:
            # -- positive join: left activations -------------------------
            emit(f"    def {pre}_l{i}_a(tok, lk):")
            emit("        ctr[0] += 1; ctr[2] += 1")
            emit(f"        key = {tkey}")
            emit(f"        d = {li}.get(key)")
            emit("        if d is None:")
            emit(f"            d = {li}[key] = {{}}")
            emit("        d[lk] = tok")
            emit(f"        b = {ri}.get(key)")
            emit("        if b:")
            emit("            ctr[1] += len(b)")
            emit("            for wt, w in b.items():")
            if left_guard:
                emit(f"                if {left_guard}:")
                emit(f"                    {down_a}(tok + (w,), lk + (wt,))")
            else:
                emit(f"                {down_a}(tok + (w,), lk + (wt,))")
            emit(f"    def {pre}_l{i}_d(tok, lk):")
            emit("        ctr[0] += 1")
            emit(f"        key = {tkey}")
            emit(f"        d = {li}[key]")
            emit("        del d[lk]")
            emit("        if not d:")
            emit(f"            del {li}[key]")
            emit(f"        b = {ri}.get(key)")
            emit("        if b:")
            emit("            ctr[1] += len(b)")
            emit("            for wt, w in b.items():")
            if left_guard:
                emit(f"                if {left_guard}:")
                emit(f"                    {down_d}(tok + (w,), lk + (wt,))")
            else:
                emit(f"                {down_d}(tok + (w,), lk + (wt,))")
            # -- positive join: right activations ------------------------
            emit(f"    def {pre}_r{i}_a(w):")
            emit("        ctr[0] += 1")
            emit("        wt = w.timetag")
            emit(f"        key = {wkey}")
            emit(f"        d = {ri}.get(key)")
            emit("        if d is None:")
            emit(f"            d = {ri}[key] = {{}}")
            emit("        d[wt] = w")
            emit(f"        b = {li}.get(key)")
            emit("        if b:")
            emit("            ctr[1] += len(b)")
            if right_guard:
                emit("            wg = w.get")
            emit("            for lk, tok in b.items():")
            if right_guard:
                emit(f"                if {right_guard}:")
                emit(f"                    {down_a}(tok + (w,), lk + (wt,))")
            else:
                emit(f"                {down_a}(tok + (w,), lk + (wt,))")
            emit(f"    def {pre}_r{i}_d(w):")
            emit("        ctr[0] += 1")
            emit("        wt = w.timetag")
            emit(f"        key = {wkey}")
            emit(f"        d = {ri}[key]")
            emit("        del d[wt]")
            emit("        if not d:")
            emit(f"            del {ri}[key]")
            emit(f"        b = {li}.get(key)")
            emit("        if b:")
            emit("            ctr[1] += len(b)")
            if right_guard:
                emit("            wg = w.get")
            emit("            for lk, tok in b.items():")
            if right_guard:
                emit(f"                if {right_guard}:")
                emit(f"                    {down_d}(tok + (w,), lk + (wt,))")
            else:
                emit(f"                {down_d}(tok + (w,), lk + (wt,))")
        else:
            # -- negated join: left activations --------------------------
            emit(f"    def {pre}_l{i}_a(tok, lk):")
            emit("        ctr[0] += 1; ctr[2] += 1")
            emit(f"        key = {tkey}")
            emit(f"        d = {li}.get(key)")
            emit("        if d is None:")
            emit(f"            d = {li}[key] = {{}}")
            emit("        d[lk] = tok")
            emit(f"        b = {ri}.get(key)")
            if left_guard:
                emit("        n = 0")
                emit("        if b:")
                emit("            ctr[1] += len(b)")
                emit("            for w in b.values():")
                emit(f"                if {left_guard}:")
                emit("                    n += 1")
            else:
                emit("        n = len(b) if b else 0")
                emit("        ctr[1] += n")
            emit(f"        {nc}[lk] = n")
            emit("        if not n:")
            emit(f"            {down_a}(tok + (None,), lk + (0,))")
            emit(f"    def {pre}_l{i}_d(tok, lk):")
            emit("        ctr[0] += 1")
            emit(f"        key = {tkey}")
            emit(f"        d = {li}[key]")
            emit("        del d[lk]")
            emit("        if not d:")
            emit(f"            del {li}[key]")
            emit(f"        if not {nc}.pop(lk):")
            emit(f"            {down_d}(tok + (None,), lk + (0,))")
            # -- negated join: right activations -------------------------
            emit(f"    def {pre}_r{i}_a(w):")
            emit("        ctr[0] += 1")
            emit("        wt = w.timetag")
            emit(f"        key = {wkey}")
            emit(f"        d = {ri}.get(key)")
            emit("        if d is None:")
            emit(f"            d = {ri}[key] = {{}}")
            emit("        d[wt] = w")
            emit(f"        b = {li}.get(key)")
            emit("        if b:")
            emit("            ctr[1] += len(b)")
            if right_guard:
                emit("            wg = w.get")
            emit("            for lk, tok in b.items():")
            guard_pad = "                "
            if right_guard:
                emit(f"                if {right_guard}:")
                guard_pad = "                    "
            emit(f"{guard_pad}n = {nc}[lk]")
            emit(f"{guard_pad}{nc}[lk] = n + 1")
            emit(f"{guard_pad}if not n:")
            emit(f"{guard_pad}    {down_d}(tok + (None,), lk + (0,))")
            emit(f"    def {pre}_r{i}_d(w):")
            emit("        ctr[0] += 1")
            emit("        wt = w.timetag")
            emit(f"        key = {wkey}")
            emit(f"        d = {ri}[key]")
            emit("        del d[wt]")
            emit("        if not d:")
            emit(f"            del {ri}[key]")
            emit(f"        b = {li}.get(key)")
            emit("        if b:")
            emit("            ctr[1] += len(b)")
            if right_guard:
                emit("            wg = w.get")
            emit("            for lk, tok in b.items():")
            guard_pad = "                "
            if right_guard:
                emit(f"                if {right_guard}:")
                guard_pad = "                    "
            emit(f"{guard_pad}n = {nc}[lk] - 1")
            emit(f"{guard_pad}{nc}[lk] = n")
            emit(f"{guard_pad}if not n:")
            emit(f"{guard_pad}    {down_a}(tok + (None,), lk + (0,))")

    # Entry (CE 0, always positive): intra-CE predicate tests of the
    # first CE (e.g. ``^b > <x>`` against its own ``^a <x>``) gate
    # token creation, exactly like the dummy-top join's own-CE tests.
    _eq0, residual0 = _split_tests(analyses[0])
    guard0 = _residual_expr(residual0, 0, lambda a: f"wg({a!r})")
    down = f"{pre}_l1" if depth > 1 else f"{pre}_l{depth}"
    for suffix in ("a", "d"):
        emit(f"    def {pre}_r0_{suffix}(w):")
        emit("        ctr[0] += 1")
        if guard0:
            emit("        wg = w.get")
            emit(f"        if not ({guard0}):")
            emit("            return")
        emit(f"        {down}_{suffix}((w,), (w.timetag,))")


def generate_source(productions: Sequence[Production]) -> str:
    """The generated module's source: ``def build(rt): ...``."""
    plans, use = plan_stores(productions)
    out: list[str] = [
        "# generated by repro.kernel.codegen -- do not edit",
        "def build(rt):",
        "    _veq = rt.veq; _same = rt.same; _num = rt.num; _eqn = rt.eqn",
        "    _lt = rt.lt; _le = rt.le; _gt = rt.gt; _ge = rt.ge",
        "    _anyeq = rt.anyeq",
        "    ctr = rt.counters",
        "    cs_insert = rt.cs_insert; cs_delete = rt.cs_delete",
        "    Inst = rt.instantiation",
        "    P = rt.productions",
    ]
    emit = out.append

    for plan in plans:
        expr = _alpha_expr(plan.items)
        pred_name = "None"
        if expr:
            pred_name = f"a{plan.index}"
            emit(f"    def a{plan.index}(w):")
            emit("        g = w.get")
            emit(f"        return {expr}")
        columns = ", ".join(repr(c) for c in plan.columns)
        names = ", ".join(repr(n) for n in plan.production_names)
        emit(
            f"    S{plan.index} = rt.store({plan.index}, {plan.cls!r}, "
            f"({columns}{',' if plan.columns else ''}), {pred_name}, "
            f"({names}{',' if plan.production_names else ''}))"
        )
        for c_idx, attr in enumerate(plan.columns):
            emit(f"    c{plan.index}_{c_idx} = S{plan.index}.cols[{attr!r}]")

    for p_idx, production in enumerate(productions):
        _emit_production(out, p_idx, production, use)

    for p_idx, production in enumerate(productions):
        for i in range(len(production.analysis)):
            plan = use[(p_idx, i)]
            emit(
                f"    rt.subscribe(S{plan.index}, "
                f"p{p_idx}_r{i}_a, p{p_idx}_r{i}_d)"
            )
    out.append("")
    return "\n".join(out)
