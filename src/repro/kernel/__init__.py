"""The compiled match kernel: per-ruleset codegen over columnar memories.

The interpreted Rete walks one Python method call per node activation --
the per-candidate constant factor that dominates serial throughput once
dispatch is cheap (ROADMAP item 1; CORGI's observation in PAPERS.md).
This package removes that factor by *compiling* each ruleset, once, to
specialized Python:

* every production's alpha tests fuse into a single predicate closure;
* beta joins become hash-indexed probes over columnar alpha memories
  whose key components are small ints from the process-wide
  :mod:`repro.ops5.symbols` intern table;
* the generated module is cached by a structural LHS fingerprint, so
  re-loading the same ruleset (or the same ruleset under new production
  names) reuses the same code object and never re-interns a symbol.

The node-walking Rete stays in the tree as the differential oracle:
``CompiledMatcher(oracle=True)`` shadows every change through a
:class:`~repro.rete.ReteNetwork` and raises on the first divergence,
and the fuzz fleet (``repro fuzz``) cross-checks the generated code
against all interpreted matchers on every generated program.

See ``docs/compiled-kernel.md`` for the compilation model.
"""

from .cache import CompiledRuleset, cache_stats, compiled_ruleset, ruleset_fingerprint
from .codegen import generate_source
from .layout import AlphaStore, NUMBERS, encode_value
from .matcher import CompiledMatcher
from .runtime import KernelRuntime
from .shared import (
    SharedKernel,
    clear_shared_kernels,
    shared_kernel,
    shared_kernel_stats,
)
from .verify import check_kernel

__all__ = [
    "AlphaStore",
    "CompiledMatcher",
    "CompiledRuleset",
    "KernelRuntime",
    "NUMBERS",
    "SharedKernel",
    "cache_stats",
    "check_kernel",
    "clear_shared_kernels",
    "compiled_ruleset",
    "encode_value",
    "generate_source",
    "ruleset_fingerprint",
    "shared_kernel",
    "shared_kernel_stats",
]
