"""Codegen cache keyed by a structural ruleset fingerprint.

Compiling a ruleset costs codegen plus ``compile()``; the result depends
only on the *shape* of the LHSs (classes, alpha tests, variable
bindings, join tests) -- production names and RHS actions are bound at
build time from the runtime's production list.  The fingerprint captures
exactly that shape:

* values are tagged with their Python type name so ``5``, ``5.0`` and
  ``"5"`` fingerprint differently (their generated tests differ);
* binder variable names are included -- they appear verbatim in the
  generated bindings dict literals;
* production and ruleset names are *not* included, so reloading the
  same program -- or a renamed copy -- hits the cache and reuses the
  same code object.

Neither fingerprinting nor codegen ever calls ``intern_id``: loading a
cached ruleset does not grow the symbol table (regression-tested in
``tests/kernel/test_cache.py``).
"""

from __future__ import annotations

import hashlib
import threading
from typing import Sequence

from ..ops5.condition import CEAnalysis
from ..ops5.production import Production
from .codegen import alpha_items, generate_source

__all__ = [
    "CompiledRuleset",
    "cache_stats",
    "clear_cache",
    "compiled_ruleset",
    "ruleset_fingerprint",
]


def _ce_fingerprint(analysis: CEAnalysis) -> tuple:
    return (
        analysis.ce.cls,
        analysis.ce.negated,
        alpha_items(analysis),
        tuple(sorted(analysis.binders.items())),
        tuple(
            (jt.own_attribute, jt.predicate.value, jt.other_ce, jt.other_attribute)
            for jt in analysis.join_tests
        ),
    )


# Per-production fingerprint memo, keyed by object identity.  Rebuilds
# on a warm kernel happen once per session attach; without the memo each
# one re-walks every CE of every production, making attach cost scale
# with network size.  Entries hold a strong reference to the production
# (Production has __slots__ without __weakref__), so an id() is never
# reused while its entry is live; clear_cache() drops the memo.
_PROD_FP: dict[int, tuple[Production, tuple]] = {}


def _production_fingerprint(production: Production) -> tuple:
    entry = _PROD_FP.get(id(production))
    if entry is not None and entry[0] is production:
        return entry[1]
    fp = tuple(_ce_fingerprint(a) for a in production.analysis)
    _PROD_FP[id(production)] = (production, fp)
    return fp


def ruleset_fingerprint(productions: Sequence[Production]) -> tuple:
    """Structural LHS fingerprint; equal iff the generated code is."""
    return tuple(_production_fingerprint(p) for p in productions)


class CompiledRuleset:
    """One cache entry: fingerprint, generated source, code object."""

    __slots__ = ("fingerprint", "digest", "source", "code")

    def __init__(self, fingerprint: tuple, source: str) -> None:
        self.fingerprint = fingerprint
        #: Short stable hex id for traces, summaries and bench reports.
        self.digest = hashlib.sha256(repr(fingerprint).encode()).hexdigest()[:16]
        self.source = source
        self.code = compile(source, f"<kernel:{self.digest}>", "exec")


_CACHE: dict[tuple, CompiledRuleset] = {}
_LOCK = threading.Lock()
_HITS = 0
_MISSES = 0


def compiled_ruleset(productions: Sequence[Production]) -> CompiledRuleset:
    """The (cached) compiled module for *productions*."""
    global _HITS, _MISSES
    fingerprint = ruleset_fingerprint(productions)
    with _LOCK:
        entry = _CACHE.get(fingerprint)
        if entry is not None:
            _HITS += 1
            return entry
        _MISSES += 1
    # Codegen outside the lock: racing compiles of the same ruleset are
    # rare and benign (last writer wins; code objects are equivalent).
    entry = CompiledRuleset(fingerprint, generate_source(productions))
    with _LOCK:
        return _CACHE.setdefault(fingerprint, entry)


def cache_stats() -> dict:
    """Process-wide cache counters (``repro.metrics`` kernel section)."""
    with _LOCK:
        return {"hits": _HITS, "misses": _MISSES, "size": len(_CACHE)}


def clear_cache() -> None:
    """Drop entries, counters and the fingerprint memo (test isolation)."""
    global _HITS, _MISSES
    with _LOCK:
        _CACHE.clear()
        _PROD_FP.clear()
        _HITS = 0
        _MISSES = 0
