"""Columnar alpha memories and the int encoding of OPS5 values.

The generated join code never hashes a string and never probes a
per-token dict of attribute values.  Both properties come from the
layout in this module:

* :func:`encode_value` maps every OPS5 value to one small ``int``:
  symbols to ``2 * intern_id + 1`` (odd) through the process-wide
  :data:`~repro.ops5.symbols.SYMBOLS` table, numbers to ``2 * num_id``
  (even) through the :data:`NUMBERS` table.  The parity bit replaces
  the type mask the interpreted Rete appends to its index keys: a
  symbol id can never collide with a number id.  :data:`NUMBERS` keys
  its dict by the numeric value itself, so ``1`` and ``1.0`` share an
  id exactly as :func:`~repro.ops5.wme.values_equal` equates them.
  (``bool`` is not an OPS5 value -- ``Value = str | int | float`` -- so
  the ``True == 1`` dict collision cannot arise from parsed programs.)

* :class:`AlphaStore` is one alpha memory shared by every condition
  element with the same (class, fused alpha tests) signature.  Besides
  the ``timetag -> WME`` row dict it keeps one *column* per attribute
  that any subscriber's join keys reference: ``timetag -> encoded
  value``.  A generated join builds its hash key with one dict probe
  per component (the column dict is bound to a local variable in the
  generated closure) instead of ``wme.get(attr)`` plus an intern probe
  per component per activation.

Column removal on WME deletion is two-phase (see
``kernel/matcher.py``): all delete subscriptions fire first, then rows
and columns drop, because a token being retracted builds its key from
the columns of its constituent WMEs -- including the one being deleted.
"""

from __future__ import annotations

import threading

from ..ops5.symbols import intern_id
from ..ops5.wme import WME

__all__ = ["AlphaStore", "NUMBERS", "NumberTable", "encode_value"]


class NumberTable:
    """Dense ``number -> int`` intern table (the numeric half of
    :func:`encode_value`).

    The dict key is the number itself: Python dict equality already
    equates ``1`` and ``1.0`` (equal hash, equal value), which is
    precisely OPS5's numeric equality, so both spellings share one id.
    Thread-safety mirrors :class:`~repro.ops5.symbols.SymbolTable`:
    the hit path is a plain dict probe; only a miss takes the lock.
    """

    __slots__ = ("_ids", "_lock")

    def __init__(self) -> None:
        self._ids: dict = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._ids)

    def number_id(self, value) -> int:
        ident = self._ids.get(value)
        if ident is not None:
            return ident
        with self._lock:
            return self._ids.setdefault(value, len(self._ids))


#: The process-wide number table; shares the encoded-id space with
#: :data:`~repro.ops5.symbols.SYMBOLS` via the parity bit.
NUMBERS = NumberTable()

_number_id = NUMBERS.number_id


def encode_value(value) -> int:
    """One int per OPS5 value, equal iff :func:`values_equal` says so."""
    if type(value) is str:
        return (intern_id(value) << 1) | 1
    return _number_id(value) << 1


class AlphaStore:
    """One columnar alpha memory: rows, join-key columns, subscribers.

    Shared by every CE (across all productions of the ruleset) whose
    class and fused alpha tests coincide -- the same sharing the
    interpreted Rete gets from its alpha-memory registry.
    ``production_names`` is the union of subscribing productions, which
    gives the paper's *affected productions* count per change without
    walking the beta network.
    """

    __slots__ = (
        "cls",
        "predicate",
        "production_names",
        "rows",
        "cols",
        "add_subs",
        "del_subs",
        "_col_items",
    )

    def __init__(
        self,
        cls: str,
        columns: tuple[str, ...],
        predicate,
        production_names: frozenset[str],
    ) -> None:
        self.cls = cls
        #: Fused alpha predicate closure, or ``None`` for class-only CEs.
        self.predicate = predicate
        self.production_names = production_names
        self.rows: dict[int, WME] = {}
        self.cols: dict[str, dict[int, int]] = {attr: {} for attr in columns}
        self.add_subs: list = []
        self.del_subs: list = []
        self._col_items = tuple(self.cols.items())

    def insert(self, wme: WME) -> None:
        """Add a row; encode every subscribed column once."""
        timetag = wme.timetag
        self.rows[timetag] = wme
        get = wme.get
        for attr, col in self._col_items:
            col[timetag] = encode_value(get(attr))

    def remove(self, wme: WME) -> None:
        """Drop a row and its column entries (after delete propagation)."""
        timetag = wme.timetag
        del self.rows[timetag]
        for _attr, col in self._col_items:
            del col[timetag]

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AlphaStore({self.cls}, rows={len(self.rows)}, "
            f"cols={list(self.cols)}, prods={sorted(self.production_names)})"
        )
