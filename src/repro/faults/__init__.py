"""Fault injection and chaos harnessing for the match fleet.

This package is the failure-side counterpart of :mod:`repro.parallel`'s
supervision: :class:`FaultPlan` schedules deterministic, seedable
failures (worker crash, hang, pipe drop, slow shard, session errors)
that the shard workers and serve sessions consult, and
:mod:`repro.faults.chaos` runs a program under a plan and proves the
result bit-identical to the inline fault-free reference.

See ``docs/fault-tolerance.md`` for the supervision model and the
recovery economics relative to the paper's Section 3.1.
"""

from .chaos import ChaosReport, FleetChaosReport, fleet_chaos, run_chaos, seeded_chaos
from .plan import (
    CRASH,
    ERROR,
    HANG,
    HANG_FOREVER,
    PIPE_DROP,
    SESSION,
    SESSION_KINDS,
    SHARD,
    SHARD_KINDS,
    SLOW,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "CRASH",
    "ERROR",
    "HANG",
    "HANG_FOREVER",
    "PIPE_DROP",
    "SESSION",
    "SESSION_KINDS",
    "SHARD",
    "SHARD_KINDS",
    "SLOW",
    "FaultPlan",
    "FaultSpec",
    "ChaosReport",
    "FleetChaosReport",
    "fleet_chaos",
    "run_chaos",
    "seeded_chaos",
]
