"""Deterministic, seedable fault injection for the match fleet.

The paper's Section 3.1 economics -- state-saving wins because
re-deriving match state costs ~20x more than maintaining it -- are also
the economics of crash recovery: a shard's Rete state is a function of
the op stream it has applied, so a dead worker can be rebuilt by
replay, at a cost the recovery benchmark measures live.  Testing that
machinery needs failures that happen *on demand and reproducibly*,
which is what a :class:`FaultPlan` provides.

A plan is a set of :class:`FaultSpec` rows, each naming a *site* (a
shard worker or a serve session), a *position* in that site's own
ordinal stream (the Nth dispatched batch for a shard, the Nth executed
request for a session), and a fault *kind*.  Determinism comes from the
addressing scheme, not from timers:

* The coordinator stamps every dispatched batch with a per-shard
  sequence number that is never reused -- recovery replay and batch
  re-dispatch carry no sequence number -- so a ``(shard, at)`` spec
  fires exactly once per run, at the same logical point every run.
* A session counts the requests it has executed; injected request
  faults land on the same request ordinal every run.

Plans cross the process boundary (the shard worker consults its copy),
so everything here is plain picklable data.  :meth:`FaultPlan.seeded`
derives a reproducible random plan from an integer seed -- what the
chaos tests and ``repro chaos`` use.

Fault kinds
-----------
``crash``
    The worker exits immediately with ``os._exit`` -- the observable
    behaviour of a ``kill -9``: no reply, no cleanup, EOF on the pipe.
``hang``
    The worker sleeps (default: practically forever) without replying;
    only the supervisor's collect deadline can detect it.
``pipe-drop``
    The worker closes its end of the pipe and exits: the coordinator
    sees EOF, possibly mid-protocol.
``slow``
    The worker sleeps ``seconds`` and then serves the batch normally --
    a straggler, not a failure; it must *not* trigger recovery when it
    stays inside the deadline.
``error``
    (session site) The request handler raises mid-request, exercising
    the structured-error reply path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

#: Fault kinds (values appear in plans, summaries, and notices).
CRASH = "crash"
HANG = "hang"
PIPE_DROP = "pipe-drop"
SLOW = "slow"
ERROR = "error"

#: Kinds meaningful per site.
SHARD_KINDS = (CRASH, HANG, PIPE_DROP, SLOW)
SESSION_KINDS = (ERROR, SLOW)

#: Injection sites.
SHARD = "shard"
SESSION = "session"

#: A ``hang`` sleeps this long when no duration is given -- far beyond
#: any sane collect deadline, so only supervision can end it.
HANG_FOREVER = 3600.0


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: *kind* at position *at* of one *site*.

    ``index`` selects a shard (``None`` = every shard, each at its own
    ``at``-th batch); it is ignored for session faults.  ``seconds`` is
    the injected latency for ``slow`` (and overrides the ``hang``
    duration, which tests use to build a hang that eventually unwinds).
    """

    kind: str
    site: str = SHARD
    index: Optional[int] = None
    at: int = 0
    seconds: float = 0.0

    def __post_init__(self) -> None:
        allowed = SHARD_KINDS if self.site == SHARD else SESSION_KINDS
        if self.site not in (SHARD, SESSION):
            raise ValueError(f"unknown fault site {self.site!r}")
        if self.kind not in allowed:
            raise ValueError(
                f"fault kind {self.kind!r} is not valid at site {self.site!r}; "
                f"expected one of {allowed}"
            )
        if self.at < 0:
            raise ValueError("fault position 'at' must be >= 0")

    def snapshot(self) -> dict:
        """JSON-ready row (plans are embedded in chaos artifacts)."""
        return {
            "kind": self.kind,
            "site": self.site,
            "index": self.index,
            "at": self.at,
            "seconds": self.seconds,
        }


class FaultPlan:
    """An immutable schedule of faults, consulted by injection sites.

    The plan is pure data: consulting it never mutates it, so the same
    plan object (or a pickled copy in a worker process) answers the
    same queries identically on every run.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"FaultPlan takes FaultSpec rows, got {spec!r}")

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"FaultPlan({list(self.specs)!r})"

    # -- consultation --------------------------------------------------------

    def shard_fault(self, shard: int, seq: Optional[int]) -> Optional[FaultSpec]:
        """The fault (if any) scheduled for *shard*'s batch *seq*.

        ``seq is None`` means the batch is part of recovery (journal
        replay or a re-dispatch) and is never faulted -- that is what
        makes every spec one-shot.
        """
        if seq is None:
            return None
        for spec in self.specs:
            if spec.site != SHARD or spec.at != seq:
                continue
            if spec.index is None or spec.index == shard:
                return spec
        return None

    def session_fault(self, ordinal: int) -> Optional[FaultSpec]:
        """The fault (if any) scheduled for the *ordinal*-th request."""
        for spec in self.specs:
            if spec.site == SESSION and spec.at == ordinal:
                return spec
        return None

    # -- construction --------------------------------------------------------

    @classmethod
    def seeded(
        cls,
        seed: int,
        shards: int,
        horizon: int = 32,
        crashes: int = 1,
        hangs: int = 0,
        pipe_drops: int = 0,
        slows: int = 0,
        slow_seconds: float = 0.01,
    ) -> "FaultPlan":
        """A reproducible random plan over the first *horizon* batches.

        Positions are drawn without replacement per shard stream, so two
        faults never collide on the same (shard, batch) slot; equal
        seeds give equal plans on every platform (``random.Random`` is
        specified to be stable across CPython versions).
        """
        if shards < 1:
            raise ValueError("need at least one shard")
        rng = random.Random(seed)
        slots = [(shard, at) for shard in range(shards) for at in range(horizon)]
        wanted = crashes + hangs + pipe_drops + slows
        if wanted > len(slots):
            raise ValueError(
                f"{wanted} faults do not fit in {shards} shards x {horizon} batches"
            )
        chosen = rng.sample(slots, wanted)
        kinds = (
            [CRASH] * crashes + [HANG] * hangs + [PIPE_DROP] * pipe_drops + [SLOW] * slows
        )
        specs = [
            FaultSpec(
                kind=kind,
                site=SHARD,
                index=shard,
                at=at,
                seconds=slow_seconds if kind == SLOW else 0.0,
            )
            for kind, (shard, at) in zip(kinds, chosen)
        ]
        specs.sort(key=lambda s: (s.index, s.at, s.kind))
        return cls(specs)

    # -- serialisation -------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """JSON-ready rows (embedded in chaos reports and artifacts)."""
        return [spec.snapshot() for spec in self.specs]

    @classmethod
    def from_rows(cls, rows: Sequence[dict]) -> "FaultPlan":
        """Rebuild a plan from :meth:`snapshot` rows."""
        return cls(
            FaultSpec(
                kind=row["kind"],
                site=row.get("site", SHARD),
                index=row.get("index"),
                at=row.get("at", 0),
                seconds=row.get("seconds", 0.0),
            )
            for row in rows
        )
