"""The chaos harness: run a program under faults, prove it unharmed.

``run_chaos`` is the executable statement of the fault-tolerance
guarantee: a parallel run with injected worker failures must produce a
**bit-identical** observable record -- firing sequence, per-cycle
conflict sets, output, final working memory, halt state -- to the
inline fault-free reference.  The supervisor may respawn workers,
replay journals, even demote shards to inline execution; none of that
is allowed to show up in the result, only in the fault summary.

The comparison rides on :mod:`repro.parallel.validate`'s
:class:`~repro.parallel.validate.RunRecord` reduction, so "identical"
here means exactly what the differential test harness means by it.

Used three ways: the chaos-marked test suite asserts on the report, the
``repro chaos`` CLI command prints it, and CI uploads its JSON snapshot
as the recovery-trace artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .plan import FaultPlan


@dataclass
class ChaosReport:
    """Outcome of one chaos run: the verdict plus the recovery story."""

    workers: int
    plan_rows: list[dict]
    identical: bool
    divergences: list[str]
    fired_cycles: int
    halted: bool
    fault_summary: dict
    recovery_events: list[dict] = field(default_factory=list)
    transport: str = "auto"
    #: Labels of the compared runs (inline reference, faulted parallel,
    #: optionally the compiled kernel under its Rete oracle).
    participants: list[str] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """Did any scheduled fault actually fire and get repaired?"""
        return bool(self.recovery_events)

    def snapshot(self) -> dict:
        """JSON-ready form (the CI recovery-trace artifact)."""
        return {
            "schema": "repro.chaos/1",
            "workers": self.workers,
            "plan": self.plan_rows,
            "identical": self.identical,
            "divergences": self.divergences,
            "fired_cycles": self.fired_cycles,
            "halted": self.halted,
            "fault_summary": self.fault_summary,
            "recovery_events": self.recovery_events,
            "transport": self.transport,
            "participants": self.participants,
        }


def run_chaos(
    productions,
    setup: Sequence,
    plan: FaultPlan,
    workers: int = 2,
    strategy: str = "lex",
    max_cycles: int = 200,
    supervisor=None,
    recorder=None,
    transport: str = "auto",
    with_compiled: bool = False,
) -> ChaosReport:
    """Run one program twice -- faulted parallel vs. inline reference.

    The reference runs first on an inline (``workers=0``) matcher with
    no faults; the subject runs on *workers* process shards consulting
    *plan*.  Both are reduced to
    :class:`~repro.parallel.validate.RunRecord` and compared field by
    field.  *supervisor* optionally overrides the
    :class:`~repro.parallel.supervisor.SupervisorConfig` (chaos tests
    shrink the collect deadline so injected hangs are detected in
    milliseconds, not half a minute).  *transport* selects the subject's
    shard transport (the reference is inline, so it has none): recovery
    must be bit-identical over the shared-memory ring exactly as over
    pickled pipes.

    With ``with_compiled=True`` a third participant joins the
    comparison: the generated match kernel running in oracle mode
    (every change shadow-checked against a node-walking Rete), so one
    chaos run simultaneously proves fault recovery *and* codegen
    equivalence on the same program.
    """
    # Imported here, not at module top: repro.parallel's worker imports
    # this package's plan module, so a top-level import would be cyclic.
    from ..parallel.executor import ParallelMatcher
    from ..parallel.validate import DifferentialReport, run_recorded

    report = DifferentialReport()
    with ParallelMatcher(workers=0) as reference:
        report.records["inline"] = run_recorded(
            productions, setup, reference, strategy=strategy, max_cycles=max_cycles
        )
    if with_compiled:
        from ..kernel.matcher import CompiledMatcher

        report.records["compiled+oracle"] = run_recorded(
            productions,
            setup,
            CompiledMatcher(oracle=True),
            strategy=strategy,
            max_cycles=max_cycles,
        )
    with ParallelMatcher(
        workers=workers,
        fault_plan=plan,
        supervisor=supervisor,
        recorder=recorder,
        transport=transport,
    ) as subject:
        report.records["parallel+faults"] = run_recorded(
            productions, setup, subject, strategy=strategy, max_cycles=max_cycles
        )
        summary = subject.fault_summary()
        events = [event.snapshot() for event in subject.fault_events()]
        resolved = subject.transport_summary().get("kind", transport)
    return ChaosReport(
        workers=workers,
        plan_rows=plan.snapshot(),
        identical=report.agree,
        divergences=report.divergences(),
        fired_cycles=report.records["parallel+faults"].cycles,
        halted=report.records["parallel+faults"].halted,
        fault_summary=summary,
        recovery_events=events,
        transport=resolved,
        participants=list(report.records),
    )


def seeded_chaos(
    productions,
    setup: Sequence,
    seed: int,
    workers: int = 2,
    horizon: int = 16,
    crashes: int = 1,
    hangs: int = 0,
    supervisor=None,
    max_cycles: int = 200,
    strategy: str = "lex",
    recorder=None,
    transport: str = "auto",
    with_compiled: bool = False,
) -> ChaosReport:
    """``run_chaos`` with a :meth:`FaultPlan.seeded` plan -- the CLI's
    one-call entry point for reproducible chaos by integer seed."""
    plan = FaultPlan.seeded(
        seed, shards=workers, horizon=horizon, crashes=crashes, hangs=hangs
    )
    return run_chaos(
        productions,
        setup,
        plan,
        workers=workers,
        strategy=strategy,
        max_cycles=max_cycles,
        supervisor=supervisor,
        recorder=recorder,
        transport=transport,
        with_compiled=with_compiled,
    )
