"""The chaos harness: run a program under faults, prove it unharmed.

``run_chaos`` is the executable statement of the fault-tolerance
guarantee: a parallel run with injected worker failures must produce a
**bit-identical** observable record -- firing sequence, per-cycle
conflict sets, output, final working memory, halt state -- to the
inline fault-free reference.  The supervisor may respawn workers,
replay journals, even demote shards to inline execution; none of that
is allowed to show up in the result, only in the fault summary.

The comparison rides on :mod:`repro.parallel.validate`'s
:class:`~repro.parallel.validate.RunRecord` reduction, so "identical"
here means exactly what the differential test harness means by it.

Used three ways: the chaos-marked test suite asserts on the report, the
``repro chaos`` CLI command prints it, and CI uploads its JSON snapshot
as the recovery-trace artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .plan import FaultPlan


@dataclass
class ChaosReport:
    """Outcome of one chaos run: the verdict plus the recovery story."""

    workers: int
    plan_rows: list[dict]
    identical: bool
    divergences: list[str]
    fired_cycles: int
    halted: bool
    fault_summary: dict
    recovery_events: list[dict] = field(default_factory=list)
    transport: str = "auto"
    #: Labels of the compared runs (inline reference, faulted parallel,
    #: optionally the compiled kernel under its Rete oracle).
    participants: list[str] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """Did any scheduled fault actually fire and get repaired?"""
        return bool(self.recovery_events)

    def snapshot(self) -> dict:
        """JSON-ready form (the CI recovery-trace artifact)."""
        return {
            "schema": "repro.chaos/1",
            "workers": self.workers,
            "plan": self.plan_rows,
            "identical": self.identical,
            "divergences": self.divergences,
            "fired_cycles": self.fired_cycles,
            "halted": self.halted,
            "fault_summary": self.fault_summary,
            "recovery_events": self.recovery_events,
            "transport": self.transport,
            "participants": self.participants,
        }


def run_chaos(
    productions,
    setup: Sequence,
    plan: FaultPlan,
    workers: int = 2,
    strategy: str = "lex",
    max_cycles: int = 200,
    supervisor=None,
    recorder=None,
    transport: str = "auto",
    with_compiled: bool = False,
) -> ChaosReport:
    """Run one program twice -- faulted parallel vs. inline reference.

    The reference runs first on an inline (``workers=0``) matcher with
    no faults; the subject runs on *workers* process shards consulting
    *plan*.  Both are reduced to
    :class:`~repro.parallel.validate.RunRecord` and compared field by
    field.  *supervisor* optionally overrides the
    :class:`~repro.parallel.supervisor.SupervisorConfig` (chaos tests
    shrink the collect deadline so injected hangs are detected in
    milliseconds, not half a minute).  *transport* selects the subject's
    shard transport (the reference is inline, so it has none): recovery
    must be bit-identical over the shared-memory ring exactly as over
    pickled pipes.

    With ``with_compiled=True`` a third participant joins the
    comparison: the generated match kernel running in oracle mode
    (every change shadow-checked against a node-walking Rete), so one
    chaos run simultaneously proves fault recovery *and* codegen
    equivalence on the same program.
    """
    # Imported here, not at module top: repro.parallel's worker imports
    # this package's plan module, so a top-level import would be cyclic.
    from ..parallel.executor import ParallelMatcher
    from ..parallel.validate import DifferentialReport, run_recorded

    report = DifferentialReport()
    with ParallelMatcher(workers=0) as reference:
        report.records["inline"] = run_recorded(
            productions, setup, reference, strategy=strategy, max_cycles=max_cycles
        )
    if with_compiled:
        from ..kernel.matcher import CompiledMatcher

        report.records["compiled+oracle"] = run_recorded(
            productions,
            setup,
            CompiledMatcher(oracle=True),
            strategy=strategy,
            max_cycles=max_cycles,
        )
    with ParallelMatcher(
        workers=workers,
        fault_plan=plan,
        supervisor=supervisor,
        recorder=recorder,
        transport=transport,
    ) as subject:
        report.records["parallel+faults"] = run_recorded(
            productions, setup, subject, strategy=strategy, max_cycles=max_cycles
        )
        summary = subject.fault_summary()
        events = [event.snapshot() for event in subject.fault_events()]
        resolved = subject.transport_summary().get("kind", transport)
    return ChaosReport(
        workers=workers,
        plan_rows=plan.snapshot(),
        identical=report.agree,
        divergences=report.divergences(),
        fired_cycles=report.records["parallel+faults"].cycles,
        halted=report.records["parallel+faults"].halted,
        fault_summary=summary,
        recovery_events=events,
        transport=resolved,
        participants=list(report.records),
    )


@dataclass
class FleetChaosReport:
    """Outcome of one process-fleet chaos run (SIGKILL under load)."""

    seed: int
    workers: int
    sessions: int
    rounds: int
    checkpoint_every: int
    #: The seeded kill schedule as executed: round, worker index, pid.
    kills: list[dict]
    identical: bool
    divergences: list[str]
    recovered_sessions: list[str]
    lost_sessions: list[str]
    recovery_events: list[dict]
    durability: dict = field(default_factory=dict)
    fleet: dict = field(default_factory=dict)
    client_reconnects: int = 0

    @property
    def ok(self) -> bool:
        """The acceptance bar: nothing lost, nothing diverged."""
        return self.identical and not self.lost_sessions

    def snapshot(self) -> dict:
        """JSON-ready form (the CI fleet-chaos artifact)."""
        return {
            "schema": "repro.fleet-chaos/1",
            "seed": self.seed,
            "workers": self.workers,
            "sessions": self.sessions,
            "rounds": self.rounds,
            "checkpoint_every": self.checkpoint_every,
            "kills": self.kills,
            "identical": self.identical,
            "divergences": self.divergences,
            "recovered_sessions": self.recovered_sessions,
            "lost_sessions": self.lost_sessions,
            "recovery_events": self.recovery_events,
            "durability": self.durability,
            "fleet": self.fleet,
            "client_reconnects": self.client_reconnects,
        }


def fleet_chaos(
    seed: int,
    workers: int = 2,
    sessions: int = 6,
    rounds: int = 6,
    kills: int = 1,
    checkpoint_every: int = 4,
    heartbeat_interval: float = 0.5,
    durability_dir=None,
    on_event=None,
) -> FleetChaosReport:
    """SIGKILL real worker processes under multitenant load; prove no
    session lost and every continuation bit-identical.

    The serve-layer counterpart of :func:`run_chaos`, one level up the
    stack: a :class:`~repro.serve.fleet.ProcessRouterFleet` of *workers*
    real OS processes hosts *sessions* multitenant transitive-closure
    sessions (the ``closure`` demo program, each session growing its own
    namespaced chain); a seeded schedule SIGKILLs the busiest worker at
    the start of *kills* distinct rounds, while clients keep asserting
    through the router.  Every session's cumulative firing record and
    final working memory is then compared bit-for-bit against a direct
    no-fault :class:`~repro.ops5.ProductionSystem` run of the same
    stream.  *durability_dir* persists the journals + checkpoints past
    the run (the CI artifact); the default temporary store is deleted
    with the fleet.  *on_event* (if given) receives progress strings.
    """
    import random as _random

    from ..ops5 import ProductionSystem
    from ..serve import ProcessRouterFleet, RuleClient
    from ..workloads.programs import closure

    def note(message: str) -> None:
        if on_event is not None:
            on_event(message)

    rng = _random.Random(seed)
    kill_rounds = sorted(
        rng.sample(range(1, rounds), min(kills, max(rounds - 1, 0)))
    )
    names = [f"fc{i}" for i in range(sessions)]

    def fact(name: str, round_no: int) -> tuple:
        return ("parent", {"from": f"{name}_n{round_no}", "to": f"{name}_n{round_no + 1}"})

    kills_done: list[dict] = []
    firings: dict[str, list] = {name: [] for name in names}
    final_wm: dict[str, list] = {}
    with ProcessRouterFleet(
        workers=workers,
        checkpoint_every=checkpoint_every,
        heartbeat_interval=heartbeat_interval,
        durability_dir=durability_dir,
    ) as fleet:
        with RuleClient(fleet.address) as client:
            for index, name in enumerate(names):
                client.create_session(
                    program=closure.PROGRAM,
                    name=name,
                    tenant=f"tenant{index % 3}",
                )
            for round_no in range(rounds):
                if round_no in kill_rounds:
                    stats = client.stats()
                    loads: dict[int, int] = {}
                    for row in stats["sessions"].values():
                        worker = row.get("worker")
                        if worker is not None:
                            loads[worker] = loads.get(worker, 0) + 1
                    victim = max(loads, key=lambda w: (loads[w], -w))
                    pid = fleet.worker_pid(victim)
                    note(f"round {round_no}: SIGKILL worker {victim} (pid {pid})")
                    fleet.kill_worker(victim)
                    kills_done.append(
                        {"round": round_no, "worker": victim, "pid": pid}
                    )
                for name in names:
                    reply = client.assert_wmes(name, [fact(name, round_no)], run=True)
                    firings[name].extend(reply.get("run", {}).get("firings", []))
            for name in names:
                final_wm[name] = sorted(
                    [cls, sorted(attrs.items()), tag]
                    for cls, attrs, tag in client.query_wm(name)
                )
            stats = client.stats()
            client_reconnects = client.reconnects
        router = stats["router"]
        recovered = list(router.get("recovered_sessions", []))
        lost = list(router.get("lost_sessions", []))
        events = [
            event
            for event in router.get("events", [])
            if event.get("type")
            in ("worker_failed", "worker_recovered", "recovered", "lost")
        ]
        durability = router.get("durability", {})
        fleet_snapshot = router.get("fleet", {})

    # The no-fault reference: the same per-session stream applied to a
    # direct in-process engine.  Bit-identical means equal cumulative
    # firing records and equal final working memories.
    divergences: list[str] = []
    for name in names:
        system = ProductionSystem(closure.PROGRAM)
        reference_firings: list = []
        for round_no in range(rounds):
            cls, attrs = fact(name, round_no)
            system.apply_changes([("assert", cls, attrs)])
            result = system.run(None)
            reference_firings.extend(
                [cycle.production, list(cycle.timetags)] for cycle in result.cycles
            )
        reference_wm = sorted(
            [wme.cls, sorted(wme.attributes.items()), wme.timetag]
            for wme in system.memory.snapshot()
        )
        if name in lost:
            divergences.append(f"session {name}: lost, nothing to compare")
            continue
        if firings[name] != reference_firings:
            divergences.append(
                f"session {name}: firing records differ "
                f"({len(firings[name])} vs {len(reference_firings)} firings)"
            )
        if final_wm.get(name) != reference_wm:
            divergences.append(
                f"session {name}: final working memory differs "
                f"({len(final_wm.get(name, []))} vs {len(reference_wm)} wmes)"
            )
    return FleetChaosReport(
        seed=seed,
        workers=workers,
        sessions=sessions,
        rounds=rounds,
        checkpoint_every=checkpoint_every,
        kills=kills_done,
        identical=not divergences,
        divergences=divergences,
        recovered_sessions=recovered,
        lost_sessions=lost,
        recovery_events=events,
        durability=durability,
        fleet=fleet_snapshot,
        client_reconnects=client_reconnects,
    )


def seeded_chaos(
    productions,
    setup: Sequence,
    seed: int,
    workers: int = 2,
    horizon: int = 16,
    crashes: int = 1,
    hangs: int = 0,
    supervisor=None,
    max_cycles: int = 200,
    strategy: str = "lex",
    recorder=None,
    transport: str = "auto",
    with_compiled: bool = False,
) -> ChaosReport:
    """``run_chaos`` with a :meth:`FaultPlan.seeded` plan -- the CLI's
    one-call entry point for reproducible chaos by integer seed."""
    plan = FaultPlan.seeded(
        seed, shards=workers, horizon=horizon, crashes=crashes, hangs=hangs
    )
    return run_chaos(
        productions,
        setup,
        plan,
        workers=workers,
        strategy=strategy,
        max_cycles=max_cycles,
        supervisor=supervisor,
        recorder=recorder,
        transport=transport,
        with_compiled=with_compiled,
    )
