"""The shard worker: one process owning one partition of the network.

Each worker compiles its partition's productions into a private
:class:`~repro.rete.network.ReteNetwork` and applies the op batches the
coordinator streams to it.  Because every node memory in that network
belongs to this worker alone (see :mod:`repro.parallel.partition`),
activations of one node are naturally serialised on their memory -- the
executor's realisation of the paper's per-node locks -- while nodes in
different shards run truly concurrently, in different processes.

The worker reports its work back as a *conflict-set edit stream* (the
same currency Rete terminals trade in) plus per-change measurement
rows, both pure-primitive tuples (see :mod:`repro.parallel.messages`).

Recovery support (see :mod:`repro.parallel.supervisor`): a worker can
``checkpoint`` -- pickle its whole :class:`ShardState`, match state and
all -- and a *replacement* worker can ``restore`` from a checkpoint
blob plus a journal of ops to replay.  Replay is quiet: the edits it
produces were already merged by the coordinator before the failure, so
they are drained and discarded.  Both rest on the paper's Section 3.1
observation that match state is a deterministic function of the op
stream -- which is also what makes the rebuilt shard bit-identical.

Workers consult an optional :class:`~repro.faults.FaultPlan` before
serving each batch, keyed by the coordinator-assigned sequence number,
so chaos tests can schedule a crash, hang, pipe drop, or slow-down at
an exact, reproducible point in the run.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from typing import Any, Optional, Sequence

from ..faults.plan import CRASH, HANG, HANG_FOREVER, PIPE_DROP, SLOW, FaultPlan
from ..ops5.conflict import ConflictSet
from ..ops5.production import Instantiation
from ..ops5.wme import WME
from . import messages
from .messages import Edit, StatRow


class RecordingConflictSet(ConflictSet):
    """A conflict set that journals every edit for later transfer.

    Injected into the shard's network, it turns terminal-node activity
    into the wire-format edit stream while keeping full local conflict
    set semantics (duplicate-insert detection still applies per shard).
    """

    def __init__(self) -> None:
        super().__init__()
        self.edits: list[Edit] = []

    def insert(self, instantiation: Instantiation) -> None:
        super().insert(instantiation)
        self.edits.append(
            (
                messages.INSERT,
                instantiation.production.name,
                instantiation.timetags,
                dict(instantiation.bindings),
            )
        )

    def delete(self, instantiation: Instantiation) -> None:
        super().delete(instantiation)
        self.edits.append(
            (messages.DELETE, instantiation.production.name, instantiation.timetags)
        )

    def drain(self) -> list[Edit]:
        edits, self.edits = self.edits, []
        return edits


class ShardState:
    """The in-process core of a worker (also usable without a process).

    Keeping the op-application logic process-free makes it unit-testable
    and lets the executor fall back to an inline shard when processes
    are unavailable (``workers=0``) -- or when a shard is *demoted*
    after repeated failures.  The whole object pickles (nothing in the
    network holds closures or OS resources), which is what makes the
    supervisor's checkpoints a pure state snapshot rather than a
    recompilation recipe.
    """

    def __init__(self) -> None:
        self._fresh()

    def _fresh(self) -> None:
        from ..rete.network import ReteNetwork  # deferred heavy import

        self.conflict_set = RecordingConflictSet()
        self.network = ReteNetwork(conflict_set=self.conflict_set)
        self.wmes: dict[int, WME] = {}

    def apply_batch(self, ops: Sequence[Sequence[Any]]) -> tuple[list[Edit], list[StatRow]]:
        """Apply *ops* in order; return (edits, per-WME-op stat rows).

        Stat rows are indexed by WME-op *ordinal* within the batch (not
        the raw op position): the coordinator's change map counts only
        WME ops, since production ops belong to no working-memory change.
        """
        stat_rows: list[StatRow] = []
        wme_ordinal = 0
        for op in ops:
            tag = op[0]
            if tag == messages.ADD_WME or tag == messages.ADD_WME_REF:
                # ADD_WME_REF is the local backend's zero-copy form; it
                # lands here only via journal replay after a demotion or
                # a harness feeding one journal to both shard kinds.
                wme = op[1] if tag == messages.ADD_WME_REF else messages.decode_wme(op)
                self.wmes[wme.timetag] = wme
                self.network.add_wme(wme)
                stat_rows.append(self._stat_row(wme_ordinal))
                wme_ordinal += 1
            elif tag == messages.REMOVE_WME:
                wme = self.wmes.pop(op[1])
                self.network.remove_wme(wme)
                stat_rows.append(self._stat_row(wme_ordinal))
                wme_ordinal += 1
            elif tag == messages.ADD_PRODUCTION:
                self.network.add_production(op[1])
            elif tag == messages.REMOVE_PRODUCTION:
                self.network.remove_production(op[1])
            elif tag == messages.RESET:
                self._fresh()
            else:
                raise ValueError(f"unknown op {tag!r}")
        return self.conflict_set.drain(), stat_rows

    def checkpoint(self) -> bytes:
        """Pickle the complete match state (network, conflict set, WMEs).

        Taken at batch boundaries only, when the recording conflict
        set's edit journal is empty -- a checkpoint captures *state*,
        never undelivered output.
        """
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    def _stat_row(self, op_index: int) -> StatRow:
        record = self.network.stats.changes[-1]
        return (
            op_index,
            record.affected_productions,
            record.node_activations,
            record.comparisons,
            record.tokens_built,
        )


def rebuild_state(
    checkpoint: Optional[bytes], journal: Sequence[Sequence[Any]]
) -> ShardState:
    """Reconstruct a shard's state: unpickle + quiet journal replay.

    This is the paper's ``c3`` (state re-derivation) measured live: a
    fresh state replays the whole journal; a checkpointed one unpickles
    and replays only the tail.  Replay output (edits, stat rows) is
    discarded -- the coordinator merged it before the failure.
    """
    if checkpoint is not None:
        state = pickle.loads(checkpoint)
        # Indexed join buckets are keyed by process-local symbol intern
        # ids; rekey them against this process's table before replay.
        state.network.rebuild_join_indexes()
    else:
        state = ShardState()
    if journal:
        state.apply_batch(list(journal))
    return state


def _perform_fault(spec, conn) -> None:
    """Execute an injected fault inside the worker process.

    ``crash`` and ``pipe-drop`` do not return.  ``hang`` and ``slow``
    sleep and return, letting the batch proceed -- for a real hang the
    supervisor's deadline expires long before the sleep does and the
    process is killed mid-sleep.
    """
    if spec.kind == CRASH:
        # The observable behaviour of kill -9: no reply, no cleanup.
        os._exit(1)
    elif spec.kind == PIPE_DROP:
        conn.close()
        os._exit(1)
    elif spec.kind == HANG:
        time.sleep(spec.seconds or HANG_FOREVER)
    elif spec.kind == SLOW:
        time.sleep(spec.seconds)


def shard_main(spec, index: int = 0, fault_plan: Optional[FaultPlan] = None) -> None:
    """Worker process entry point: serve commands until told to stop.

    *spec* is a :class:`~repro.parallel.transport.WorkerTransportSpec`
    (or a bare ``Connection``, kept working for direct harnesses): the
    worker connects the matching endpoint and from there the loop is
    transport-blind -- ``recv`` yields the same command tuples whether
    they arrived as a pickled pipe message or a packed ring frame.

    Any exception while applying a batch is reported to the coordinator
    instead of silently killing the process; the worker resets to a
    fresh state (its own may be torn mid-batch) and the coordinator
    restores it from the journal, so a failed differential-test example
    does not poison the next one.
    """
    from .transport import WorkerTransportSpec, connect_worker

    if not isinstance(spec, WorkerTransportSpec):
        spec = WorkerTransportSpec("pipe", spec)
    endpoint = connect_worker(spec)
    state = ShardState()
    while True:
        try:
            message = endpoint.recv()
        except EOFError:
            break
        tag = message[0]
        if tag == messages.STOP:
            break
        if tag == messages.BATCH:
            ops = message[1]
            seq = message[2] if len(message) > 2 else None
            if fault_plan is not None:
                fault = fault_plan.shard_fault(index, seq)
                if fault is not None:
                    _perform_fault(fault, spec.conn)
            try:
                edits, stat_rows = state.apply_batch(ops)
            except BaseException as error:  # noqa: BLE001 - forwarded verbatim
                endpoint.send((messages.ERROR, repr(error), traceback.format_exc()))
                # The shard's state may be torn mid-batch; start clean.
                # The coordinator follows up with a restore.
                state = ShardState()
                continue
            endpoint.send((messages.OK, edits, stat_rows))
        elif tag == messages.CHECKPOINT:
            try:
                endpoint.send((messages.CHECKPOINT, state.checkpoint()))
            except Exception as error:  # noqa: BLE001 - forwarded verbatim
                endpoint.send((messages.ERROR, repr(error), traceback.format_exc()))
        elif tag == messages.RESTORE:
            try:
                state = rebuild_state(message[1], message[2])
            except BaseException as error:  # noqa: BLE001 - forwarded verbatim
                endpoint.send((messages.ERROR, repr(error), traceback.format_exc()))
                state = ShardState()
                continue
            endpoint.send((messages.RESTORED, len(message[2])))
        else:  # pragma: no cover - protocol misuse
            endpoint.send((messages.ERROR, f"unknown message {tag!r}", ""))
    endpoint.close()
