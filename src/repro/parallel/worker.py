"""The shard worker: one process owning one partition of the network.

Each worker compiles its partition's productions into a private
:class:`~repro.rete.network.ReteNetwork` and applies the op batches the
coordinator streams to it.  Because every node memory in that network
belongs to this worker alone (see :mod:`repro.parallel.partition`),
activations of one node are naturally serialised on their memory -- the
executor's realisation of the paper's per-node locks -- while nodes in
different shards run truly concurrently, in different processes.

The worker reports its work back as a *conflict-set edit stream* (the
same currency Rete terminals trade in) plus per-change measurement
rows, both pure-primitive tuples (see :mod:`repro.parallel.messages`).
"""

from __future__ import annotations

import traceback
from typing import Any, Sequence

from ..ops5.conflict import ConflictSet
from ..ops5.production import Instantiation
from ..ops5.wme import WME
from . import messages
from .messages import Edit, StatRow


class RecordingConflictSet(ConflictSet):
    """A conflict set that journals every edit for later transfer.

    Injected into the shard's network, it turns terminal-node activity
    into the wire-format edit stream while keeping full local conflict
    set semantics (duplicate-insert detection still applies per shard).
    """

    def __init__(self) -> None:
        super().__init__()
        self.edits: list[Edit] = []

    def insert(self, instantiation: Instantiation) -> None:
        super().insert(instantiation)
        self.edits.append(
            (
                messages.INSERT,
                instantiation.production.name,
                instantiation.timetags,
                dict(instantiation.bindings),
            )
        )

    def delete(self, instantiation: Instantiation) -> None:
        super().delete(instantiation)
        self.edits.append(
            (messages.DELETE, instantiation.production.name, instantiation.timetags)
        )

    def drain(self) -> list[Edit]:
        edits, self.edits = self.edits, []
        return edits


class ShardState:
    """The in-process core of a worker (also usable without a process).

    Keeping the op-application logic process-free makes it unit-testable
    and lets the executor fall back to an inline shard when processes
    are unavailable (``workers=0``).
    """

    def __init__(self) -> None:
        self._fresh()

    def _fresh(self) -> None:
        from ..rete.network import ReteNetwork  # deferred heavy import

        self.conflict_set = RecordingConflictSet()
        self.network = ReteNetwork(conflict_set=self.conflict_set)
        self.wmes: dict[int, WME] = {}

    def apply_batch(self, ops: Sequence[Sequence[Any]]) -> tuple[list[Edit], list[StatRow]]:
        """Apply *ops* in order; return (edits, per-WME-op stat rows).

        Stat rows are indexed by WME-op *ordinal* within the batch (not
        the raw op position): the coordinator's change map counts only
        WME ops, since production ops belong to no working-memory change.
        """
        stat_rows: list[StatRow] = []
        wme_ordinal = 0
        for op in ops:
            tag = op[0]
            if tag == messages.ADD_WME:
                wme = messages.decode_wme(op)
                self.wmes[wme.timetag] = wme
                self.network.add_wme(wme)
                stat_rows.append(self._stat_row(wme_ordinal))
                wme_ordinal += 1
            elif tag == messages.REMOVE_WME:
                wme = self.wmes.pop(op[1])
                self.network.remove_wme(wme)
                stat_rows.append(self._stat_row(wme_ordinal))
                wme_ordinal += 1
            elif tag == messages.ADD_PRODUCTION:
                self.network.add_production(op[1])
            elif tag == messages.REMOVE_PRODUCTION:
                self.network.remove_production(op[1])
            elif tag == messages.RESET:
                self._fresh()
            else:
                raise ValueError(f"unknown op {tag!r}")
        return self.conflict_set.drain(), stat_rows

    def _stat_row(self, op_index: int) -> StatRow:
        record = self.network.stats.changes[-1]
        return (
            op_index,
            record.affected_productions,
            record.node_activations,
            record.comparisons,
            record.tokens_built,
        )


def shard_main(conn) -> None:
    """Worker process entry point: serve batches until told to stop.

    Any exception while applying a batch is reported to the coordinator
    (which raises it there) instead of silently killing the process;
    the worker keeps serving, so a failed differential-test example
    does not poison the next one.
    """
    state = ShardState()
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message[0] == "stop":
            break
        if message[0] != "batch":  # pragma: no cover - protocol misuse
            conn.send(("error", f"unknown message {message[0]!r}", ""))
            continue
        try:
            edits, stat_rows = state.apply_batch(message[1])
        except BaseException as error:  # noqa: BLE001 - forwarded verbatim
            conn.send(("error", repr(error), traceback.format_exc()))
            # The shard's state may be torn mid-batch; start clean so the
            # coordinator can reset and continue deterministically.
            state = ShardState()
            continue
        conn.send(("ok", edits, stat_rows))
    conn.close()
