"""Differential validation of the live executor (and any matcher pair).

The OPS5 semantics here are deliberately over-determined: the repo
carries four serial matchers (naive, TREAT, Rete, Oflazer) plus the
parallel executor, and *every observable of a run* must agree across
all of them -- the conflict set after each cycle, the firing sequence,
the ``write`` output, and the final working memory.  This module runs
one program through any set of backends and reduces each run to a
comparable :class:`RunRecord`, which both the differential test
harness and ``benchmarks/bench_live_vs_predicted.py`` build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..ops5.engine import ProductionSystem
from ..ops5.parser import Program
from ..ops5.production import Production
from ..ops5.wme import WME


@dataclass(frozen=True)
class RunRecord:
    """Everything observable about one recorded run, comparison-ready.

    ``conflict_sets[i]`` is the conflict-set key snapshot *after* cycle
    ``i`` fired and its RHS ran -- reading it through the engine is the
    parallel backend's flush barrier, so equality here proves the
    barrier semantics, not just the final state.
    """

    fired: tuple[tuple[str, tuple[int, ...]], ...]
    conflict_sets: tuple[frozenset, ...]
    output: tuple[str, ...]
    final_memory: tuple[tuple[int, tuple], ...]
    halted: bool

    @property
    def cycles(self) -> int:
        return len(self.fired)


@dataclass
class DifferentialReport:
    """Outcome of running one program through several backends."""

    records: dict[str, RunRecord] = field(default_factory=dict)

    @property
    def agree(self) -> bool:
        unique = {record for record in self.records.values()}
        return len(unique) <= 1

    def divergences(self) -> list[str]:
        """Human-readable description of the first mismatch per pair."""
        names = sorted(self.records)
        if len(names) < 2:
            return []
        problems: list[str] = []
        reference = names[0]
        base = self.records[reference]
        for name in names[1:]:
            other = self.records[name]
            if other == base:
                continue
            problems.append(_describe(reference, base, name, other))
        return problems


def _describe(ref_name: str, ref: RunRecord, name: str, other: RunRecord) -> str:
    if ref.fired != other.fired:
        for i, (a, b) in enumerate(zip(ref.fired, other.fired)):
            if a != b:
                return f"{name} vs {ref_name}: cycle {i + 1} fired {b} != {a}"
        return (
            f"{name} vs {ref_name}: fired {other.cycles} cycles != {ref.cycles}"
        )
    if ref.conflict_sets != other.conflict_sets:
        for i, (a, b) in enumerate(zip(ref.conflict_sets, other.conflict_sets)):
            if a != b:
                extra = sorted(b - a)
                missing = sorted(a - b)
                return (
                    f"{name} vs {ref_name}: conflict set after cycle {i + 1} "
                    f"differs (extra {extra}, missing {missing})"
                )
    if ref.output != other.output:
        return f"{name} vs {ref_name}: output differs"
    if ref.final_memory != other.final_memory:
        return f"{name} vs {ref_name}: final working memory differs"
    return f"{name} vs {ref_name}: halt state differs"


def _fresh_setup(setup: Sequence) -> list[tuple[str, dict]]:
    """Normalise setup items to (class, attrs) pairs, copying WMEs.

    WME objects carry identity and a timetag once inserted, so each
    backend's run must get its own fresh copies.
    """
    specs: list[tuple[str, dict]] = []
    for item in setup:
        if isinstance(item, WME):
            specs.append((item.cls, dict(item.attributes)))
        else:
            cls, attrs = item
            specs.append((cls, dict(attrs)))
    return specs


def run_recorded(
    productions: Program | str | Sequence[Production],
    setup: Sequence,
    matcher,
    strategy: str = "lex",
    max_cycles: int = 200,
) -> RunRecord:
    """Run a program on *matcher* and reduce the run to a RunRecord."""
    system = ProductionSystem(productions, matcher=matcher, strategy=strategy)
    for cls, attrs in _fresh_setup(setup):
        system.add(cls, **attrs)
    fired: list[tuple[str, tuple[int, ...]]] = []
    conflict_sets: list[frozenset] = []
    while len(fired) < max_cycles:
        instantiation = system.step()
        if instantiation is None:
            break
        fired.append((instantiation.production.name, instantiation.timetags))
        conflict_sets.append(system.conflict_set.snapshot())
    return RunRecord(
        fired=tuple(fired),
        conflict_sets=tuple(conflict_sets),
        output=tuple(system.output),
        final_memory=tuple(
            (w.timetag, w.content_key()) for w in system.memory.snapshot()
        ),
        halted=system.halted,
    )


def compare_backends(
    productions: Program | str | Sequence[Production],
    setup: Sequence,
    backends: Mapping[str, Callable[[], object]],
    strategy: str = "lex",
    max_cycles: int = 200,
) -> DifferentialReport:
    """Run one program through every backend factory and compare.

    ``backends`` maps a label to a zero-argument matcher factory.  A
    factory may return a pre-warmed :class:`ParallelMatcher` (after
    :meth:`~repro.parallel.executor.ParallelMatcher.clear`), which is
    how the test harness amortises worker start-up over hundreds of
    generated programs.
    """
    report = DifferentialReport()
    for name in sorted(backends):
        matcher = backends[name]()
        report.records[name] = run_recorded(
            productions, setup, matcher, strategy=strategy, max_cycles=max_cycles
        )
    return report


def validate_parallel(
    productions: Program | str | Sequence[Production],
    setup: Sequence,
    workers: int = 2,
    strategy: str = "lex",
    max_cycles: int = 200,
    transport: str = "auto",
) -> DifferentialReport:
    """Serial Rete vs. the live parallel executor on one program.

    The one-stop check the CLI and benchmark use before trusting a
    parallel run's timings.  *transport* picks the executor's shard
    transport, so the same differential harness vouches for the
    shared-memory ring path as for pickled pipes.
    """
    from ..rete.network import ReteNetwork
    from .executor import ParallelMatcher

    report = DifferentialReport()
    report.records["rete"] = run_recorded(
        productions, setup, ReteNetwork(), strategy=strategy, max_cycles=max_cycles
    )
    with ParallelMatcher(workers=workers, transport=transport) as matcher:
        report.records[f"parallel[{workers}]"] = run_recorded(
            productions, setup, matcher, strategy=strategy, max_cycles=max_cycles
        )
    return report
