"""A single-producer single-consumer byte ring over shared memory.

The paper's production-system machine gets its 9400 wme-changes/sec
from a *hardware task scheduler* whose scheduling operation costs about
one bus cycle (Section 5): pushing a task to a worker is a couple of
memory writes, not a kernel transition.  This module is the software
analogue available to a Python coordinator: a lock-free SPSC ring in
``multiprocessing.shared_memory``, where publishing a frame is a buffer
copy plus one 8-byte counter store -- no syscall, no pickling, no pipe
write -- and the consumer discovers it by reading the counter.

Layout (one ring is one shared-memory segment)::

    offset 0    tail  -- u64, total bytes ever written  (producer-owned)
    offset 64   head  -- u64, total bytes ever read     (consumer-owned)
    offset 96   parked -- u8, consumer is blocked on its doorbell pipe
    offset 128  stalls -- u64, producer full-ring stall episodes
    offset 192  data  -- capacity bytes, used modulo capacity

Head and tail are *monotonic byte counters* (never wrapped), so
``tail - head`` is always the exact number of unread bytes and the
empty/full ambiguity of wrapped indices never arises.  Each counter has
a single writer, sits alone on its own 64-byte cache line, and is an
aligned 8-byte store -- effectively atomic on every platform CPython
runs on, giving seqlock-style publication without locks: the producer
writes payload bytes first, then advances ``tail``; the consumer reads
bytes first, then advances ``head``.

Messages are length-prefixed (u32) byte strings.  Writes and reads are
*progressive*: a message larger than the free space streams through the
ring in chunks, each chunk published by a counter store, so the ring
capacity bounds memory, not message size.  When the ring is full the
producer backs off -- first ``time.sleep(0)`` (a bare sched_yield, which
matters on single-core hosts where the peer needs the CPU to drain) and
then short sleeps -- and counts one *stall episode* in the header, which
the transport metrics report as back-pressure evidence.
"""

from __future__ import annotations

import secrets
import struct
import time
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Optional

__all__ = ["Ring", "RingStall", "DEFAULT_CAPACITY"]

_U64 = struct.Struct("<Q")
_LEN = struct.Struct("<I")

OFF_TAIL = 0
OFF_HEAD = 64
OFF_PARKED = 96
OFF_STALLS = 128
DATA = 192

DEFAULT_CAPACITY = 1 << 20

#: Spin iterations of ``sleep(0)`` before escalating to real sleeps.
_SPIN = 4096
#: Backoff ceiling.  Low on purpose: a parked peer wakes at worst one
#: ceiling later, and on the single-core hosts this repo targets the
#: dispatch round trip is latency-bound, so a 0.5 ms ceiling was
#: costing more per cycle than the entire match step.  100 us keeps the
#: idle wakeup rate (~10k/s) cheap while bounding the mid-sleep hit.
_MAX_SLEEP = 0.0001


class RingStall(OSError):
    """The peer did not make progress within the timeout.

    A producer raises it when the ring stays full (consumer not
    draining); a consumer raises it when a read deadline expires.  The
    executor maps it to a ``hang`` shard failure.
    """


class Ring:
    """One direction of a shard link: SPSC byte stream in shared memory.

    Exactly one process may call :meth:`write` and exactly one may call
    :meth:`read_message`/:meth:`poll`; nothing enforces this -- it is
    the transport's contract (one ring per direction per shard).
    """

    __slots__ = (
        "shm",
        "buf",
        "capacity",
        "owner",
        "name",
        "_closed",
        "_tail_cache",
        "_head_cache",
        "_head_seen",
        "_tail_seen",
    )

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self.shm = shm
        self.buf = shm.buf
        # The OS may round the segment up to a page; use what we got.
        self.capacity = len(shm.buf) - DATA
        self.owner = owner
        self.name = shm.name
        self._closed = False
        # Each counter has exactly one writer, so that side can keep a
        # local copy and skip re-reading shared memory on every call --
        # the publish fast path then touches the header exactly once
        # (the closing counter store).  ``None`` until first use: only
        # the process that actually produces (or consumes) may trust
        # its cache.
        self._tail_cache: Optional[int] = None
        self._head_cache: Optional[int] = None
        # Stale-but-safe snapshots of the *peer's* counter.  The peer's
        # counter only ever moves in the direction that gives this side
        # more room (head forward = more free space, tail forward =
        # more data), so acting on a stale snapshot is conservative and
        # the fast path can skip the shared-memory read entirely,
        # refreshing only when the snapshot says there is not enough.
        self._head_seen = 0
        self._tail_seen = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, capacity: int = DEFAULT_CAPACITY) -> "Ring":
        """Allocate a fresh ring (coordinator side owns and unlinks it)."""
        if capacity < 1024:
            raise ValueError("ring capacity must be at least 1 KiB")
        name = f"repro-ring-{secrets.token_hex(8)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=DATA + capacity)
        shm.buf[:DATA] = bytes(DATA)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "Ring":
        """Attach to an existing ring by name (worker side).

        Python's resource tracker registers *every* attach for cleanup,
        so an attacher with its *own* tracker (a spawn-started worker)
        would unlink the segment out from under the owner when it
        exits; deregister the attach there.  When the tracker was
        inherited (fork, or attaching in the owner's own process) the
        registration set is shared with the owner and must be left
        alone -- the owner's ``unlink`` retires it.
        """
        tracker = getattr(resource_tracker, "_resource_tracker", None)
        inherited = tracker is not None and getattr(tracker, "_fd", None) is not None
        shm = shared_memory.SharedMemory(name=name)
        if not inherited:
            try:  # pragma: no cover - tracker internals vary across versions
                resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
            except Exception:
                pass
        return cls(shm, owner=False)

    # -- counters ------------------------------------------------------------

    def _tail(self) -> int:
        return _U64.unpack_from(self.buf, OFF_TAIL)[0]

    def _head(self) -> int:
        return _U64.unpack_from(self.buf, OFF_HEAD)[0]

    def stalls(self) -> int:
        """Producer stall episodes so far (metrics)."""
        return _U64.unpack_from(self.buf, OFF_STALLS)[0]

    # -- doorbell handshake --------------------------------------------------
    #
    # An idle consumer spins briefly, then publishes ``parked`` and
    # blocks on its side channel (the shard's liveness pipe); a
    # producer that sees the flag after publishing rings that channel
    # once and clears the flag, so steady-state traffic pays no syscall
    # and a cold dispatch pays exactly one -- the software version of
    # the PSM scheduler raising an interrupt at a sleeping processor.
    # The set-flag/recheck-data ordering (and its mirror image on the
    # producer side) makes a lost wakeup impossible in either
    # interleaving; the consumer's bounded block is belt and braces.

    def set_parked(self, flag: bool) -> None:
        """Consumer-side: announce (or retract) that it is about to
        block on the doorbell channel.  Must be followed by a data
        re-check before actually blocking."""
        self.buf[OFF_PARKED] = 1 if flag else 0

    def consumer_parked(self) -> bool:
        """Producer-side: whether the consumer declared itself parked
        (checked after publishing, to decide on a doorbell)."""
        return self.buf[OFF_PARKED] != 0

    def has_data(self) -> bool:
        """Consumer-side cheap emptiness probe (no message framing)."""
        head = self._head_cache
        if head is None:
            head = self._head()
        return _U64.unpack_from(self.buf, OFF_TAIL)[0] != head

    def available(self) -> int:
        """Unread bytes currently in the ring."""
        return self._tail() - self._head()

    # -- producer side -------------------------------------------------------

    def write(
        self,
        payload: bytes,
        timeout: Optional[float] = None,
        waiter: Optional[Callable[[], None]] = None,
    ) -> None:
        """Append one length-prefixed message, streaming through the ring.

        The fast path -- message fits in the free space without crossing
        the physical end of the buffer -- is two slice stores and one
        counter store, the software version of the paper's one-bus-cycle
        scheduler push.  Otherwise publication is progressive: each
        chunk that fits is copied and made visible by a tail store, so
        the consumer can start draining a large message while the rest
        is still being written.  Raises :class:`RingStall` if the ring
        stays full past *timeout*; *waiter* runs on each full-ring
        backoff iteration (the worker uses it to notice a dead
        coordinator).
        """
        tail = self._tail_cache
        if tail is None:
            tail = self._tail()
        buf = self.buf
        capacity = self.capacity
        n = len(payload)
        total = n + 4
        pos = tail % capacity
        if total > capacity - (tail - self._head_seen):
            self._head_seen = self._head()
        if total <= capacity - (tail - self._head_seen) and pos + total <= capacity:
            start = DATA + pos
            _LEN.pack_into(buf, start, n)
            buf[start + 4 : start + total] = payload
            tail += total
            self._tail_cache = tail
            _U64.pack_into(buf, OFF_TAIL, tail)
            return
        self._write_slow(payload, tail, timeout, waiter)

    def _write_slow(
        self,
        payload: bytes,
        tail: int,
        timeout: Optional[float],
        waiter: Optional[Callable[[], None]],
    ) -> None:
        data = _LEN.pack(len(payload)) + payload
        buf = self.buf
        capacity = self.capacity
        offset = 0
        total = len(data)
        spins = 0
        sleep = 0.000005
        deadline = time.monotonic() + timeout if timeout is not None else None
        stalled = False
        while offset < total:
            free = capacity - (tail - self._head())
            if free <= 0:
                if not stalled:
                    stalled = True
                    _U64.pack_into(buf, OFF_STALLS, self.stalls() + 1)
                if waiter is not None:
                    waiter()
                if deadline is not None and time.monotonic() > deadline:
                    raise RingStall(
                        f"ring {self.name} full for {timeout}s (consumer stalled)"
                    )
                spins += 1
                if spins < _SPIN:
                    time.sleep(0)
                else:
                    time.sleep(sleep)
                    sleep = min(sleep * 2, _MAX_SLEEP)
                continue
            spins = 0
            chunk = min(free, total - offset)
            pos = DATA + (tail % capacity)
            first = min(chunk, capacity - (tail % capacity))
            buf[pos : pos + first] = data[offset : offset + first]
            if first < chunk:  # wraparound: remainder goes to the front
                buf[DATA : DATA + chunk - first] = data[offset + first : offset + chunk]
            tail += chunk
            offset += chunk
            _U64.pack_into(buf, OFF_TAIL, tail)
        self._tail_cache = tail

    # -- consumer side -------------------------------------------------------

    def _read_exact(
        self,
        n: int,
        timeout: Optional[float],
        waiter: Optional[Callable[[], None]],
    ) -> bytes:
        """Read exactly *n* bytes, publishing head progress per chunk."""
        buf = self.buf
        capacity = self.capacity
        head = self._head_cache
        if head is None:
            head = self._head()
        out = bytearray()
        spins = 0
        sleep = 0.000005
        deadline = time.monotonic() + timeout if timeout is not None else None
        while len(out) < n:
            ready = self._tail() - head
            if ready <= 0:
                if waiter is not None:
                    waiter()
                if deadline is not None and time.monotonic() > deadline:
                    raise RingStall(f"ring {self.name} read timed out after {timeout}s")
                spins += 1
                if spins < _SPIN:
                    time.sleep(0)
                else:
                    time.sleep(sleep)
                    sleep = min(sleep * 2, _MAX_SLEEP)
                continue
            spins = 0
            chunk = min(ready, n - len(out))
            pos = DATA + (head % capacity)
            first = min(chunk, capacity - (head % capacity))
            out += buf[pos : pos + first]
            if first < chunk:
                out += buf[DATA : DATA + chunk - first]
            head += chunk
            _U64.pack_into(buf, OFF_HEAD, head)
        self._head_cache = head
        return bytes(out)

    def read_message(
        self,
        timeout: Optional[float] = None,
        waiter: Optional[Callable[[], None]] = None,
    ) -> bytes:
        """Block for the next message; *waiter* runs on each empty poll.

        Mirrors :meth:`write`: when a whole message sits contiguous in
        the buffer the read is one slice copy and one counter store.
        The worker passes a *waiter* that checks the control pipe for
        EOF, so a dead coordinator unblocks the read instead of leaving
        the worker spinning on a ring nobody will ever fill again.
        """
        head = self._head_cache
        if head is None:
            head = self._head()
            self._head_cache = head
        ready = self._tail_seen - head
        if ready < 4:
            self._tail_seen = self._tail()
            ready = self._tail_seen - head
        if ready >= 4:
            buf = self.buf
            capacity = self.capacity
            pos = head % capacity
            if pos + 4 <= capacity:
                (length,) = _LEN.unpack_from(buf, DATA + pos)
                if ready < 4 + length:
                    self._tail_seen = self._tail()
                    ready = self._tail_seen - head
                if ready >= 4 + length and pos + 4 + length <= capacity:
                    start = DATA + pos + 4
                    out = bytes(buf[start : start + length])
                    head += 4 + length
                    self._head_cache = head
                    _U64.pack_into(buf, OFF_HEAD, head)
                    return out
        (length,) = _LEN.unpack(self._read_exact(4, timeout, waiter))
        return self._read_exact(length, timeout, waiter)

    def poll(self, timeout: float = 0.0) -> bool:
        """True once a message length prefix is readable (non-consuming)."""
        deadline = time.monotonic() + timeout
        spins = 0
        sleep = 0.000005
        while True:
            if self.available() >= 4:
                return True
            if time.monotonic() >= deadline:
                return self.available() >= 4
            spins += 1
            if spins < _SPIN:
                time.sleep(0)
            else:
                time.sleep(sleep)
                sleep = min(sleep * 2, _MAX_SLEEP)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Detach (and unlink, if this side created the segment)."""
        if self._closed:
            return
        self._closed = True
        self.buf = None  # release the exported memoryview first
        self.shm.close()
        if self.owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink race
                pass

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass
