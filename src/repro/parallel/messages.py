"""The coordinator <-> shard-worker wire protocol.

Everything that crosses a process boundary is a plain tuple of
primitives (strings, numbers, dicts of both), so messages pickle fast
and identically under every ``multiprocessing`` start method.  The one
exception is production transfer: :class:`~repro.ops5.production.Production`
objects are pure data (conditions, actions, no closures) and pickle
directly, which is how a shard receives its rules.

Command stream (coordinator -> worker), one batch per flush::

    ("batch", [op, op, ...], seq) apply ops in order, then reply
    ("checkpoint",)               pickle current state, reply with bytes
    ("restore", blob, [op, ...])  rebuild state: unpickle blob (or start
                                  fresh when None), replay ops quietly
    ("stop",)                     exit the worker loop

``seq`` is the coordinator-assigned per-shard batch sequence number --
the address fault injection fires on (:mod:`repro.faults`).  It is
``None`` for recovery re-dispatches, which must never re-trigger the
fault that killed the previous incarnation of the worker.

Ops inside a batch::

    ("+p", production)            compile a production into the shard
    ("-p", name)                  remove a production
    ("+w", cls, attrs, timetag)   working-memory insertion
    ("-w", timetag)               working-memory deletion
    ("reset",)                    discard all match state, keep nothing

Reply (worker -> coordinator), one per command::

    ("ok", edits, stat_rows)      a served batch
    ("checkpoint", blob)          pickled ShardState bytes
    ("restored", op_count)        state rebuilt (checkpoint + replay)
    ("error", repr, traceback_text)

``edits`` is the ordered conflict-set edit stream the batch produced:
``("i", production_name, timetags, bindings)`` inserts and
``("d", production_name, timetags)`` deletes, where ``timetags`` is the
instantiation's positive-CE timetag tuple.  Timetags are the global
names of WMEs, so the coordinator can rebuild full
:class:`~repro.ops5.production.Instantiation` objects from its own
working-memory view without productions or WMEs ever travelling back.

``stat_rows`` carries one measurement row per *WME op* in the batch:
``(op_index, affected, activations, comparisons, tokens_built)`` --
the coordinator sums rows across shards (shards hold disjoint
production sets, so "affected productions" adds correctly) into the
:class:`~repro.ops5.matcher.MatchStats` record stream.

These tuples are the protocol's *logical* form.  How they cross the
process boundary is the transport's business
(:mod:`repro.parallel.transport`): the pipe transport pickles them
verbatim, while the shared-memory ring transport packs ``batch`` and
``ok`` messages into compact struct frames with interned symbols
(:mod:`repro.parallel.codec`) and falls back to pickle for everything
else.  Workers see identical tuples either way.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..ops5.wme import WME

#: Op tags (kept one character: they appear in every message).
ADD_PRODUCTION = "+p"
REMOVE_PRODUCTION = "-p"
ADD_WME = "+w"
REMOVE_WME = "-w"
#: Zero-copy WME insertion: ``("+wr", wme)`` carries the live object
#: reference instead of (cls, attrs, timetag).  Only the ``local``
#: shared-memory backend emits it -- it must never cross a process
#: boundary as anything but a pickle (which would defeat its point),
#: but shard code accepts it everywhere so journals replay uniformly.
ADD_WME_REF = "+wr"
RESET = "reset"

#: Command tags (coordinator -> worker).
BATCH = "batch"
CHECKPOINT = "checkpoint"
RESTORE = "restore"
STOP = "stop"

#: Reply tags (worker -> coordinator).
OK = "ok"
RESTORED = "restored"
ERROR = "error"

INSERT = "i"
DELETE = "d"
#: Zero-copy insert edit: ``("I", instantiation)`` carries the live
#: Instantiation object.  Emitted only by the ``local`` shared-memory
#: backend, whose shards share the coordinator's address space.
INSERT_REF = "I"

#: An edit row: ("i", name, timetags, bindings) or ("d", name, timetags).
Edit = tuple
#: A stats row: (op_index, affected, activations, comparisons, tokens).
StatRow = tuple


def encode_wme(wme: WME) -> tuple:
    """Encode a WME for transfer: ``(ADD_WME, cls, attrs, timetag)``."""
    return (ADD_WME, wme.cls, dict(wme.attributes), wme.timetag)


def decode_wme(op: Sequence[Any]) -> WME:
    """Rebuild a timetagged WME from an ``ADD_WME`` op."""
    _, cls, attrs, timetag = op
    wme = WME(cls, attrs)
    wme.timetag = timetag
    return wme
