"""Supervision state for the shard pool: journals, checkpoints, failures.

The paper's Section 3.1 argues state-saving beats re-derivation because
maintaining match state incrementally (``c1``/``c2`` per change) is ~20x
cheaper than recomputing it (``c3``).  Crash recovery is the same trade
run in reverse: when a shard worker dies, its Rete state -- a
deterministic function of the op stream it has applied -- is re-derived
by replaying that stream into a fresh worker, and the cost of doing so
*is* ``c3``, measured live (``benchmarks/bench_fault_recovery.py``).
A periodic pickle checkpoint bounds the replay: recovery then pays one
unpickle plus the journal tail instead of the whole history.

:class:`ShardSupervisor` is the coordinator-side bookkeeping for that
story.  It does no I/O itself -- the executor owns pipes and processes
-- it owns the *facts* recovery needs:

* the per-shard **op journal**: every op batch a shard has successfully
  applied since its last checkpoint (truncated by checkpoints, and by
  ``reset`` ops, after which prior history is unreachable);
* the per-shard **checkpoint blob** (pickled :class:`ShardState`);
* per-shard **sequence numbers** -- the addresses fault injection keys
  on -- monotonic and never reused, so recovery cannot re-trigger the
  fault that killed a worker;
* **failure accounting**: consecutive-failure counts that drive the
  respawn -> demote escalation, recovery events, and the counters the
  metrics snapshot reports.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from .. import __name__ as _pkg  # noqa: F401 - keeps import graph explicit
from . import messages


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunables of the supervised executor.

    ``collect_deadline``
        Seconds the coordinator waits for a shard's batch reply before
        declaring it hung (``None`` waits forever -- the pre-supervision
        behaviour, kept available for debugging).
    ``recovery_deadline``
        Deadline for restore/checkpoint round-trips during recovery.
    ``checkpoint_every``
        Take a pickle checkpoint after this many applied batches
        (``None`` disables checkpointing; the journal then grows with
        the run and recovery is always a full replay).
    ``max_failures``
        Consecutive failures of one shard before it is demoted to an
        in-process inline shard (graceful degradation: the run always
        completes).
    """

    collect_deadline: Optional[float] = 30.0
    recovery_deadline: Optional[float] = 60.0
    checkpoint_every: Optional[int] = 256
    max_failures: int = 3

    def __post_init__(self) -> None:
        if self.collect_deadline <= 0:
            raise ValueError("collect_deadline must be positive seconds")
        if self.recovery_deadline <= 0:
            raise ValueError("recovery_deadline must be positive seconds")
        if self.max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 (or None)")


class ShardFailure(Exception):
    """A shard worker crashed (EOF) or hung (collect deadline expired)."""

    def __init__(self, shard: int, cause: str, detail: str = "") -> None:
        super().__init__(
            f"shard {shard} {cause}" + (f": {detail}" if detail else "")
        )
        self.shard = shard
        self.cause = cause
        self.detail = detail


@dataclass(frozen=True)
class RecoveryEvent:
    """One completed recovery action, the unit of the fault audit trail.

    ``action`` is ``"respawned"`` (a fresh worker process rebuilt by
    replay) or ``"demoted"`` (the shard now runs inline in the
    coordinator).  ``replay_seconds`` times the restore round-trip --
    checkpoint unpickle plus journal replay -- and ``total_seconds``
    the whole outage as the coordinator saw it, detection to recovered
    reply.
    """

    shard: int
    cause: str
    action: str
    seq: Optional[int]
    replayed_ops: int
    used_checkpoint: bool
    replay_seconds: float
    total_seconds: float
    attempts: int = 1

    def snapshot(self) -> dict:
        """JSON-ready row (stats RPC notices, chaos reports)."""
        return {
            "shard": self.shard,
            "cause": self.cause,
            "action": self.action,
            "seq": self.seq,
            "replayed_ops": self.replayed_ops,
            "used_checkpoint": self.used_checkpoint,
            "replay_seconds": self.replay_seconds,
            "total_seconds": self.total_seconds,
            "attempts": self.attempts,
        }


@dataclass
class ShardSupervisor:
    """Recovery bookkeeping for one executor's shard pool."""

    shard_count: int
    config: SupervisorConfig = field(default_factory=SupervisorConfig)

    def __post_init__(self) -> None:
        n = self.shard_count
        #: Ops applied since the last checkpoint (or ever), per shard.
        self.journals: list[list] = [[] for _ in range(n)]
        self.checkpoints: list[Optional[bytes]] = [None] * n
        #: Applied batches since the last checkpoint, per shard.
        self.since_checkpoint: list[int] = [0] * n
        #: Consecutive failures, per shard (reset by any success).
        self.failures: list[int] = [0] * n
        self.demoted: list[bool] = [False] * n
        self.events: list[RecoveryEvent] = []
        self.counters: dict[str, int] = {
            "crashes": 0,
            "hangs": 0,
            "respawns": 0,
            "demotions": 0,
            "checkpoints": 0,
            "replayed_ops": 0,
        }
        self.replay_seconds = 0.0
        self.checkpoint_seconds = 0.0
        self._next_seq: list[int] = [0] * n
        #: Pickled ``(RESTORE, checkpoint, journal)`` message per shard,
        #: invalidated whenever the journal or checkpoint moves.  Restore
        #: messages are the biggest thing on the wire (the journal holds
        #: whole productions), and one recovery can send the same bytes
        #: several times (respawn retries, post-error restores) -- the
        #: cache makes re-serialisation a once-per-journal-change cost.
        self._restore_cache: list[Optional[bytes]] = [None] * n

    # -- sequence numbers ----------------------------------------------------

    def next_seq(self, shard: int) -> int:
        """Allocate the next batch sequence number for *shard*.

        Monotonic and never reused: recovery re-dispatches carry no
        sequence number at all, so a scheduled fault fires exactly once.
        """
        seq = self._next_seq[shard]
        self._next_seq[shard] = seq + 1
        return seq

    # -- the journal ---------------------------------------------------------

    def committed(self, shard: int, ops: Sequence[Sequence[Any]]) -> None:
        """Record that *shard* successfully applied *ops* (one batch).

        A ``reset`` op makes all earlier history unreachable, so the
        journal restarts from it and the checkpoint is dropped.
        """
        last_reset = None
        for i, op in enumerate(ops):
            if op[0] == messages.RESET:
                last_reset = i
        if last_reset is not None:
            self.journals[shard] = list(ops[last_reset:])
            self.checkpoints[shard] = None
            self.since_checkpoint[shard] = 0
        else:
            self.journals[shard].extend(ops)
            self.since_checkpoint[shard] += 1
        self._restore_cache[shard] = None

    def recovery_payload(self, shard: int) -> tuple[Optional[bytes], list]:
        """What a replacement worker needs: (checkpoint blob, journal)."""
        return self.checkpoints[shard], list(self.journals[shard])

    def restore_message_bytes(self, shard: int) -> bytes:
        """The pickled restore command for *shard*, serialised at most
        once per journal/checkpoint change and reused across respawn
        retries and error-recovery restores."""
        cached = self._restore_cache[shard]
        if cached is None:
            cached = pickle.dumps(
                (messages.RESTORE, self.checkpoints[shard], list(self.journals[shard])),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            self._restore_cache[shard] = cached
        return cached

    def journal_length(self, shard: int) -> int:
        return len(self.journals[shard])

    # -- checkpoints ---------------------------------------------------------

    def wants_checkpoint(self, shard: int) -> bool:
        every = self.config.checkpoint_every
        return (
            every is not None
            and not self.demoted[shard]
            and self.since_checkpoint[shard] >= every
        )

    def store_checkpoint(self, shard: int, blob: bytes, seconds: float) -> None:
        self.checkpoints[shard] = blob
        self.journals[shard] = []
        self.since_checkpoint[shard] = 0
        self._restore_cache[shard] = None
        self.counters["checkpoints"] += 1
        self.checkpoint_seconds += seconds

    # -- failure accounting --------------------------------------------------

    def record_failure(self, shard: int, cause: str) -> int:
        """Count one failure; returns the consecutive-failure total."""
        key = "hangs" if cause == "hang" else "crashes"
        self.counters[key] += 1
        self.failures[shard] += 1
        return self.failures[shard]

    def record_recovery(self, event: RecoveryEvent) -> None:
        self.events.append(event)
        self.failures[event.shard] = 0
        self.replay_seconds += event.replay_seconds
        self.counters["replayed_ops"] += event.replayed_ops
        if event.action == "demoted":
            self.counters["demotions"] += 1
            self.demoted[event.shard] = True
        else:
            self.counters["respawns"] += 1

    def reset_failures(self, shard: int) -> None:
        self.failures[shard] = 0

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """JSON-ready rollup for the unified metrics snapshot."""
        return {
            **self.counters,
            "replay_seconds": self.replay_seconds,
            "checkpoint_seconds": self.checkpoint_seconds,
            "degraded_shards": [i for i, d in enumerate(self.demoted) if d],
            "journal_ops": [len(j) for j in self.journals],
            "checkpointed_shards": [
                i for i, blob in enumerate(self.checkpoints) if blob is not None
            ],
            "events": [event.snapshot() for event in self.events[-32:]],
        }
