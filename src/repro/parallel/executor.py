"""The live parallel match executor: Rete on a supervised process pool.

This is the repo's fourth matcher backend -- the first one that
*executes* match work in parallel instead of simulating it.  The design
maps the paper's Section 5 machine onto what CPython can actually do
(see ``examples/gil_wall.py``: threads hit the GIL, so concurrency
comes from processes):

* **Partitioned alpha/beta memories.**  Productions are distributed
  over shard workers (:mod:`repro.parallel.partition`); each worker
  compiles its share into a private Rete network, so every alpha
  memory, beta memory, and join lives in exactly one process.
* **Per-node locks by ownership.**  A node's memory is only ever
  touched by its owning worker, which serialises activations of one
  node (the paper's node-memory lock, uncontended by construction)
  while nodes in different shards execute truly concurrently.
* **A work queue mirroring the hardware task scheduler.**  The
  coordinator routes each working-memory change to the shards whose
  partitions contain a condition element of the WME's class (the
  partitioned alpha network's top level) and queues it; a *flush*
  dispatches every queued op batch, then collects conflict-set edits
  and measurement rows back.
* **A batch barrier per recognize--act cycle.**  Changes buffer while
  the RHS runs; reading :attr:`ParallelMatcher.conflict_set` (which the
  engine does at the top of every cycle, during conflict resolution)
  is the barrier that flushes them -- the same cycle-level barrier
  semantics the discrete-event simulator encodes in its batches.

The coordinator merges shard edit streams into the real
:class:`~repro.ops5.conflict.ConflictSet`.  Because shards hold
disjoint production sets, their edits are disjoint by production and
the merged set -- and therefore conflict resolution, firing order, and
every downstream result -- is bit-identical for every worker count,
including the inline ``workers=0`` mode that runs the same shard code
in-process.

**Supervision** (see :mod:`repro.parallel.supervisor` and
``docs/fault-tolerance.md``): collection waits with a deadline instead
of blocking forever, so a crashed worker (EOF on the pipe) or a hung
one (deadline expiry) surfaces as a :class:`ShardFailure`.  The
coordinator then kills the remains, spawns a replacement, rebuilds its
match state from the last checkpoint plus the op journal -- match state
is a deterministic function of the op stream (the paper's Section 3.1
premise), so the rebuilt shard is bit-identical -- and re-dispatches
the batch the failure interrupted.  After ``max_failures`` consecutive
failures a shard is *demoted* to an in-process inline shard, so the run
always completes.  Because the fault plan keys on batch sequence
numbers that recovery never reuses, injected faults fire exactly once
and the recovered run's conflict-set stream matches the fault-free
reference bit for bit.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Iterable, Optional, Sequence

from ..faults.plan import FaultPlan
from ..obs.recorder import NULL_RECORDER
from ..ops5.errors import Ops5Error
from ..ops5.conflict import ConflictSet
from ..ops5.matcher import ChangeRecord, Matcher, MatchStats
from ..ops5.production import Instantiation, Production
from ..ops5.wme import WME
from . import messages
from .partition import Partition, assign_productions, production_weight
from .supervisor import (
    RecoveryEvent,
    ShardFailure,
    ShardSupervisor,
    SupervisorConfig,
)
from .worker import ShardState, rebuild_state, shard_main


def default_worker_count() -> int:
    """Workers to use when unspecified: the host's cores, capped at 4."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        cpus = os.cpu_count() or 1
    return max(1, min(4, cpus))


def _context():
    """Prefer fork (cheap, no re-import); fall back to the default."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class _ProcessShard:
    """Coordinator-side handle for one worker process.

    All pipe I/O funnels through :meth:`_send` and :meth:`collect`, which
    translate the three ways a worker can disappear -- broken pipe on
    send, EOF on receive, silence past the deadline -- into a
    :class:`ShardFailure` naming the shard and the cause, so the
    executor's recovery path sees one exception type everywhere.
    """

    def __init__(self, ctx, index: int, fault_plan: Optional[FaultPlan] = None) -> None:
        self.index = index
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=shard_main,
            args=(child, index, fault_plan),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        self.process.start()
        child.close()

    def _send(self, payload: tuple) -> None:
        try:
            self.conn.send(payload)
        except (BrokenPipeError, OSError):
            raise ShardFailure(self.index, "crash", "pipe broken on send") from None

    def dispatch(self, ops: Sequence[Sequence[Any]], seq: Optional[int] = None) -> None:
        self._send((messages.BATCH, ops, seq))

    def collect(self, deadline: Optional[float] = None) -> tuple:
        """Receive one reply; *deadline* seconds of silence is a hang."""
        if deadline is not None:
            try:
                ready = self.conn.poll(deadline)
            except (OSError, EOFError):
                raise ShardFailure(self.index, "crash", "pipe closed") from None
            if not ready:
                raise ShardFailure(
                    self.index, "hang", f"no reply within {deadline:g}s"
                )
        try:
            return self.conn.recv()
        except EOFError:
            raise ShardFailure(self.index, "crash", "pipe reached EOF") from None

    def checkpoint(self, deadline: Optional[float] = None) -> Optional[bytes]:
        """Round-trip a checkpoint request; ``None`` if the worker declined."""
        self._send((messages.CHECKPOINT,))
        reply = self.collect(deadline)
        if reply[0] != messages.CHECKPOINT:
            return None
        return reply[1]

    def restore(
        self,
        checkpoint: Optional[bytes],
        journal: Sequence[Sequence[Any]],
        deadline: Optional[float] = None,
    ) -> int:
        """Rebuild the worker's state; returns the replayed op count."""
        self._send((messages.RESTORE, checkpoint, list(journal)))
        reply = self.collect(deadline)
        if reply[0] != messages.RESTORED:
            detail = reply[1] if len(reply) > 1 else repr(reply)
            raise ShardFailure(self.index, "crash", f"restore failed: {detail}")
        return reply[1]

    def stop(self) -> None:
        """Graceful stop, escalating to SIGTERM then SIGKILL.

        A worker wedged in a way SIGTERM cannot reach (e.g. SIGSTOPped)
        still gets reaped: SIGKILL acts even on stopped processes.  The
        pipe is closed on every path, including when the sends or joins
        themselves raise.
        """
        try:
            try:
                self.conn.send((messages.STOP,))
            except (BrokenPipeError, OSError):
                pass
            self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=5.0)
        finally:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def kill(self) -> None:
        """Reap the worker without ceremony (recovery path)."""
        try:
            self.process.terminate()
            self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=5.0)
        finally:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass


class _InlineShard:
    """A shard that runs in-process: same code, no IPC.

    Serves two roles: the ``workers=0`` serial reference configuration,
    and the *demotion* target -- a shard whose worker keeps dying is
    rebuilt from its journal into one of these, trading parallelism for
    completion.  Inline shards never consult the fault plan: a fault
    executed in-process would take the coordinator down with it.
    """

    def __init__(self, index: int, state: Optional[ShardState] = None) -> None:
        self.index = index
        self.state = state if state is not None else ShardState()
        self._reply: Optional[tuple] = None

    def dispatch(self, ops: Sequence[Sequence[Any]], seq: Optional[int] = None) -> None:
        edits, stat_rows = self.state.apply_batch(ops)
        self._reply = (messages.OK, edits, stat_rows)

    def collect(self, deadline: Optional[float] = None) -> tuple:
        reply, self._reply = self._reply, None
        assert reply is not None
        return reply

    def stop(self) -> None:
        self._reply = None


class WorkQueue:
    """Per-shard op queues plus the change log of the open batch.

    The software analogue of the paper's hardware task scheduler: it
    accepts routed ops, remembers which global change each WME op
    belongs to, and hands every shard its batch at dispatch time.
    """

    def __init__(self, shard_count: int) -> None:
        self.pending: list[list] = [[] for _ in range(shard_count)]
        #: Local WME-op position -> global change index, per shard.
        self.change_map: list[list[int]] = [[] for _ in range(shard_count)]
        #: (kind, wme_class) per global change in this batch.
        self.changes: list[tuple[str, str]] = []

    def push(self, shard: int, op: Sequence[Any], change: int | None = None) -> None:
        self.pending[shard].append(op)
        if change is not None:
            self.change_map[shard].append(change)

    def open_change(self, kind: str, wme_class: str) -> int:
        self.changes.append((kind, wme_class))
        return len(self.changes) - 1

    @property
    def dirty(self) -> bool:
        return bool(self.changes) or any(self.pending)

    def take(self) -> tuple[list[list], list[list[int]], list[tuple[str, str]]]:
        pending, change_map, changes = self.pending, self.change_map, self.changes
        count = len(pending)
        self.pending = [[] for _ in range(count)]
        self.change_map = [[] for _ in range(count)]
        self.changes = []
        return pending, change_map, changes


#: Backfill WME ops carry this change index: their (zero-work) stat rows
#: belong to no engine-visible change and are dropped at merge time.
_BACKFILL = -1


class ParallelMatcher(Matcher):
    """A :class:`~repro.ops5.matcher.Matcher` over a shard process pool.

    Parameters
    ----------
    workers:
        Number of shard processes.  ``0`` runs a single inline shard in
        this process (no ``multiprocessing`` at all) -- the degenerate
        serial configuration with identical semantics.  ``None`` picks
        :func:`default_worker_count`.
    recorder:
        Optional :class:`~repro.obs.Recorder`.  When enabled, every
        flush barrier records a coordinator span (lane 0) and one
        ``shard-batch`` span per dispatched shard on lane ``1 + shard``
        -- coordinator-observed wall-clock from dispatch to collection,
        with queue depths (ops per batch) and edit counts as args.
        Failures add ``shard-failure`` instants and ``shard-recovery``
        spans on the failed shard's lane.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`.  Worker processes
        consult it before serving each batch, keyed by the batch's
        sequence number, making crashes/hangs/slowdowns land at exact,
        reproducible points.  Inline shards (``workers=0`` and demoted
        shards) never consult it.
    supervisor:
        Optional :class:`~repro.parallel.supervisor.SupervisorConfig`
        overriding collect deadlines, checkpoint cadence, and the
        demotion threshold.

    Use as a context manager (or call :meth:`close`) so the worker
    processes are reaped deterministically; they are daemonic, so an
    unclosed matcher still cannot outlive the interpreter.
    """

    def __init__(
        self,
        workers: int | None = None,
        recorder=None,
        fault_plan: Optional[FaultPlan] = None,
        supervisor: Optional[SupervisorConfig] = None,
    ) -> None:
        # Matcher.__init__ is deliberately not called: `conflict_set` and
        # `stats` are flush-on-read properties here, not attributes.
        if workers is None:
            workers = default_worker_count()
        if workers < 0:
            raise Ops5Error("workers must be >= 0")
        self.workers = workers
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.fault_plan = fault_plan
        self._shard_count = max(1, workers)
        self._supervisor = ShardSupervisor(
            self._shard_count, supervisor if supervisor is not None else SupervisorConfig()
        )
        self._conflict_set = ConflictSet()
        self._stats = MatchStats()
        self._queue = WorkQueue(self._shard_count)
        self._shards: list[_ProcessShard | _InlineShard] | None = None
        self._ctx = None
        self._productions: dict[str, Production] = {}
        #: Production name -> owning shard index.
        self._assignment: dict[str, int] = {}
        #: Static weight currently assigned to each shard.
        self._weights: list[float] = [0.0] * self._shard_count
        #: Classes each shard has ever subscribed to.  Sticky: once a
        #: shard hears about a class it keeps receiving its changes, so
        #: its working-memory view never silently goes stale.
        self._subscribed: list[set[str]] = [set() for _ in range(self._shard_count)]
        #: Productions registered before the pool starts; partitioned in
        #: one balanced pass at start time.
        self._unpartitioned: list[Production] = []
        #: Live WMEs by timetag (the coordinator's working-memory view).
        self._wmes: dict[int, WME] = {}
        self._pending_removals: list[int] = []
        self._closed = False

    # -- pool lifecycle ------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._shards is not None

    def _ensure_started(self) -> None:
        if self._shards is not None:
            return
        if self._closed:
            raise Ops5Error("this ParallelMatcher has been closed")
        if self.workers == 0:
            self._shards = [_InlineShard(0)]
        else:
            self._ctx = _context()
            self._shards = [
                _ProcessShard(self._ctx, i, self.fault_plan)
                for i in range(self._shard_count)
            ]
        for partition in assign_productions(self._unpartitioned, self._shard_count):
            for production in partition.productions:
                self._place(production, partition.index)
        self._unpartitioned = []

    def close(self) -> None:
        """Stop the worker pool.  Further matching raises; stats and the
        last flushed conflict set stay readable."""
        if self._shards is not None:
            for shard in self._shards:
                shard.stop()
            self._shards = None
        self._closed = True

    def __enter__(self) -> "ParallelMatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- placement ------------------------------------------------------------

    def _place(self, production: Production, shard: int) -> None:
        """Queue compilation of *production* on *shard* (with backfill)."""
        self._assignment[production.name] = shard
        self._weights[shard] += production_weight(production)
        classes = {ce.cls for ce in production.conditions}
        new_classes = classes - self._subscribed[shard]
        # Backfill: the shard must hold the current WMEs of any class it
        # has not been hearing about, or the new rule would match against
        # a partial working memory.
        for cls in sorted(new_classes):
            for timetag in sorted(self._wmes):
                wme = self._wmes[timetag]
                if wme.cls == cls:
                    self._queue.push(
                        shard, messages.encode_wme(wme), change=_BACKFILL
                    )
        self._subscribed[shard] |= classes
        self._queue.push(shard, (messages.ADD_PRODUCTION, production))

    def _route(self, cls: str) -> list[int]:
        return [
            i
            for i in range(self._shard_count)
            if cls in self._subscribed[i]
        ]

    # -- Matcher interface -----------------------------------------------------

    @property
    def productions(self) -> Iterable[Production]:
        return self._productions.values()

    def add_production(self, production: Production) -> None:
        if production.name in self._productions:
            raise Ops5Error(f"production {production.name!r} already registered")
        self._productions[production.name] = production
        if self._shards is None:
            self._unpartitioned.append(production)
            return
        lightest = min(range(self._shard_count), key=lambda i: (self._weights[i], i))
        self._place(production, lightest)

    def remove_production(self, name: str) -> None:
        if name not in self._productions:
            raise Ops5Error(f"no production named {name!r}")
        del self._productions[name]
        if self._shards is None:
            self._unpartitioned = [p for p in self._unpartitioned if p.name != name]
            return
        shard = self._assignment.pop(name)
        self._queue.push(shard, (messages.REMOVE_PRODUCTION, name))

    def add_wme(self, wme: WME) -> None:
        self._ensure_started()
        self._wmes[wme.timetag] = wme
        change = self._queue.open_change("add", wme.cls)
        for shard in self._route(wme.cls):
            self._queue.push(shard, messages.encode_wme(wme), change=change)

    def remove_wme(self, wme: WME) -> None:
        self._ensure_started()
        if wme.timetag not in self._wmes:
            raise Ops5Error(f"WME {wme!r} was never added to this matcher")
        self._pending_removals.append(wme.timetag)
        change = self._queue.open_change("remove", wme.cls)
        for shard in self._route(wme.cls):
            self._queue.push(shard, (messages.REMOVE_WME, wme.timetag), change=change)

    # -- the flush barrier -------------------------------------------------------

    @property
    def conflict_set(self) -> ConflictSet:
        """The merged conflict set; reading it is the cycle barrier."""
        self.flush()
        return self._conflict_set

    @property
    def stats(self) -> MatchStats:
        self.flush()
        return self._stats

    def peek_stats(self) -> MatchStats:
        """Stats accumulated so far, *without* triggering a flush.

        The flush barrier belongs to the engine's cycle; metrics
        snapshots taken from another thread (the serve layer's ``stats``
        RPC) must not move it.
        """
        return self._stats

    def flush(self) -> None:
        """Dispatch all queued ops and merge the shards' results.

        Shard failures (crash, hang) are recovered *inside* the flush --
        the barrier completes with a bit-identical merged result, just
        later.  Engine errors reported by a worker (a bad op) restore
        the worker from the journal so the pool survives, then raise
        after every other shard's reply has been drained, so no stale
        reply can desynchronise the next flush.
        """
        if self._unpartitioned and self._shards is None:
            self._ensure_started()
        if self._shards is None or not self._queue.dirty:
            return
        rec = self.recorder
        flush_start = rec.now() if rec.enabled else 0
        pending, change_maps, changes = self._queue.take()
        #: Insert edits suppressed because their production was removed
        #: in this same batch; the paired delete is excused, nothing else.
        self._skipped_inserts: set[tuple] = set()

        active = [i for i, ops in enumerate(pending) if ops]
        dispatch_at: dict[int, int] = {}
        seqs: dict[int, int] = {}
        for i in active:
            if rec.enabled:
                dispatch_at[i] = rec.now()
            seqs[i] = self._supervisor.next_seq(i)
            try:
                self._shards[i].dispatch(pending[i], seqs[i])
            except ShardFailure as failure:
                # Worker died before this flush (e.g. crashed between
                # cycles); recover and hand the batch to the replacement.
                self._recover(failure, seq=seqs[i], redispatch=pending[i])

        merged = [
            ChangeRecord(kind=kind, wme_class=cls) for kind, cls in changes
        ]
        errors: list[RuntimeError] = []
        for i in active:
            edits, stat_rows, error = self._collect_shard(i, pending[i], seqs[i])
            if error is not None:
                errors.append(error)
                continue
            if rec.enabled:
                # Coordinator-observed shard-batch wall-clock: dispatch
                # to collection, serialised by collection order.
                rec.complete(
                    "shard-batch",
                    "parallel",
                    start=dispatch_at[i],
                    duration=rec.now() - dispatch_at[i],
                    tid=1 + i,
                    args={"shard": i, "ops": len(pending[i]), "edits": len(edits)},
                )
            self._merge_edits(edits)
            for local_index, affected, activations, comparisons, tokens in stat_rows:
                change = change_maps[i][local_index] if local_index < len(
                    change_maps[i]
                ) else _BACKFILL
                if change == _BACKFILL:
                    continue
                record = merged[change]
                record.affected_productions += affected
                record.node_activations += activations
                record.comparisons += comparisons
                record.tokens_built += tokens
        for record in merged:
            self._stats.record(record)

        for timetag in self._pending_removals:
            self._wmes.pop(timetag, None)
        self._pending_removals = []

        self._maybe_checkpoint(active)

        if rec.enabled:
            rec.complete(
                "flush",
                "parallel",
                start=flush_start,
                duration=rec.now() - flush_start,
                tid=0,
                args={
                    "changes": len(changes),
                    "shards_active": len(active),
                    "ops": sum(len(pending[i]) for i in active),
                },
            )
        if errors:
            raise errors[0]

    def _collect_shard(
        self, i: int, ops: Sequence[Sequence[Any]], seq: int
    ) -> tuple[list, list, Optional[RuntimeError]]:
        """Collect shard *i*'s reply for *ops*, recovering as needed.

        Returns ``(edits, stat_rows, error)``; ``error`` is set for an
        engine error the worker reported (the batch is then *not*
        journalled, and the worker has been restored to pre-batch state).
        """
        config = self._supervisor.config
        while True:
            shard = self._shards[i]
            if isinstance(shard, _InlineShard):
                reply = shard.collect()
            else:
                try:
                    reply = shard.collect(config.collect_deadline)
                except ShardFailure as failure:
                    self._recover(failure, seq=seq, redispatch=ops)
                    continue
            if reply[0] == messages.OK:
                self._supervisor.committed(i, ops)
                self._supervisor.reset_failures(i)
                return reply[1], reply[2], None
            # An engine error inside the batch: the worker reset itself
            # to a fresh state; put its journalled state back so the
            # pool stays usable, then report the error to the caller.
            error = RuntimeError(
                f"shard worker {i} failed: {reply[1]}\n{reply[2]}"
            )
            self._restore_worker(i)
            return [], [], error

    # -- recovery ---------------------------------------------------------------

    def _recover(
        self,
        failure: ShardFailure,
        seq: Optional[int],
        redispatch: Optional[Sequence[Sequence[Any]]],
    ) -> None:
        """Replace a failed shard worker and rebuild its match state.

        Respawns a fresh process and replays checkpoint + journal into
        it; after ``max_failures`` consecutive failures the shard is
        demoted to an inline shard instead (same rebuild, no process).
        *redispatch* is the batch the failure interrupted -- it was
        never journalled, so the rebuilt state predates it and it is
        re-sent (with no sequence number: injected faults never refire).
        """
        i = failure.shard
        sup = self._supervisor
        rec = self.recorder
        failures = sup.record_failure(i, failure.cause)
        if rec.enabled:
            rec.instant(
                "shard-failure",
                "faults",
                tid=1 + i,
                shard=i,
                cause=failure.cause,
                detail=failure.detail,
                consecutive=failures,
            )
        started = time.perf_counter()
        recovery_start = rec.now() if rec.enabled else 0
        shard = self._shards[i]
        if isinstance(shard, _ProcessShard):
            shard.kill()
        checkpoint, journal = sup.recovery_payload(i)
        attempts = 0
        while True:
            attempts += 1
            if failures >= sup.config.max_failures:
                replay_started = time.perf_counter()
                state = rebuild_state(checkpoint, journal)
                replay_seconds = time.perf_counter() - replay_started
                self._shards[i] = _InlineShard(i, state)
                action = "demoted"
                break
            if self._ctx is None:  # pragma: no cover - workers=0 guard
                self._ctx = _context()
            replacement = _ProcessShard(self._ctx, i, self.fault_plan)
            try:
                replay_started = time.perf_counter()
                replacement.restore(
                    checkpoint, journal, sup.config.recovery_deadline
                )
                replay_seconds = time.perf_counter() - replay_started
            except ShardFailure as again:
                # The replacement died during restore; count it and
                # either try once more or fall through to demotion.
                replacement.kill()
                failures = sup.record_failure(i, again.cause)
                continue
            self._shards[i] = replacement
            action = "respawned"
            break
        if redispatch is not None:
            self._shards[i].dispatch(list(redispatch), None)
        event = RecoveryEvent(
            shard=i,
            cause=failure.cause,
            action=action,
            seq=seq,
            replayed_ops=len(journal),
            used_checkpoint=checkpoint is not None,
            replay_seconds=replay_seconds,
            total_seconds=time.perf_counter() - started,
            attempts=attempts,
        )
        sup.record_recovery(event)
        if rec.enabled:
            rec.complete(
                "shard-recovery",
                "faults",
                start=recovery_start,
                duration=rec.now() - recovery_start,
                tid=1 + i,
                args=event.snapshot(),
            )

    def _restore_worker(self, i: int) -> None:
        """Put shard *i*'s journalled state back after an error reply."""
        shard = self._shards[i]
        if not isinstance(shard, _ProcessShard):
            return
        checkpoint, journal = self._supervisor.recovery_payload(i)
        try:
            shard.restore(
                checkpoint, journal, self._supervisor.config.recovery_deadline
            )
        except ShardFailure as failure:
            self._recover(failure, seq=None, redispatch=None)

    def _maybe_checkpoint(self, shards: Iterable[int]) -> None:
        """Take due checkpoints (only ever at a batch boundary, when the
        workers' edit journals are drained -- state, never output)."""
        sup = self._supervisor
        for i in shards:
            if not sup.wants_checkpoint(i):
                continue
            shard = self._shards[i]
            started = time.perf_counter()
            if isinstance(shard, _InlineShard):
                blob = shard.state.checkpoint()
            else:
                try:
                    blob = shard.checkpoint(sup.config.recovery_deadline)
                except ShardFailure as failure:
                    self._recover(failure, seq=None, redispatch=None)
                    continue
            if blob is not None:
                sup.store_checkpoint(i, blob, time.perf_counter() - started)

    # -- bulk control ----------------------------------------------------------

    def clear(self) -> None:
        """Drop all productions and working memory (pool stays warm).

        Lets one pool serve many small programs -- the differential test
        harness loads hundreds of generated programs through a single
        matcher without re-forking workers.
        """
        # Undispatched ops are moot once every shard resets; drop them.
        self._queue = WorkQueue(self._shard_count)
        self._conflict_set = ConflictSet()
        self._stats = MatchStats()
        self._productions = {}
        self._assignment = {}
        self._weights = [0.0] * self._shard_count
        self._subscribed = [set() for _ in range(self._shard_count)]
        self._unpartitioned = []
        self._wmes = {}
        self._pending_removals = []
        if self._shards is not None:
            for i in range(self._shard_count):
                self._queue.push(i, (messages.RESET,))
            self.flush()

    # -- introspection ----------------------------------------------------------

    def fault_events(self) -> list[RecoveryEvent]:
        """All recovery events so far, in occurrence order."""
        return list(self._supervisor.events)

    def fault_summary(self) -> dict:
        """JSON-ready rollup of failures, recoveries, and their costs."""
        return self._supervisor.summary()

    @property
    def degraded_shards(self) -> list[int]:
        """Indices of shards demoted to inline execution."""
        return [i for i, down in enumerate(self._supervisor.demoted) if down]

    def partition_snapshot(self) -> list[Partition]:
        """The current production -> shard distribution.

        Before the pool starts this previews the balanced assignment the
        start will perform; afterwards it reports actual placement.
        """
        if self._unpartitioned:
            return assign_productions(self._unpartitioned, self._shard_count)
        partitions = [Partition(i) for i in range(self._shard_count)]
        for name, shard in sorted(self._assignment.items()):
            partitions[shard].productions.append(self._productions[name])
            partitions[shard].weight += production_weight(self._productions[name])
        for i, down in enumerate(self._supervisor.demoted):
            partitions[i].degraded = down
        return partitions

    def _merge_edits(self, edits: Sequence[tuple]) -> None:
        for edit in edits:
            if edit[0] == messages.INSERT:
                _, name, timetags, bindings = edit
                production = self._productions.get(name)
                if production is None:
                    # The production was removed after this WME op was
                    # queued but before the flush; the shard's "-p"
                    # retraction follows in the same edit stream, so
                    # suppress the insert and excuse its paired delete.
                    self._skipped_inserts.add((name, tuple(timetags)))
                    continue
                wmes = tuple(self._wmes[t] for t in timetags)
                self._conflict_set.insert(Instantiation(production, wmes, bindings))
            else:
                _, name, timetags = edit
                key = (name, tuple(timetags))
                if key in self._skipped_inserts:
                    self._skipped_inserts.discard(key)
                    continue
                self._conflict_set.delete_key(key)
