"""The live parallel match executor: Rete on a real process pool.

This is the repo's fourth matcher backend -- the first one that
*executes* match work in parallel instead of simulating it.  The design
maps the paper's Section 5 machine onto what CPython can actually do
(see ``examples/gil_wall.py``: threads hit the GIL, so concurrency
comes from processes):

* **Partitioned alpha/beta memories.**  Productions are distributed
  over shard workers (:mod:`repro.parallel.partition`); each worker
  compiles its share into a private Rete network, so every alpha
  memory, beta memory, and join lives in exactly one process.
* **Per-node locks by ownership.**  A node's memory is only ever
  touched by its owning worker, which serialises activations of one
  node (the paper's node-memory lock, uncontended by construction)
  while nodes in different shards execute truly concurrently.
* **A work queue mirroring the hardware task scheduler.**  The
  coordinator routes each working-memory change to the shards whose
  partitions contain a condition element of the WME's class (the
  partitioned alpha network's top level) and queues it; a *flush*
  dispatches every queued op batch, then collects conflict-set edits
  and measurement rows back.
* **A batch barrier per recognize--act cycle.**  Changes buffer while
  the RHS runs; reading :attr:`ParallelMatcher.conflict_set` (which the
  engine does at the top of every cycle, during conflict resolution)
  is the barrier that flushes them -- the same cycle-level barrier
  semantics the discrete-event simulator encodes in its batches.

The coordinator merges shard edit streams into the real
:class:`~repro.ops5.conflict.ConflictSet`.  Because shards hold
disjoint production sets, their edits are disjoint by production and
the merged set -- and therefore conflict resolution, firing order, and
every downstream result -- is bit-identical for every worker count,
including the inline ``workers=0`` mode that runs the same shard code
in-process.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Iterable, Sequence

from ..obs.recorder import NULL_RECORDER
from ..ops5.errors import Ops5Error
from ..ops5.conflict import ConflictSet
from ..ops5.matcher import ChangeRecord, Matcher, MatchStats
from ..ops5.production import Instantiation, Production
from ..ops5.wme import WME
from . import messages
from .partition import Partition, assign_productions, production_weight
from .worker import ShardState, shard_main


def default_worker_count() -> int:
    """Workers to use when unspecified: the host's cores, capped at 4."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        cpus = os.cpu_count() or 1
    return max(1, min(4, cpus))


def _context():
    """Prefer fork (cheap, no re-import); fall back to the default."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class _ProcessShard:
    """Coordinator-side handle for one worker process."""

    def __init__(self, ctx, index: int) -> None:
        self.index = index
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=shard_main, args=(child,), daemon=True, name=f"repro-shard-{index}"
        )
        self.process.start()
        child.close()

    def dispatch(self, ops: Sequence[Sequence[Any]]) -> None:
        self.conn.send(("batch", ops))

    def collect(self) -> tuple[list, list]:
        try:
            reply = self.conn.recv()
        except EOFError:
            raise RuntimeError(f"shard worker {self.index} died") from None
        if reply[0] == "error":
            raise RuntimeError(
                f"shard worker {self.index} failed: {reply[1]}\n{reply[2]}"
            )
        return reply[1], reply[2]

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
        self.conn.close()


class _InlineShard:
    """A shard that runs in-process (``workers=0``): same code, no IPC.

    The inline mode is the executor's own serial reference -- it goes
    through the identical routing, batching, and merge path, so timing
    it against N process shards isolates exactly the parallel part.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.state = ShardState()
        self._reply: tuple[list, list] | None = None

    def dispatch(self, ops: Sequence[Sequence[Any]]) -> None:
        self._reply = self.state.apply_batch(ops)

    def collect(self) -> tuple[list, list]:
        reply, self._reply = self._reply, None
        assert reply is not None
        return reply

    def stop(self) -> None:
        self._reply = None


class WorkQueue:
    """Per-shard op queues plus the change log of the open batch.

    The software analogue of the paper's hardware task scheduler: it
    accepts routed ops, remembers which global change each WME op
    belongs to, and hands every shard its batch at dispatch time.
    """

    def __init__(self, shard_count: int) -> None:
        self.pending: list[list] = [[] for _ in range(shard_count)]
        #: Local WME-op position -> global change index, per shard.
        self.change_map: list[list[int]] = [[] for _ in range(shard_count)]
        #: (kind, wme_class) per global change in this batch.
        self.changes: list[tuple[str, str]] = []

    def push(self, shard: int, op: Sequence[Any], change: int | None = None) -> None:
        self.pending[shard].append(op)
        if change is not None:
            self.change_map[shard].append(change)

    def open_change(self, kind: str, wme_class: str) -> int:
        self.changes.append((kind, wme_class))
        return len(self.changes) - 1

    @property
    def dirty(self) -> bool:
        return bool(self.changes) or any(self.pending)

    def take(self) -> tuple[list[list], list[list[int]], list[tuple[str, str]]]:
        pending, change_map, changes = self.pending, self.change_map, self.changes
        count = len(pending)
        self.pending = [[] for _ in range(count)]
        self.change_map = [[] for _ in range(count)]
        self.changes = []
        return pending, change_map, changes


#: Backfill WME ops carry this change index: their (zero-work) stat rows
#: belong to no engine-visible change and are dropped at merge time.
_BACKFILL = -1


class ParallelMatcher(Matcher):
    """A :class:`~repro.ops5.matcher.Matcher` over a shard process pool.

    Parameters
    ----------
    workers:
        Number of shard processes.  ``0`` runs a single inline shard in
        this process (no ``multiprocessing`` at all) -- the degenerate
        serial configuration with identical semantics.  ``None`` picks
        :func:`default_worker_count`.
    recorder:
        Optional :class:`~repro.obs.Recorder`.  When enabled, every
        flush barrier records a coordinator span (lane 0) and one
        ``shard-batch`` span per dispatched shard on lane ``1 + shard``
        -- coordinator-observed wall-clock from dispatch to collection,
        with queue depths (ops per batch) and edit counts as args.  A
        Chrome-trace export of those lanes is the *measured* shard
        schedule, Perfetto-comparable with the psim Gantt prediction.

    Use as a context manager (or call :meth:`close`) so the worker
    processes are reaped deterministically; they are daemonic, so an
    unclosed matcher still cannot outlive the interpreter.
    """

    def __init__(self, workers: int | None = None, recorder=None) -> None:
        # Matcher.__init__ is deliberately not called: `conflict_set` and
        # `stats` are flush-on-read properties here, not attributes.
        if workers is None:
            workers = default_worker_count()
        if workers < 0:
            raise Ops5Error("workers must be >= 0")
        self.workers = workers
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._shard_count = max(1, workers)
        self._conflict_set = ConflictSet()
        self._stats = MatchStats()
        self._queue = WorkQueue(self._shard_count)
        self._shards: list[_ProcessShard | _InlineShard] | None = None
        self._productions: dict[str, Production] = {}
        #: Production name -> owning shard index.
        self._assignment: dict[str, int] = {}
        #: Static weight currently assigned to each shard.
        self._weights: list[float] = [0.0] * self._shard_count
        #: Classes each shard has ever subscribed to.  Sticky: once a
        #: shard hears about a class it keeps receiving its changes, so
        #: its working-memory view never silently goes stale.
        self._subscribed: list[set[str]] = [set() for _ in range(self._shard_count)]
        #: Productions registered before the pool starts; partitioned in
        #: one balanced pass at start time.
        self._unpartitioned: list[Production] = []
        #: Live WMEs by timetag (the coordinator's working-memory view).
        self._wmes: dict[int, WME] = {}
        self._pending_removals: list[int] = []
        self._closed = False

    # -- pool lifecycle ------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._shards is not None

    def _ensure_started(self) -> None:
        if self._shards is not None:
            return
        if self._closed:
            raise Ops5Error("this ParallelMatcher has been closed")
        if self.workers == 0:
            self._shards = [_InlineShard(0)]
        else:
            ctx = _context()
            self._shards = [_ProcessShard(ctx, i) for i in range(self._shard_count)]
        for partition in assign_productions(self._unpartitioned, self._shard_count):
            for production in partition.productions:
                self._place(production, partition.index)
        self._unpartitioned = []

    def close(self) -> None:
        """Stop the worker pool.  Further matching raises; stats and the
        last flushed conflict set stay readable."""
        if self._shards is not None:
            for shard in self._shards:
                shard.stop()
            self._shards = None
        self._closed = True

    def __enter__(self) -> "ParallelMatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- placement ------------------------------------------------------------

    def _place(self, production: Production, shard: int) -> None:
        """Queue compilation of *production* on *shard* (with backfill)."""
        self._assignment[production.name] = shard
        self._weights[shard] += production_weight(production)
        classes = {ce.cls for ce in production.conditions}
        new_classes = classes - self._subscribed[shard]
        # Backfill: the shard must hold the current WMEs of any class it
        # has not been hearing about, or the new rule would match against
        # a partial working memory.
        for cls in sorted(new_classes):
            for timetag in sorted(self._wmes):
                wme = self._wmes[timetag]
                if wme.cls == cls:
                    self._queue.push(
                        shard, messages.encode_wme(wme), change=_BACKFILL
                    )
        self._subscribed[shard] |= classes
        self._queue.push(shard, (messages.ADD_PRODUCTION, production))

    def _route(self, cls: str) -> list[int]:
        return [
            i
            for i in range(self._shard_count)
            if cls in self._subscribed[i]
        ]

    # -- Matcher interface -----------------------------------------------------

    @property
    def productions(self) -> Iterable[Production]:
        return self._productions.values()

    def add_production(self, production: Production) -> None:
        if production.name in self._productions:
            raise Ops5Error(f"production {production.name!r} already registered")
        self._productions[production.name] = production
        if self._shards is None:
            self._unpartitioned.append(production)
            return
        lightest = min(range(self._shard_count), key=lambda i: (self._weights[i], i))
        self._place(production, lightest)

    def remove_production(self, name: str) -> None:
        if name not in self._productions:
            raise Ops5Error(f"no production named {name!r}")
        del self._productions[name]
        if self._shards is None:
            self._unpartitioned = [p for p in self._unpartitioned if p.name != name]
            return
        shard = self._assignment.pop(name)
        self._queue.push(shard, (messages.REMOVE_PRODUCTION, name))

    def add_wme(self, wme: WME) -> None:
        self._ensure_started()
        self._wmes[wme.timetag] = wme
        change = self._queue.open_change("add", wme.cls)
        for shard in self._route(wme.cls):
            self._queue.push(shard, messages.encode_wme(wme), change=change)

    def remove_wme(self, wme: WME) -> None:
        self._ensure_started()
        if wme.timetag not in self._wmes:
            raise Ops5Error(f"WME {wme!r} was never added to this matcher")
        self._pending_removals.append(wme.timetag)
        change = self._queue.open_change("remove", wme.cls)
        for shard in self._route(wme.cls):
            self._queue.push(shard, (messages.REMOVE_WME, wme.timetag), change=change)

    # -- the flush barrier -------------------------------------------------------

    @property
    def conflict_set(self) -> ConflictSet:
        """The merged conflict set; reading it is the cycle barrier."""
        self.flush()
        return self._conflict_set

    @property
    def stats(self) -> MatchStats:
        self.flush()
        return self._stats

    def peek_stats(self) -> MatchStats:
        """Stats accumulated so far, *without* triggering a flush.

        The flush barrier belongs to the engine's cycle; metrics
        snapshots taken from another thread (the serve layer's ``stats``
        RPC) must not move it.
        """
        return self._stats

    def flush(self) -> None:
        """Dispatch all queued ops and merge the shards' results."""
        if self._unpartitioned and self._shards is None:
            self._ensure_started()
        if self._shards is None or not self._queue.dirty:
            return
        rec = self.recorder
        flush_start = rec.now() if rec.enabled else 0
        pending, change_maps, changes = self._queue.take()
        #: Insert edits suppressed because their production was removed
        #: in this same batch; the paired delete is excused, nothing else.
        self._skipped_inserts: set[tuple] = set()

        active = [i for i, ops in enumerate(pending) if ops]
        dispatch_at: dict[int, int] = {}
        for i in active:
            if rec.enabled:
                dispatch_at[i] = rec.now()
            self._shards[i].dispatch(pending[i])

        merged = [
            ChangeRecord(kind=kind, wme_class=cls) for kind, cls in changes
        ]
        for i in active:
            edits, stat_rows = self._shards[i].collect()
            if rec.enabled:
                # Coordinator-observed shard-batch wall-clock: dispatch
                # to collection, serialised by collection order.
                rec.complete(
                    "shard-batch",
                    "parallel",
                    start=dispatch_at[i],
                    duration=rec.now() - dispatch_at[i],
                    tid=1 + i,
                    args={"shard": i, "ops": len(pending[i]), "edits": len(edits)},
                )
            self._merge_edits(edits)
            for local_index, affected, activations, comparisons, tokens in stat_rows:
                change = change_maps[i][local_index] if local_index < len(
                    change_maps[i]
                ) else _BACKFILL
                if change == _BACKFILL:
                    continue
                record = merged[change]
                record.affected_productions += affected
                record.node_activations += activations
                record.comparisons += comparisons
                record.tokens_built += tokens
        for record in merged:
            self._stats.record(record)

        for timetag in self._pending_removals:
            self._wmes.pop(timetag, None)
        self._pending_removals = []

        if rec.enabled:
            rec.complete(
                "flush",
                "parallel",
                start=flush_start,
                duration=rec.now() - flush_start,
                tid=0,
                args={
                    "changes": len(changes),
                    "shards_active": len(active),
                    "ops": sum(len(pending[i]) for i in active),
                },
            )

    def _merge_edits(self, edits: Sequence[tuple]) -> None:
        for edit in edits:
            if edit[0] == messages.INSERT:
                _, name, timetags, bindings = edit
                production = self._productions.get(name)
                if production is None:
                    # The production was removed after this WME op was
                    # queued but before the flush; the shard's "-p"
                    # retraction follows in the same edit stream, so
                    # suppress the insert and excuse its paired delete.
                    self._skipped_inserts.add((name, tuple(timetags)))
                    continue
                wmes = tuple(self._wmes[t] for t in timetags)
                self._conflict_set.insert(Instantiation(production, wmes, bindings))
            else:
                _, name, timetags = edit
                key = (name, tuple(timetags))
                if key in self._skipped_inserts:
                    self._skipped_inserts.discard(key)
                    continue
                self._conflict_set.delete_key(key)

    # -- bulk control ----------------------------------------------------------

    def clear(self) -> None:
        """Drop all productions and working memory (pool stays warm).

        Lets one pool serve many small programs -- the differential test
        harness loads hundreds of generated programs through a single
        matcher without re-forking workers.
        """
        # Undispatched ops are moot once every shard resets; drop them.
        self._queue = WorkQueue(self._shard_count)
        self._conflict_set = ConflictSet()
        self._stats = MatchStats()
        self._productions = {}
        self._assignment = {}
        self._weights = [0.0] * self._shard_count
        self._subscribed = [set() for _ in range(self._shard_count)]
        self._unpartitioned = []
        self._wmes = {}
        self._pending_removals = []
        if self._shards is not None:
            for i in range(self._shard_count):
                self._queue.push(i, (messages.RESET,))
            self.flush()

    # -- introspection ----------------------------------------------------------

    def partition_snapshot(self) -> list[Partition]:
        """The current production -> shard distribution.

        Before the pool starts this previews the balanced assignment the
        start will perform; afterwards it reports actual placement.
        """
        if self._unpartitioned:
            return assign_productions(self._unpartitioned, self._shard_count)
        partitions = [Partition(i) for i in range(self._shard_count)]
        for name, shard in sorted(self._assignment.items()):
            partitions[shard].productions.append(self._productions[name])
            partitions[shard].weight += production_weight(self._productions[name])
        return partitions
