"""The live parallel match executor: Rete on a supervised process pool.

This is the repo's fourth matcher backend -- the first one that
*executes* match work in parallel instead of simulating it.  The design
maps the paper's Section 5 machine onto what CPython can actually do
(see ``examples/gil_wall.py``: threads hit the GIL, so concurrency
comes from processes):

* **Partitioned alpha/beta memories.**  Productions are distributed
  over shard workers (:mod:`repro.parallel.partition`); each worker
  compiles its share into a private Rete network, so every alpha
  memory, beta memory, and join lives in exactly one process.
* **Per-node locks by ownership.**  A node's memory is only ever
  touched by its owning worker, which serialises activations of one
  node (the paper's node-memory lock, uncontended by construction)
  while nodes in different shards execute truly concurrently.
* **A work queue mirroring the hardware task scheduler.**  The
  coordinator routes each working-memory change to the shards whose
  partitions contain a condition element of the WME's class (the
  partitioned alpha network's top level) and queues it; a *flush*
  dispatches every queued op batch, then collects conflict-set edits
  and measurement rows back.
* **A batch barrier per recognize--act cycle.**  Changes buffer while
  the RHS runs; reading :attr:`ParallelMatcher.conflict_set` (which the
  engine does at the top of every cycle, during conflict resolution)
  is the barrier that flushes them -- the same cycle-level barrier
  semantics the discrete-event simulator encodes in its batches.

The coordinator merges shard edit streams into the real
:class:`~repro.ops5.conflict.ConflictSet`.  Because shards hold
disjoint production sets, their edits are disjoint by production and
the merged set -- and therefore conflict resolution, firing order, and
every downstream result -- is bit-identical for every worker count,
including the inline ``workers=0`` mode that runs the same shard code
in-process.

**Supervision** (see :mod:`repro.parallel.supervisor` and
``docs/fault-tolerance.md``): collection waits with a deadline instead
of blocking forever, so a crashed worker (EOF on the pipe) or a hung
one (deadline expiry) surfaces as a :class:`ShardFailure`.  The
coordinator then kills the remains, spawns a replacement, rebuilds its
match state from the last checkpoint plus the op journal -- match state
is a deterministic function of the op stream (the paper's Section 3.1
premise), so the rebuilt shard is bit-identical -- and re-dispatches
the batch the failure interrupted.  After ``max_failures`` consecutive
failures a shard is *demoted* to an in-process inline shard, so the run
always completes.  Because the fault plan keys on batch sequence
numbers that recovery never reuses, injected faults fire exactly once
and the recovered run's conflict-set stream matches the fault-free
reference bit for bit.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from ..faults.plan import FaultPlan
from ..obs.recorder import NULL_RECORDER
from ..ops5.errors import Ops5Error
from ..ops5.conflict import ConflictSet
from ..ops5.matcher import ChangeRecord, Matcher, MatchStats
from ..ops5.production import Instantiation, Production
from ..ops5.symbols import SYMBOLS
from ..ops5.wme import WME
from . import messages
from .local import LocalScheduler, _LocalShard, rebuild_local_state
from .partition import Partition, assign_productions, production_weight
from .ring import RingStall
from .supervisor import (
    RecoveryEvent,
    ShardFailure,
    ShardSupervisor,
    SupervisorConfig,
)
from .transport import TRANSPORTS, TransportStats, create_endpoint, resolve_transport
from .worker import ShardState, rebuild_state, shard_main


def default_worker_count() -> int:
    """Workers to use when unspecified: the host's cores, capped at 4."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        cpus = os.cpu_count() or 1
    return max(1, min(4, cpus))


def _context():
    """Prefer fork (cheap, no re-import); fall back to the default."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass(frozen=True)
class DispatchConfig:
    """Batched-dispatch tuning: when to wake a shard before the barrier.

    The paper's scheduler argument cuts both ways: dispatch must be
    cheap, *and* a worker should start chewing while the coordinator is
    still routing the rest of the cycle's changes.  ``eager_ops`` is
    the queue depth at which a shard's pending batch is dispatched
    early (``None`` restores pure barrier dispatch); with ``adaptive``
    the threshold tracks half the shard's recent ops-per-cycle (EWMA),
    clamped to ``[min_ops, max_ops]``, so small cycles stay single-batch
    while bulk loads pipeline.  Eager dispatch only applies to process
    shards -- inline shards gain nothing from starting early.
    """

    eager_ops: Optional[int] = 64
    adaptive: bool = True
    min_ops: int = 16
    max_ops: int = 1024

    def __post_init__(self) -> None:
        if self.eager_ops is not None and self.eager_ops < 1:
            raise ValueError("eager_ops must be >= 1 (or None to disable)")
        if self.min_ops < 1 or self.max_ops < self.min_ops:
            raise ValueError("need 1 <= min_ops <= max_ops")


class _InflightBatch:
    """One dispatched-but-uncollected batch (the executor's send window)."""

    __slots__ = ("ops", "change_map", "seq", "sent_at", "start", "eager")

    def __init__(self, ops, change_map, seq, sent_at, start, eager):
        self.ops = ops
        self.change_map = change_map
        self.seq = seq
        self.sent_at = sent_at  # recorder clock (0 when disabled)
        self.start = start  # perf_counter at dispatch
        self.eager = eager


class _ProcessShard:
    """Coordinator-side handle for one worker process.

    All pipe I/O funnels through :meth:`_send` and :meth:`collect`, which
    translate the three ways a worker can disappear -- broken pipe on
    send, EOF on receive, silence past the deadline -- into a
    :class:`ShardFailure` naming the shard and the cause, so the
    executor's recovery path sees one exception type everywhere.
    """

    def __init__(
        self,
        ctx,
        index: int,
        fault_plan: Optional[FaultPlan] = None,
        transport_kind: str = "pipe",
        send_timeout: Optional[float] = 30.0,
        op_cache: Optional[dict] = None,
    ) -> None:
        self.index = index
        conn, child = ctx.Pipe()
        self.endpoint = create_endpoint(transport_kind, conn, send_timeout)
        if op_cache is not None and hasattr(self.endpoint, "op_cache"):
            # Share the matcher-wide epoch cache: op bodies reference the
            # process-global symbol table, so the bytes for a WME op are
            # identical no matter which shard receives them.  Fanning the
            # same op to N shards then encodes it once, not N times.
            self.endpoint.op_cache = op_cache
        spec = self.endpoint.worker_spec(child)
        self.process = ctx.Process(
            target=shard_main,
            args=(spec, index, fault_plan),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        self.process.start()
        child.close()

    @property
    def conn(self):
        """The liveness/data pipe (tests and tooling peek at it)."""
        return self.endpoint.conn

    def _send(self, payload: tuple) -> None:
        try:
            self.endpoint.send(payload)
        except RingStall:
            cause = "hang" if self.process.is_alive() else "crash"
            raise ShardFailure(
                self.index, cause, "command ring full (worker not draining)"
            ) from None
        except (EOFError, BrokenPipeError, OSError):
            raise ShardFailure(self.index, "crash", "pipe broken on send") from None

    def dispatch(self, ops: Sequence[Sequence[Any]], seq: Optional[int] = None) -> None:
        self._send((messages.BATCH, ops, seq))

    def collect(self, deadline: Optional[float] = None) -> tuple:
        """Receive one reply; *deadline* seconds of silence is a hang."""
        if deadline is not None:
            try:
                ready = self.endpoint.poll(deadline)
            except (OSError, EOFError):
                raise ShardFailure(self.index, "crash", "pipe closed") from None
            if not ready:
                raise ShardFailure(
                    self.index, "hang", f"no reply within {deadline:g}s"
                )
        try:
            return self.endpoint.recv()
        except RingStall:
            cause = "hang" if self.process.is_alive() else "crash"
            raise ShardFailure(
                self.index, cause, "reply frame stalled mid-message"
            ) from None
        except EOFError:
            raise ShardFailure(self.index, "crash", "pipe reached EOF") from None

    def checkpoint(self, deadline: Optional[float] = None) -> Optional[bytes]:
        """Round-trip a checkpoint request; ``None`` if the worker declined."""
        self._send((messages.CHECKPOINT,))
        reply = self.collect(deadline)
        if reply[0] != messages.CHECKPOINT:
            return None
        return reply[1]

    def restore_pickled(self, payload: bytes, deadline: Optional[float] = None) -> int:
        """Rebuild the worker's state from a pre-pickled restore command
        (see ``ShardSupervisor.restore_message_bytes``); returns the
        replayed op count."""
        try:
            self.endpoint.send_pickled(payload)
        except RingStall:
            cause = "hang" if self.process.is_alive() else "crash"
            raise ShardFailure(self.index, cause, "ring full during restore") from None
        except (EOFError, BrokenPipeError, OSError):
            raise ShardFailure(self.index, "crash", "pipe broken on restore") from None
        reply = self.collect(deadline)
        if reply[0] != messages.RESTORED:
            detail = reply[1] if len(reply) > 1 else repr(reply)
            raise ShardFailure(self.index, "crash", f"restore failed: {detail}")
        return reply[1]

    def restore(
        self,
        checkpoint: Optional[bytes],
        journal: Sequence[Sequence[Any]],
        deadline: Optional[float] = None,
    ) -> int:
        """Rebuild the worker's state; returns the replayed op count."""
        self._send((messages.RESTORE, checkpoint, list(journal)))
        reply = self.collect(deadline)
        if reply[0] != messages.RESTORED:
            detail = reply[1] if len(reply) > 1 else repr(reply)
            raise ShardFailure(self.index, "crash", f"restore failed: {detail}")
        return reply[1]

    def transport_stats(self) -> TransportStats:
        return self.endpoint.stats_snapshot()

    def stop(self) -> None:
        """Graceful stop, escalating to SIGTERM then SIGKILL.

        A worker wedged in a way SIGTERM cannot reach (e.g. SIGSTOPped)
        still gets reaped: SIGKILL acts even on stopped processes.  The
        endpoint is closed on every path, including when the sends or
        joins themselves raise.
        """
        try:
            try:
                self.endpoint.send((messages.STOP,))
            except (RingStall, EOFError, BrokenPipeError, OSError):
                pass
            self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=5.0)
        finally:
            self.endpoint.close()

    def kill(self) -> None:
        """Reap the worker without ceremony (recovery path)."""
        try:
            self.process.terminate()
            self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=5.0)
        finally:
            self.endpoint.close()


class _InlineShard:
    """A shard that runs in-process: same code, no IPC.

    Serves two roles: the ``workers=0`` serial reference configuration,
    and the *demotion* target -- a shard whose worker keeps dying is
    rebuilt from its journal into one of these, trading parallelism for
    completion.  Inline shards never consult the fault plan: a fault
    executed in-process would take the coordinator down with it.
    """

    def __init__(self, index: int, state: Optional[ShardState] = None) -> None:
        self.index = index
        self.state = state if state is not None else ShardState()
        #: FIFO of uncollected replies (recovery re-dispatch can queue
        #: several batches before the collect loop drains them).
        self._replies: list[tuple] = []

    def dispatch(self, ops: Sequence[Sequence[Any]], seq: Optional[int] = None) -> None:
        edits, stat_rows = self.state.apply_batch(ops)
        self._replies.append((messages.OK, edits, stat_rows))

    def collect(self, deadline: Optional[float] = None) -> tuple:
        assert self._replies
        return self._replies.pop(0)

    def stop(self) -> None:
        self._replies = []


class WorkQueue:
    """Per-shard op queues plus the change log of the open batch.

    The software analogue of the paper's hardware task scheduler: it
    accepts routed ops, remembers which global change each WME op
    belongs to, and hands every shard its batch at dispatch time.
    """

    def __init__(self, shard_count: int) -> None:
        self.pending: list[list] = [[] for _ in range(shard_count)]
        #: Local WME-op position -> global change index, per shard.
        self.change_map: list[list[int]] = [[] for _ in range(shard_count)]
        #: (kind, wme_class) per global change in this batch.
        self.changes: list[tuple[str, str]] = []

    def push(self, shard: int, op: Sequence[Any], change: int | None = None) -> None:
        self.pending[shard].append(op)
        if change is not None:
            self.change_map[shard].append(change)

    def open_change(self, kind: str, wme_class: str) -> int:
        self.changes.append((kind, wme_class))
        return len(self.changes) - 1

    @property
    def dirty(self) -> bool:
        return bool(self.changes) or any(self.pending)

    def take(self) -> tuple[list[list], list[list[int]], list[tuple[str, str]]]:
        pending, change_map, changes = self.pending, self.change_map, self.changes
        count = len(pending)
        self.pending = [[] for _ in range(count)]
        self.change_map = [[] for _ in range(count)]
        self.changes = []
        return pending, change_map, changes

    def take_shard(self, shard: int) -> tuple[list, list[int]]:
        """Detach one shard's pending batch (eager dispatch path).

        The change log stays put: change indices stay valid for the
        whole flush epoch, eager batches included.
        """
        ops, change_map = self.pending[shard], self.change_map[shard]
        self.pending[shard] = []
        self.change_map[shard] = []
        return ops, change_map


#: Backfill WME ops carry this change index: their (zero-work) stat rows
#: belong to no engine-visible change and are dropped at merge time.
_BACKFILL = -1


class ParallelMatcher(Matcher):
    """A :class:`~repro.ops5.matcher.Matcher` over a shard process pool.

    Parameters
    ----------
    workers:
        Number of shard processes.  ``0`` runs a single inline shard in
        this process (no ``multiprocessing`` at all) -- the degenerate
        serial configuration with identical semantics.  ``None`` picks
        :func:`default_worker_count`.
    recorder:
        Optional :class:`~repro.obs.Recorder`.  When enabled, every
        flush barrier records a coordinator span (lane 0) and one
        ``shard-batch`` span per dispatched shard on lane ``1 + shard``
        -- coordinator-observed wall-clock from dispatch to collection,
        with queue depths (ops per batch) and edit counts as args.
        Failures add ``shard-failure`` instants and ``shard-recovery``
        spans on the failed shard's lane.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`.  Worker processes
        consult it before serving each batch, keyed by the batch's
        sequence number, making crashes/hangs/slowdowns land at exact,
        reproducible points.  Inline shards (``workers=0`` and demoted
        shards) never consult it.
    supervisor:
        Optional :class:`~repro.parallel.supervisor.SupervisorConfig`
        overriding collect deadlines, checkpoint cadence, and the
        demotion threshold.
    transport:
        ``"pipe"`` (pickled tuples over ``multiprocessing.Pipe``),
        ``"ring"`` (struct-packed frames over shared-memory SPSC rings,
        symbols interned -- the PSM-style cheap scheduler), ``"local"``
        (shards as threads sharing this address space, each executing
        the *compiled kernel* under a work-stealing scheduler -- no
        serialisation at all, see :mod:`repro.parallel.local`), or
        ``"auto"`` (ring where shared memory works, else pipe).  The
        merged results are bit-identical across transports; only the
        dispatch cost changes (``benchmarks/bench_transport.py``).
    dispatch:
        Optional :class:`DispatchConfig` tuning eager batched dispatch
        (dispatching a shard's queue before the cycle barrier once it
        is deep enough, so workers overlap with coordinator routing).

    Use as a context manager (or call :meth:`close`) so the worker
    processes are reaped deterministically; they are daemonic, so an
    unclosed matcher still cannot outlive the interpreter.
    """

    def __init__(
        self,
        workers: int | None = None,
        recorder=None,
        fault_plan: Optional[FaultPlan] = None,
        supervisor: Optional[SupervisorConfig] = None,
        transport: str = "auto",
        dispatch: Optional[DispatchConfig] = None,
    ) -> None:
        # Matcher.__init__ is deliberately not called: `conflict_set` and
        # `stats` are flush-on-read properties here, not attributes.
        if workers is None:
            workers = default_worker_count()
        if workers < 0:
            raise Ops5Error("workers must be >= 0")
        if transport not in TRANSPORTS:
            raise Ops5Error(
                f"unknown transport {transport!r}; expected one of "
                + ", ".join(TRANSPORTS)
            )
        self.workers = workers
        self.transport = transport
        self.dispatch_config = dispatch if dispatch is not None else DispatchConfig()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.fault_plan = fault_plan
        self._shard_count = max(1, workers)
        self._supervisor = ShardSupervisor(
            self._shard_count, supervisor if supervisor is not None else SupervisorConfig()
        )
        self._conflict_set = ConflictSet()
        self._stats = MatchStats()
        self._queue = WorkQueue(self._shard_count)
        self._shards: list[_ProcessShard | _InlineShard | _LocalShard] | None = None
        self._ctx = None
        #: Work-stealing thread scheduler (local transport only).
        self._scheduler: Optional[LocalScheduler] = None
        self._productions: dict[str, Production] = {}
        #: Production name -> owning shard index.
        self._assignment: dict[str, int] = {}
        #: Static weight currently assigned to each shard.
        self._weights: list[float] = [0.0] * self._shard_count
        #: Classes each shard has ever subscribed to.  Sticky: once a
        #: shard hears about a class it keeps receiving its changes, so
        #: its working-memory view never silently goes stale.
        self._subscribed: list[set[str]] = [set() for _ in range(self._shard_count)]
        #: Productions registered before the pool starts; partitioned in
        #: one balanced pass at start time.
        self._unpartitioned: list[Production] = []
        #: Live WMEs by timetag (the coordinator's working-memory view).
        self._wmes: dict[int, WME] = {}
        self._pending_removals: list[int] = []
        self._closed = False
        #: Resolved transport kind ("ring"/"pipe"), set at pool start;
        #: stays None for workers=0 (everything inline, nothing on a wire).
        self._transport_kind: Optional[str] = None
        #: Dispatched-but-uncollected batches, FIFO per shard.
        self._inflight: list[list[_InflightBatch]] = [
            [] for _ in range(self._shard_count)
        ]
        #: EWMA of WME+production ops per flush epoch, per shard (drives
        #: the adaptive eager threshold).
        self._ewma: list[float] = [
            float(2 * (self.dispatch_config.eager_ops or 64))
        ] * self._shard_count
        self._epoch_ops: list[int] = [0] * self._shard_count
        self._dispatches = 0
        self._eager_dispatches = 0
        self._latency_seconds = 0.0
        self._latency_count = 0
        #: Wire stats of endpoints that no longer exist (killed,
        #: stopped, demoted) -- folded into transport_summary().
        self._retired_stats = TransportStats()
        #: Epoch-scoped WME op byte cache shared by every ring endpoint
        #: (fanout encodes each op once); cleared at each flush boundary.
        self._op_cache: dict[int, bytes] = {}

    # -- pool lifecycle ------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._shards is not None

    def _ensure_started(self) -> None:
        if self._shards is not None:
            return
        if self._closed:
            raise Ops5Error("this ParallelMatcher has been closed")
        if self.workers == 0:
            self._shards = [_InlineShard(0)]
        else:
            try:
                self._transport_kind = resolve_transport(self.transport)
            except ValueError as error:
                raise Ops5Error(str(error)) from None
            if self._transport_kind == "local":
                # Thread shards in this address space: no context, no
                # endpoints -- one shared work-stealing scheduler.
                self._scheduler = LocalScheduler(self._shard_count)
                self._shards = [
                    self._new_shard(i) for i in range(self._shard_count)
                ]
            else:
                self._ctx = _context()
                self._shards = [
                    self._new_shard(i) for i in range(self._shard_count)
                ]
        for partition in assign_productions(self._unpartitioned, self._shard_count):
            for production in partition.productions:
                self._place(production, partition.index)
        self._unpartitioned = []

    def _new_shard(self, index: int) -> "_ProcessShard | _LocalShard":
        """A fresh shard of whatever kind the resolved transport implies."""
        if self._transport_kind == "local":
            return _LocalShard(index, self._scheduler, self.fault_plan)
        return _ProcessShard(
            self._ctx,
            index,
            self.fault_plan,
            transport_kind=self._transport_kind or "pipe",
            send_timeout=self._supervisor.config.collect_deadline,
            op_cache=self._op_cache,
        )

    def _encode_wme(self, wme: WME) -> tuple:
        """The WME-insert op for the resolved transport.

        Local shards share this address space, so the op carries the
        live object -- zero-copy dispatch; process shards get the
        picklable ``(+w, cls, attrs, timetag)`` form.
        """
        if self._transport_kind == "local":
            return (messages.ADD_WME_REF, wme)
        return messages.encode_wme(wme)

    def _absorb_shard_stats(self, shard) -> None:
        """Fold a doomed endpoint's wire stats into the retired rollup."""
        if isinstance(shard, _ProcessShard):
            self._retired_stats.absorb(shard.transport_stats())

    def close(self) -> None:
        """Stop the worker pool.  Further matching raises; stats and the
        last flushed conflict set stay readable."""
        if self._shards is not None:
            for shard in self._shards:
                self._absorb_shard_stats(shard)
                shard.stop()
            self._shards = None
        if self._scheduler is not None:
            self._scheduler.shutdown()
            self._scheduler = None
        self._closed = True

    def __enter__(self) -> "ParallelMatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- placement ------------------------------------------------------------

    def _place(self, production: Production, shard: int) -> None:
        """Queue compilation of *production* on *shard* (with backfill)."""
        self._assignment[production.name] = shard
        self._weights[shard] += production_weight(production)
        classes = {ce.cls for ce in production.conditions}
        new_classes = classes - self._subscribed[shard]
        # Backfill: the shard must hold the current WMEs of any class it
        # has not been hearing about, or the new rule would match against
        # a partial working memory.
        for cls in sorted(new_classes):
            for timetag in sorted(self._wmes):
                wme = self._wmes[timetag]
                if wme.cls == cls:
                    self._queue.push(
                        shard, self._encode_wme(wme), change=_BACKFILL
                    )
        self._subscribed[shard] |= classes
        self._queue.push(shard, (messages.ADD_PRODUCTION, production))

    def _route(self, cls: str) -> list[int]:
        return [
            i
            for i in range(self._shard_count)
            if cls in self._subscribed[i]
        ]

    # -- Matcher interface -----------------------------------------------------

    @property
    def productions(self) -> Iterable[Production]:
        return self._productions.values()

    def add_production(self, production: Production) -> None:
        if production.name in self._productions:
            raise Ops5Error(f"production {production.name!r} already registered")
        self._productions[production.name] = production
        if self._shards is None:
            self._unpartitioned.append(production)
            return
        lightest = min(range(self._shard_count), key=lambda i: (self._weights[i], i))
        self._place(production, lightest)

    def remove_production(self, name: str) -> None:
        if name not in self._productions:
            raise Ops5Error(f"no production named {name!r}")
        del self._productions[name]
        if self._shards is None:
            self._unpartitioned = [p for p in self._unpartitioned if p.name != name]
            return
        shard = self._assignment.pop(name)
        self._queue.push(shard, (messages.REMOVE_PRODUCTION, name))

    def add_wme(self, wme: WME) -> None:
        self._ensure_started()
        self._wmes[wme.timetag] = wme
        change = self._queue.open_change("add", wme.cls)
        targets = self._route(wme.cls)
        for shard in targets:
            self._queue.push(shard, self._encode_wme(wme), change=change)
        self._maybe_eager(targets)

    def remove_wme(self, wme: WME) -> None:
        self._ensure_started()
        if wme.timetag not in self._wmes:
            raise Ops5Error(f"WME {wme!r} was never added to this matcher")
        self._pending_removals.append(wme.timetag)
        change = self._queue.open_change("remove", wme.cls)
        targets = self._route(wme.cls)
        for shard in targets:
            self._queue.push(shard, (messages.REMOVE_WME, wme.timetag), change=change)
        self._maybe_eager(targets)

    # -- eager batched dispatch ---------------------------------------------

    def _eager_threshold(self, shard: int) -> int:
        config = self.dispatch_config
        if not config.adaptive:
            return config.eager_ops  # type: ignore[return-value]
        return min(config.max_ops, max(config.min_ops, int(self._ewma[shard] / 2)))

    def _maybe_eager(self, shards: Sequence[int]) -> None:
        """Dispatch any deep-enough pending batch before the barrier.

        Only for process shards: the point is overlapping worker match
        time with coordinator routing, which an inline shard (same
        process, synchronous apply) cannot do.
        """
        if self.dispatch_config.eager_ops is None or self.workers == 0:
            return
        for i in shards:
            if len(self._queue.pending[i]) >= self._eager_threshold(i):
                self._dispatch_shard(i, eager=True)

    def _dispatch_shard(self, i: int, eager: bool = False) -> None:
        """Hand shard *i* its pending batch and add it to the in-flight
        window.  The record is appended *before* the send so a dispatch-
        time failure finds the batch in the window and re-dispatches it
        with everything else."""
        ops, change_map = self._queue.take_shard(i)
        if not ops:
            return
        rec = self.recorder
        seq = self._supervisor.next_seq(i)
        record = _InflightBatch(
            ops=ops,
            change_map=change_map,
            seq=seq,
            sent_at=rec.now() if rec.enabled else 0,
            start=time.perf_counter(),
            eager=eager,
        )
        self._inflight[i].append(record)
        self._epoch_ops[i] += len(ops)
        self._dispatches += 1
        if eager:
            self._eager_dispatches += 1
        try:
            self._shards[i].dispatch(ops, seq)
        except ShardFailure as failure:
            self._recover(failure, seq=seq)

    # -- the flush barrier -------------------------------------------------------

    @property
    def conflict_set(self) -> ConflictSet:
        """The merged conflict set; reading it is the cycle barrier."""
        self.flush()
        return self._conflict_set

    @property
    def stats(self) -> MatchStats:
        self.flush()
        return self._stats

    def peek_stats(self) -> MatchStats:
        """Stats accumulated so far, *without* triggering a flush.

        The flush barrier belongs to the engine's cycle; metrics
        snapshots taken from another thread (the serve layer's ``stats``
        RPC) must not move it.
        """
        return self._stats

    def flush(self) -> None:
        """Dispatch all queued ops and merge the shards' results.

        With eager dispatch some batches are already in flight when the
        barrier hits; the flush dispatches the remainders and collects
        every in-flight batch FIFO per shard.  Shard failures (crash,
        hang) are recovered *inside* the flush -- the barrier completes
        with a bit-identical merged result, just later.  Engine errors
        reported by a worker (a bad op) restore the worker from the
        journal so the pool survives, then raise after every other
        shard's reply has been drained, so no stale reply can
        desynchronise the next flush.
        """
        if self._unpartitioned and self._shards is None:
            self._ensure_started()
        if self._shards is None or not (
            self._queue.dirty or any(self._inflight)
        ):
            return
        rec = self.recorder
        flush_start = rec.now() if rec.enabled else 0
        changes = self._queue.changes
        self._queue.changes = []
        #: Insert edits suppressed because their production was removed
        #: in this same batch; the paired delete is excused, nothing else.
        self._skipped_inserts: set[tuple] = set()

        for i in range(self._shard_count):
            if self._queue.pending[i]:
                self._dispatch_shard(i)

        merged = [
            ChangeRecord(kind=kind, wme_class=cls) for kind, cls in changes
        ]
        errors: list[RuntimeError] = []
        active = [i for i in range(self._shard_count) if self._inflight[i]]
        total_ops = 0
        for i in active:
            total_ops += self._epoch_ops[i]
            error = self._collect_inflight(i, merged)
            if error is not None:
                errors.append(error)
        for record in merged:
            self._stats.record(record)

        for i in range(self._shard_count):
            if self._epoch_ops[i]:
                self._ewma[i] = 0.8 * self._ewma[i] + 0.2 * self._epoch_ops[i]
                self._epoch_ops[i] = 0

        for timetag in self._pending_removals:
            self._wmes.pop(timetag, None)
        self._pending_removals = []

        self._maybe_checkpoint(active)
        for shard in self._shards:
            if isinstance(shard, _ProcessShard):
                shard.endpoint.end_epoch()
        if self._scheduler is not None:
            self._scheduler.end_epoch()

        if rec.enabled:
            rec.complete(
                "flush",
                "parallel",
                start=flush_start,
                duration=rec.now() - flush_start,
                tid=0,
                args={
                    "changes": len(changes),
                    "shards_active": len(active),
                    "ops": total_ops,
                },
            )
        if errors:
            raise errors[0]

    def _collect_inflight(self, i: int, merged: list) -> Optional[RuntimeError]:
        """Collect and merge every in-flight batch of shard *i*, FIFO.

        On an engine-error reply the remaining in-flight replies are
        worthless -- the worker reset itself to a *fresh* state after
        the error, so later batches ran against the wrong state -- they
        are drained and discarded, the worker is restored from the
        journal, and the error is returned for the flush to raise.
        """
        config = self._supervisor.config
        sup = self._supervisor
        rec = self.recorder
        records = self._inflight[i]
        while records:
            record = records[0]
            shard = self._shards[i]
            if isinstance(shard, _InlineShard):
                reply = shard.collect()
            else:
                try:
                    reply = shard.collect(config.collect_deadline)
                except ShardFailure as failure:
                    self._recover(failure, seq=record.seq)
                    continue
            if reply[0] != messages.OK:
                error = RuntimeError(
                    f"shard worker {i} failed: {reply[1]}\n{reply[2]}"
                )
                records.pop(0)
                self._drain_discard(i, len(records))
                records.clear()
                self._restore_worker(i)
                return error
            records.pop(0)
            sup.committed(i, record.ops)
            sup.reset_failures(i)
            self._latency_seconds += time.perf_counter() - record.start
            self._latency_count += 1
            edits, stat_rows = reply[1], reply[2]
            if rec.enabled:
                # Coordinator-observed batch wall-clock: dispatch to
                # collection, serialised by collection order.
                rec.complete(
                    "shard-batch",
                    "parallel",
                    start=record.sent_at,
                    duration=rec.now() - record.sent_at,
                    tid=1 + i,
                    args={
                        "shard": i,
                        "ops": len(record.ops),
                        "edits": len(edits),
                        "eager": record.eager,
                    },
                )
            self._merge_edits(edits)
            change_map = record.change_map
            for local_index, affected, activations, comparisons, tokens in stat_rows:
                change = (
                    change_map[local_index]
                    if local_index < len(change_map)
                    else _BACKFILL
                )
                if change == _BACKFILL:
                    continue
                change_record = merged[change]
                change_record.affected_productions += affected
                change_record.node_activations += activations
                change_record.comparisons += comparisons
                change_record.tokens_built += tokens
        return None

    def _drain_discard(self, i: int, count: int) -> None:
        """Consume *count* replies from shard *i* without using them
        (post-error garbage; see :meth:`_collect_inflight`)."""
        deadline = self._supervisor.config.collect_deadline
        for _ in range(count):
            shard = self._shards[i]
            try:
                if isinstance(shard, _InlineShard):
                    shard.collect()
                else:
                    shard.collect(deadline)
            except (ShardFailure, AssertionError):
                # Dead, hung, or short on replies: the follow-up restore
                # rebuilds it regardless; stop draining.
                break

    # -- recovery ---------------------------------------------------------------

    def _recover(self, failure: ShardFailure, seq: Optional[int]) -> None:
        """Replace a failed shard worker and rebuild its match state.

        Respawns a fresh process and replays checkpoint + journal into
        it (as one cached, pre-pickled restore message -- serialised
        once per journal change, however many retries this takes);
        after ``max_failures`` consecutive failures the shard is
        demoted to an inline shard instead (same rebuild, no process).
        The shard's whole in-flight window is then re-dispatched: none
        of those batches were journalled, so the rebuilt state predates
        all of them (re-sent with no sequence number: injected faults
        never refire).
        """
        i = failure.shard
        sup = self._supervisor
        rec = self.recorder
        failures = sup.record_failure(i, failure.cause)
        if rec.enabled:
            rec.instant(
                "shard-failure",
                "faults",
                tid=1 + i,
                shard=i,
                cause=failure.cause,
                detail=failure.detail,
                consecutive=failures,
            )
        started = time.perf_counter()
        recovery_start = rec.now() if rec.enabled else 0
        shard = self._shards[i]
        if isinstance(shard, _ProcessShard):
            self._absorb_shard_stats(shard)
            shard.kill()
        elif isinstance(shard, _LocalShard):
            shard.kill()
        journal_ops = sup.journal_length(i)
        used_checkpoint = sup.checkpoints[i] is not None
        local = self._transport_kind == "local"
        attempts = 0
        while True:
            attempts += 1
            if failures >= sup.config.max_failures:
                replay_started = time.perf_counter()
                checkpoint, journal = sup.recovery_payload(i)
                if local:
                    # Demote to a synchronous (schedulerless) thread
                    # shard: still the compiled kernel, no concurrency.
                    self._shards[i] = _LocalShard(
                        i, state=rebuild_local_state(checkpoint, journal)
                    )
                else:
                    state = rebuild_state(checkpoint, journal)
                    self._shards[i] = _InlineShard(i, state)
                replay_seconds = time.perf_counter() - replay_started
                for record in self._inflight[i]:
                    self._shards[i].dispatch(record.ops, None)
                action = "demoted"
                break
            if not local and self._ctx is None:  # pragma: no cover - workers=0 guard
                self._ctx = _context()
            replacement = self._new_shard(i)
            try:
                replay_started = time.perf_counter()
                if isinstance(replacement, _LocalShard):
                    replacement.restore(*sup.recovery_payload(i))
                else:
                    replacement.restore_pickled(
                        sup.restore_message_bytes(i), sup.config.recovery_deadline
                    )
                replay_seconds = time.perf_counter() - replay_started
                for record in self._inflight[i]:
                    replacement.dispatch(record.ops, None)
            except ShardFailure as again:
                # The replacement died during restore or re-dispatch;
                # count it and either try once more or fall through to
                # demotion.
                self._absorb_shard_stats(replacement)
                replacement.kill()
                failures = sup.record_failure(i, again.cause)
                continue
            self._shards[i] = replacement
            action = "respawned"
            break
        event = RecoveryEvent(
            shard=i,
            cause=failure.cause,
            action=action,
            seq=seq,
            replayed_ops=journal_ops,
            used_checkpoint=used_checkpoint,
            replay_seconds=replay_seconds,
            total_seconds=time.perf_counter() - started,
            attempts=attempts,
        )
        sup.record_recovery(event)
        if rec.enabled:
            rec.complete(
                "shard-recovery",
                "faults",
                start=recovery_start,
                duration=rec.now() - recovery_start,
                tid=1 + i,
                args=event.snapshot(),
            )

    def _restore_worker(self, i: int) -> None:
        """Put shard *i*'s journalled state back after an error reply."""
        shard = self._shards[i]
        if isinstance(shard, _LocalShard):
            shard.restore(*self._supervisor.recovery_payload(i))
            return
        if not isinstance(shard, _ProcessShard):
            return
        try:
            shard.restore_pickled(
                self._supervisor.restore_message_bytes(i),
                self._supervisor.config.recovery_deadline,
            )
        except ShardFailure as failure:
            self._recover(failure, seq=None)

    def _maybe_checkpoint(self, shards: Iterable[int]) -> None:
        """Take due checkpoints (only ever at a batch boundary, when the
        workers' edit journals are drained -- state, never output)."""
        sup = self._supervisor
        for i in shards:
            if not sup.wants_checkpoint(i):
                continue
            shard = self._shards[i]
            started = time.perf_counter()
            if isinstance(shard, _InlineShard):
                blob = shard.state.checkpoint()
            else:
                try:
                    blob = shard.checkpoint(sup.config.recovery_deadline)
                except ShardFailure as failure:
                    self._recover(failure, seq=None)
                    continue
            if blob is not None:
                sup.store_checkpoint(i, blob, time.perf_counter() - started)

    # -- bulk control ----------------------------------------------------------

    def clear(self) -> None:
        """Drop all productions and working memory (pool stays warm).

        Lets one pool serve many small programs -- the differential test
        harness loads hundreds of generated programs through a single
        matcher without re-forking workers.
        """
        # Eagerly dispatched batches are already applied worker-side and
        # owe replies; drain them (results are moot once every shard
        # resets, and so is any engine error a doomed batch reports).
        if any(self._inflight):
            try:
                self.flush()
            except RuntimeError:
                pass
        # Undispatched ops are moot once every shard resets; drop them.
        self._queue = WorkQueue(self._shard_count)
        self._conflict_set = ConflictSet()
        self._stats = MatchStats()
        self._productions = {}
        self._assignment = {}
        self._weights = [0.0] * self._shard_count
        self._subscribed = [set() for _ in range(self._shard_count)]
        self._unpartitioned = []
        self._wmes = {}
        self._pending_removals = []
        if self._shards is not None:
            for i in range(self._shard_count):
                self._queue.push(i, (messages.RESET,))
            self.flush()

    # -- introspection ----------------------------------------------------------

    def transport_summary(self) -> dict:
        """JSON-ready wire accounting for the metrics ``transport``
        section: frames/bytes both directions, ring stalls, pickle
        fallbacks, intern-table size, and dispatch counts/latency."""
        totals = TransportStats()
        totals.absorb(self._retired_stats)
        if self._shards is not None:
            for shard in self._shards:
                if isinstance(shard, _ProcessShard):
                    totals.absorb(shard.transport_stats())
        mean_latency_us = (
            self._latency_seconds / self._latency_count * 1e6
            if self._latency_count
            else 0.0
        )
        config = self.dispatch_config
        return {
            "kind": self._transport_kind
            or ("inline" if self.workers == 0 else self.transport),
            "dispatches": self._dispatches,
            "eager_dispatches": self._eager_dispatches,
            "eager_ops": config.eager_ops,
            "adaptive": config.adaptive,
            "mean_dispatch_latency_us": mean_latency_us,
            "symbols": len(SYMBOLS),
            **totals.snapshot(),
        }

    def fault_events(self) -> list[RecoveryEvent]:
        """All recovery events so far, in occurrence order."""
        return list(self._supervisor.events)

    def fault_summary(self) -> dict:
        """JSON-ready rollup of failures, recoveries, and their costs."""
        return self._supervisor.summary()

    @property
    def degraded_shards(self) -> list[int]:
        """Indices of shards demoted to inline execution."""
        return [i for i, down in enumerate(self._supervisor.demoted) if down]

    def partition_snapshot(self) -> list[Partition]:
        """The current production -> shard distribution.

        Before the pool starts this previews the balanced assignment the
        start will perform; afterwards it reports actual placement.
        """
        if self._unpartitioned:
            return assign_productions(self._unpartitioned, self._shard_count)
        partitions = [Partition(i) for i in range(self._shard_count)]
        for name, shard in sorted(self._assignment.items()):
            partitions[shard].productions.append(self._productions[name])
            partitions[shard].weight += production_weight(self._productions[name])
        for i, down in enumerate(self._supervisor.demoted):
            partitions[i].degraded = down
        return partitions

    def scheduler_summary(self) -> Optional[dict]:
        """The ``scheduler`` metrics section for the local backend.

        Side-effect-free by construction (mirrors :meth:`peek_stats`'s
        guarantee): reads counters only, never touches the work queue
        or the epoch barrier.  ``None`` for process/inline backends.
        """
        if self._scheduler is None:
            return None
        return self._scheduler.stats()

    def _merge_edits(self, edits: Sequence[tuple]) -> None:
        for edit in edits:
            if edit[0] == messages.INSERT_REF:
                # Zero-copy insert from a thread shard: the very object
                # the kernel built.  Same removed-production race as the
                # encoded form below, resolved via the instantiation key.
                inst = edit[1]
                if inst.production.name not in self._productions:
                    self._skipped_inserts.add(inst.key)
                    continue
                self._conflict_set.insert(inst)
            elif edit[0] == messages.INSERT:
                _, name, timetags, bindings = edit
                production = self._productions.get(name)
                if production is None:
                    # The production was removed after this WME op was
                    # queued but before the flush; the shard's "-p"
                    # retraction follows in the same edit stream, so
                    # suppress the insert and excuse its paired delete.
                    self._skipped_inserts.add((name, tuple(timetags)))
                    continue
                wmes = tuple(self._wmes[t] for t in timetags)
                self._conflict_set.insert(Instantiation(production, wmes, bindings))
            else:
                _, name, timetags = edit
                key = (name, tuple(timetags))
                if key in self._skipped_inserts:
                    self._skipped_inserts.discard(key)
                    continue
                self._conflict_set.delete_key(key)
