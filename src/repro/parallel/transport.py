"""Pluggable coordinator <-> worker transports: pickle pipe or shared ring.

The executor talks to a shard worker through an *endpoint* with one
small surface -- ``send``/``poll``/``recv``/``close`` plus
``send_pickled`` for pre-serialised control messages -- so the choice
of wire is invisible above this module:

``pipe``
    The baseline: whole command tuples pickled over a
    ``multiprocessing.Pipe``.  One syscall pair and one pickle
    round-trip per message.
``ring``
    The PSM-flavoured path: two :class:`~repro.parallel.ring.Ring`
    SPSC shared-memory rings per shard (commands down, replies up).
    Batch and OK frames are struct-packed against the process-wide
    symbol table (:mod:`repro.parallel.codec`); dispatching a batch is
    a buffer copy plus a counter store -- no syscall in steady state.
    Everything the codec cannot pack (checkpoints, restores, errors)
    rides the same rings as pickle frames, so the *protocol* is
    transport-independent.
``local``
    Not a wire at all: shards run as threads in the coordinator's
    address space and a dispatch is an append to a shared deque (see
    :mod:`repro.parallel.local`).  This module only names and resolves
    it -- the executor branches before any endpoint is created, because
    there is no process to connect.
``auto``
    ``ring`` when the platform supports ``multiprocessing.shared_memory``,
    else ``pipe``.

Even the ring keeps a ``Pipe`` alongside -- never for data, purely as a
*liveness-and-doorbell channel*: a crashed worker closes its end, and
both sides' blocking ring waits poll it so death surfaces as
``EOFError`` exactly like the pipe transport, which is what keeps the
supervisor's crash/hang taxonomy (and the chaos suite's ``pipe-drop``
fault) meaningful across transports.  The same pipe doubles as the
wakeup doorbell: an idle ring consumer spins briefly, publishes a
``parked`` flag in the ring header, and blocks on the pipe; a producer
that sees the flag after publishing rings it with one byte.  Hot
streams therefore stay syscall-free while a cold dispatch costs one
syscall and wakes the peer at kernel speed instead of a backoff sleep.

The coordinator owns the symbol id space: batch frames carry intern
deltas, each worker keeps a private mirror table grown only by those
deltas, and a mirror encodes unknown symbols inline rather than ever
allocating an id (see :mod:`repro.ops5.symbols`).
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from typing import Any, Optional

from ..ops5.symbols import SYMBOLS, SymbolTable
from . import codec, messages
from .ring import DEFAULT_CAPACITY, Ring, RingStall

__all__ = [
    "TRANSPORTS",
    "TransportStats",
    "WorkerTransportSpec",
    "ring_available",
    "resolve_transport",
    "create_endpoint",
    "connect_worker",
    "RingStall",
]

TRANSPORTS = ("auto", "ring", "pipe", "local")

#: The one byte a ring producer sends on the liveness pipe to wake a
#: parked consumer.  Nothing else ever writes data on that pipe, so a
#: non-doorbell payload (or EOF) means the peer is gone.
DOORBELL = b"!"

#: Empty-ring yields before a consumer publishes ``parked`` and blocks.
_PARK_SPIN = 4
#: Bounded block while parked -- the re-check that makes a (practically
#: impossible) lost doorbell a hiccup instead of a hang.
_PARK_WAIT = 0.05

_availability: Optional[bool] = None


def ring_available() -> bool:
    """Whether shared-memory rings work on this platform (cached probe)."""
    global _availability
    if _availability is None:
        try:
            ring = Ring.create(4096)
            ring.write(b"probe")
            ok = ring.read_message(timeout=1.0) == b"probe"
            ring.close()
            _availability = ok
        except Exception:
            _availability = False
    return _availability


def resolve_transport(kind: str) -> str:
    """Validate *kind* and collapse ``auto`` to a concrete transport."""
    if kind not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {kind!r}; expected one of {', '.join(TRANSPORTS)}"
        )
    if kind == "auto":
        return "ring" if ring_available() else "pipe"
    if kind == "ring" and not ring_available():
        raise ValueError("ring transport requested but shared memory is unavailable")
    return kind


@dataclass
class TransportStats:
    """Coordinator-side wire accounting for one endpoint (or a rollup)."""

    frames_sent: int = 0
    bytes_sent: int = 0
    frames_received: int = 0
    bytes_received: int = 0
    send_seconds: float = 0.0
    recv_seconds: float = 0.0
    #: Messages that fell back to a pickle frame on the ring (codec
    #: could not pack them); always 0 on the pipe transport.
    pickle_fallbacks: int = 0
    #: Producer full-ring stall episodes, both directions.
    ring_stalls: int = 0

    def absorb(self, other: "TransportStats") -> None:
        self.frames_sent += other.frames_sent
        self.bytes_sent += other.bytes_sent
        self.frames_received += other.frames_received
        self.bytes_received += other.bytes_received
        self.send_seconds += other.send_seconds
        self.recv_seconds += other.recv_seconds
        self.pickle_fallbacks += other.pickle_fallbacks
        self.ring_stalls += other.ring_stalls

    def snapshot(self) -> dict:
        return {
            "frames_sent": self.frames_sent,
            "bytes_sent": self.bytes_sent,
            "frames_received": self.frames_received,
            "bytes_received": self.bytes_received,
            "send_seconds": self.send_seconds,
            "recv_seconds": self.recv_seconds,
            "pickle_fallbacks": self.pickle_fallbacks,
            "ring_stalls": self.ring_stalls,
        }


@dataclass
class WorkerTransportSpec:
    """What a worker process needs to connect (picklable process arg)."""

    kind: str
    conn: Any  # the child end of the liveness/data Pipe
    c2w_name: Optional[str] = None  # command ring (coordinator -> worker)
    w2c_name: Optional[str] = None  # reply ring (worker -> coordinator)


# ---------------------------------------------------------------------------
# Coordinator-side endpoints
# ---------------------------------------------------------------------------


class PipeEndpoint:
    """The baseline: pickled tuples over a ``multiprocessing.Pipe``.

    Pickling happens here (``send_bytes``) rather than in ``conn.send``
    so byte counts are observable and pre-pickled control messages can
    be shipped without re-serialising (``send_pickled``).
    """

    kind = "pipe"

    def __init__(self, conn) -> None:
        self.conn = conn
        self.stats = TransportStats()

    def send(self, message: tuple) -> None:
        self.send_pickled(pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL))

    def send_pickled(self, payload: bytes) -> None:
        start = time.perf_counter()
        self.conn.send_bytes(payload)
        self.stats.send_seconds += time.perf_counter() - start
        self.stats.frames_sent += 1
        self.stats.bytes_sent += len(payload)

    def poll(self, timeout: Optional[float]) -> bool:
        return self.conn.poll(timeout)

    def recv(self) -> tuple:
        start = time.perf_counter()
        payload = self.conn.recv_bytes()
        message = pickle.loads(payload)
        self.stats.recv_seconds += time.perf_counter() - start
        self.stats.frames_received += 1
        self.stats.bytes_received += len(payload)
        return message

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def stats_snapshot(self) -> TransportStats:
        return TransportStats(**self.stats.snapshot())

    def end_epoch(self) -> None:
        """Flush-boundary hook (the ring endpoint drops its op cache)."""

    def worker_spec(self, child_conn) -> WorkerTransportSpec:
        return WorkerTransportSpec("pipe", child_conn)


class RingEndpoint:
    """Coordinator side of a shard's ring pair.

    Owns both shared-memory segments (creates and unlinks them); the
    worker attaches by name.  All data flows over the rings; ``conn``
    is the liveness pipe -- ``poll``/``recv`` watch it so worker death
    surfaces as ``EOFError`` mid-wait instead of a silent stall.
    """

    kind = "ring"

    def __init__(self, conn, capacity: int = DEFAULT_CAPACITY,
                 send_timeout: Optional[float] = 30.0) -> None:
        self.conn = conn
        self.out = Ring.create(capacity)  # commands, coordinator -> worker
        self.inn = Ring.create(capacity)  # replies, worker -> coordinator
        self.table = SYMBOLS
        self.watermark = 0
        self.send_timeout = send_timeout
        self.stats = TransportStats()
        #: Per-flush-epoch WME op byte cache (timetag -> encoded op);
        #: dropped at each flush boundary (``end_epoch``).
        self.op_cache: dict[int, bytes] = {}
        #: Replies drained out of order (see ``_send_waiter``), decoded,
        #: waiting for ``recv`` -- FIFO, so reply order is preserved.
        self._rx: list[tuple] = []
        #: Latched when the liveness pipe delivers EOF or junk; every
        #: subsequent wait surfaces it as ``EOFError``.
        self._dead = False

    def _pump_conn(self, timeout: float = 0.0) -> bool:
        """Drain doorbells off the liveness pipe; True means death."""
        if self._dead:
            return True
        conn = self.conn
        while conn.poll(timeout):
            try:
                payload = conn.recv_bytes()
            except (EOFError, OSError):
                self._dead = True
                return True
            if payload != DOORBELL:
                self._dead = True
                return True
            timeout = 0
        return False

    def _ring_doorbell(self) -> None:
        """Wake the worker if it parked (one syscall, cold path only)."""
        out = self.out
        if out.consumer_parked():
            out.set_parked(False)
            try:
                self.conn.send_bytes(DOORBELL)
            except (OSError, ValueError):
                pass  # worker gone; the reply path will surface it

    def send(self, message: tuple) -> None:
        start = time.perf_counter()
        frame: Optional[bytes] = None
        if message[0] == messages.BATCH:
            try:
                frame, self.watermark = codec.encode_batch(
                    message[1],
                    message[2] if len(message) > 2 else None,
                    self.table,
                    self.watermark,
                    self.op_cache,
                )
            except Exception:
                frame = None  # fall through to the pickle frame
        if frame is None:
            if message[0] == messages.BATCH:
                self.stats.pickle_fallbacks += 1
            frame = bytes([codec.FRAME_PICKLE]) + pickle.dumps(
                message, protocol=pickle.HIGHEST_PROTOCOL
            )
        self.out.write(frame, timeout=self.send_timeout, waiter=self._send_waiter)
        self._ring_doorbell()
        self.stats.send_seconds += time.perf_counter() - start
        self.stats.frames_sent += 1
        self.stats.bytes_sent += len(frame)

    def send_pickled(self, payload: bytes) -> None:
        start = time.perf_counter()
        self.out.write(
            bytes([codec.FRAME_PICKLE]) + payload,
            timeout=self.send_timeout,
            waiter=self._send_waiter,
        )
        self._ring_doorbell()
        self.stats.send_seconds += time.perf_counter() - start
        self.stats.frames_sent += 1
        self.stats.bytes_sent += len(payload) + 1

    def poll(self, timeout: Optional[float]) -> bool:
        """A reply frame is ready -- or the liveness pipe says the
        worker died (the subsequent ``recv`` surfaces that).  Spins
        briefly, then parks on the pipe and lets the worker's doorbell
        wake it, so an idle coordinator costs no CPU."""
        if self._rx:
            return True
        inn = self.inn
        deadline = None if timeout is None else time.monotonic() + timeout
        spins = 0
        while True:
            if inn.available() >= 4:
                return True
            if self._pump_conn():
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            spins += 1
            if spins <= _PARK_SPIN:
                time.sleep(0)
                continue
            inn.set_parked(True)
            if inn.available() >= 4:
                inn.set_parked(False)
                return True
            wait = _PARK_WAIT
            if deadline is not None:
                wait = min(wait, max(0.0, deadline - time.monotonic()))
            news = self._pump_conn(wait)
            inn.set_parked(False)
            if news:
                return True

    def _waiter(self) -> None:
        """Abort a blocking ring read when the worker is gone."""
        if self._pump_conn():
            raise EOFError("worker liveness pipe closed")

    def _send_waiter(self) -> None:
        """Break the mutual-stall case while the command ring is full.

        With batched in-flight dispatch both rings can fill at once: the
        worker blocks publishing a reply, so it stops draining commands,
        so the coordinator blocks publishing a command.  Draining ready
        replies into the ``_rx`` queue while we wait unwedges the worker
        without disturbing reply order.
        """
        self._waiter()
        while self.inn.available() >= 4:
            self._rx.append(self._read_frame())

    def _read_frame(self) -> tuple:
        frame = self.inn.read_message(timeout=self.send_timeout, waiter=self._waiter)
        if frame[0] == codec.FRAME_OK:
            edits, stat_rows = codec.decode_reply(frame, self.table)
            message = (messages.OK, edits, stat_rows)
        else:
            message = pickle.loads(frame[1:])
        self.stats.frames_received += 1
        self.stats.bytes_received += len(frame)
        return message

    def recv(self) -> tuple:
        if self._rx:
            return self._rx.pop(0)
        if self.inn.available() < 4 and self._pump_conn():
            # Death notice with no reply in flight: surface it now.
            raise EOFError("worker liveness pipe closed")
        start = time.perf_counter()
        message = self._read_frame()
        self.stats.recv_seconds += time.perf_counter() - start
        return message

    def close(self) -> None:
        self.stats.ring_stalls = self.out.stalls() + self.inn.stalls()
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self.out.close()
        self.inn.close()

    def stats_snapshot(self) -> TransportStats:
        """Current stats including live ring stall counters."""
        snap = TransportStats(**self.stats.snapshot())
        try:
            snap.ring_stalls = self.out.stalls() + self.inn.stalls()
        except (TypeError, ValueError):  # pragma: no cover - closed rings
            pass
        return snap

    def end_epoch(self) -> None:
        """Drop the per-flush WME op byte cache (timetags can restart)."""
        self.op_cache.clear()

    def worker_spec(self, child_conn) -> WorkerTransportSpec:
        return WorkerTransportSpec("ring", child_conn, self.out.name, self.inn.name)


# ---------------------------------------------------------------------------
# Worker-side endpoints
# ---------------------------------------------------------------------------


class PipeWorkerEndpoint:
    """Worker side of the pipe transport (plain Connection semantics)."""

    def __init__(self, conn) -> None:
        self.conn = conn

    def recv(self) -> tuple:
        return self.conn.recv()  # raises EOFError when coordinator dies

    def send(self, message: tuple) -> None:
        self.conn.send(message)

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class PeerGone(EOFError):
    """Raised by the worker's ring waiter when the coordinator died."""


class RingWorkerEndpoint:
    """Worker side of a shard's ring pair (attaches by segment name)."""

    def __init__(self, conn, c2w_name: str, w2c_name: str) -> None:
        self.conn = conn
        self.inn = Ring.attach(c2w_name)
        self.out = Ring.attach(w2c_name)
        #: Prefix-consistent mirror of the coordinator's symbol table,
        #: grown only by batch-frame deltas.  Never allocates ids.
        self.mirror = SymbolTable()

    def _pump_conn(self, timeout: float = 0.0) -> bool:
        """Drain doorbells; True means the coordinator is gone."""
        conn = self.conn
        while conn.poll(timeout):
            try:
                payload = conn.recv_bytes()
            except (EOFError, OSError):
                return True
            if payload != DOORBELL:
                return True
            timeout = 0
        return False

    def _waiter(self) -> None:
        if self._pump_conn():
            raise PeerGone("coordinator closed the liveness pipe")

    def _wait_for_command(self) -> None:
        """Idle-worker wait: yield briefly, then park on the pipe until
        the coordinator's doorbell (or death) wakes us."""
        inn = self.inn
        spins = 0
        while not inn.has_data():
            spins += 1
            if spins <= _PARK_SPIN:
                time.sleep(0)
                continue
            inn.set_parked(True)
            if inn.has_data():
                inn.set_parked(False)
                return
            gone = self._pump_conn(_PARK_WAIT)
            inn.set_parked(False)
            if gone:
                raise PeerGone("coordinator closed the liveness pipe")

    def recv(self) -> tuple:
        try:
            if not self.inn.has_data():
                self._wait_for_command()
            frame = self.inn.read_message(waiter=self._waiter)
        except PeerGone:
            raise EOFError from None
        if frame[0] == codec.FRAME_BATCH:
            ops, seq = codec.decode_batch(frame, self.mirror)
            return (messages.BATCH, ops, seq)
        return pickle.loads(frame[1:])

    def send(self, message: tuple) -> None:
        frame: Optional[bytes] = None
        if message[0] == messages.OK:
            try:
                frame = codec.encode_reply(message[1], message[2], self.mirror)
            except Exception:
                frame = None
        if frame is None:
            frame = bytes([codec.FRAME_PICKLE]) + pickle.dumps(
                message, protocol=pickle.HIGHEST_PROTOCOL
            )
        try:
            self.out.write(frame, waiter=self._waiter)
        except PeerGone:
            raise EOFError from None
        out = self.out
        if out.consumer_parked():
            out.set_parked(False)
            try:
                self.conn.send_bytes(DOORBELL)
            except (OSError, ValueError):
                raise EOFError from None

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self.inn.close()
        self.out.close()


# ---------------------------------------------------------------------------
# Factories
# ---------------------------------------------------------------------------


def create_endpoint(kind: str, conn, send_timeout: Optional[float] = 30.0):
    """Coordinator-side endpoint for a resolved transport *kind*."""
    if kind == "ring":
        return RingEndpoint(conn, send_timeout=send_timeout)
    if kind == "pipe":
        return PipeEndpoint(conn)
    raise ValueError(f"unresolved transport kind {kind!r}")


def connect_worker(spec: WorkerTransportSpec):
    """Worker-side endpoint from the spec the process was started with."""
    if spec.kind == "ring":
        return RingWorkerEndpoint(spec.conn, spec.c2w_name, spec.w2c_name)
    if spec.kind == "pipe":
        return PipeWorkerEndpoint(spec.conn)
    raise ValueError(f"unresolved transport kind {spec.kind!r}")
