"""Live parallel match execution (the repo's first real parallelism).

Where :mod:`repro.psim` *predicts* the paper's machine by discrete-event
simulation, this package *executes* match work concurrently: productions
are partitioned over shard worker processes, each owning its slice of
the Rete network's alpha/beta memories, with a work-queue coordinator
and a batch barrier per recognize--act cycle.  See
``docs/parallel-backend.md`` for the architecture and its GIL-driven
design constraints.

Public surface:

* :class:`ParallelMatcher` -- the engine-pluggable matcher backend;
* :func:`~repro.parallel.partition.assign_productions` and
  :func:`~repro.parallel.partition.measure_sharing_loss` -- the
  partitioner and the live sharing-loss measurement;
* :func:`~repro.parallel.validate.compare_backends` /
  :func:`~repro.parallel.validate.validate_parallel` -- differential
  validation of any backend set;
* the transport layer -- :data:`~repro.parallel.transport.TRANSPORTS`
  (``auto``/``ring``/``pipe``), :class:`~repro.parallel.ring.Ring`, the
  struct codec, and :class:`DispatchConfig` for batched dispatch
  tuning.
"""

from .executor import (
    DispatchConfig,
    ParallelMatcher,
    WorkQueue,
    default_worker_count,
)
from .ring import Ring, RingStall
from .transport import TRANSPORTS, TransportStats, resolve_transport, ring_available
from .supervisor import (
    RecoveryEvent,
    ShardFailure,
    ShardSupervisor,
    SupervisorConfig,
)
from .partition import (
    Partition,
    SharingLoss,
    assign_productions,
    measure_sharing_loss,
    route_classes,
)
from .validate import (
    DifferentialReport,
    RunRecord,
    compare_backends,
    run_recorded,
    validate_parallel,
)
from .worker import RecordingConflictSet, ShardState, rebuild_state

__all__ = [
    "ParallelMatcher",
    "WorkQueue",
    "default_worker_count",
    "DispatchConfig",
    "Ring",
    "RingStall",
    "TRANSPORTS",
    "TransportStats",
    "resolve_transport",
    "ring_available",
    "Partition",
    "SharingLoss",
    "assign_productions",
    "measure_sharing_loss",
    "route_classes",
    "DifferentialReport",
    "RunRecord",
    "compare_backends",
    "run_recorded",
    "validate_parallel",
    "RecordingConflictSet",
    "ShardState",
    "rebuild_state",
    "RecoveryEvent",
    "ShardFailure",
    "ShardSupervisor",
    "SupervisorConfig",
]
