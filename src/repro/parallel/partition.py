"""Partitioning productions across shard workers.

The live executor distributes the Rete network the way the paper's
Section 5 machine distributes node memories: every production's nodes
(and therefore its alpha and beta memories) live in exactly one
partition, so a node's memory is only ever touched by its owning
worker -- memory-partition ownership *is* the per-node lock, held with
zero contention.  What distribution costs is *sharing*: alpha memories
and constant-test chains shared between productions in the serial
network are replicated into every partition using them.  That is the
paper's "loss of node sharing", and :func:`measure_sharing_loss`
reports the live analogue of the calibrated 1.48 inflation factor.

Assignment is greedy balanced: productions are sorted by descending
static weight (elementary test count -- the same specificity measure
LEX uses) and each goes to the currently lightest shard.  The order is
made deterministic by breaking weight ties on the production name, so
equal inputs give equal partitions on every run and worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..ops5.production import Production


@dataclass
class Partition:
    """One shard's share of the program."""

    index: int
    productions: list[Production] = field(default_factory=list)
    weight: float = 0.0
    #: True once the supervisor has demoted this shard to run inline in
    #: the coordinator after repeated worker failures.
    degraded: bool = False

    @property
    def classes(self) -> set[str]:
        """WME classes any of this shard's condition elements mention."""
        return {ce.cls for p in self.productions for ce in p.conditions}

    @property
    def names(self) -> tuple[str, ...]:
        """The production names placed on this shard, placement order."""
        return tuple(p.name for p in self.productions)


def production_weight(production: Production) -> float:
    """Static cost estimate used for balancing (elementary test count)."""
    return float(production.specificity)


def assign_productions(
    productions: Sequence[Production],
    shards: int,
    weights: Mapping[str, float] | None = None,
) -> list[Partition]:
    """Deterministically balance *productions* over *shards* partitions.

    ``weights`` overrides the static estimate per production name --
    callers with profile data (e.g. measured comparisons per rule) can
    rebalance on real costs.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    partitions = [Partition(i) for i in range(shards)]
    def weight_of(production: Production) -> float:
        if weights and production.name in weights:
            return float(weights[production.name])
        return production_weight(production)

    ordered = sorted(productions, key=lambda p: (-weight_of(p), p.name))
    for production in ordered:
        lightest = min(partitions, key=lambda s: (s.weight, s.index))
        lightest.productions.append(production)
        lightest.weight += weight_of(production)
    return partitions


def route_classes(partitions: Iterable[Partition]) -> dict[str, tuple[int, ...]]:
    """The alpha router: WME class -> shard indices that must see it.

    This is the partitioned alpha network's top level: a change is
    broadcast only to partitions holding a condition element of its
    class; everyone else never even hears about it.
    """
    table: dict[str, set[int]] = {}
    for partition in partitions:
        for cls in partition.classes:
            table.setdefault(cls, set()).add(partition.index)
    return {cls: tuple(sorted(ids)) for cls, ids in table.items()}


@dataclass(frozen=True)
class SharingLoss:
    """Replication cost of distributing the network (paper Section 6).

    ``factor`` compares the distributed node count against the shared
    serial network's: 1.0 means the partition happened to share nothing
    anyway; the paper calibrates the work-inflation analogue at 1.48.
    """

    serial_nodes: int
    distributed_nodes: int

    @property
    def factor(self) -> float:
        if not self.serial_nodes:
            return 1.0
        return self.distributed_nodes / self.serial_nodes


def measure_sharing_loss(partitions: Sequence[Partition]) -> SharingLoss:
    """Compile each partition and the union network; compare node counts."""
    from ..rete.network import ReteNetwork  # deferred: keep import cheap

    def node_count(productions: Iterable[Production]) -> int:
        net = ReteNetwork()
        for production in productions:
            net.add_production(production)
        return net.nodes_created

    serial = node_count(p for s in partitions for p in s.productions)
    distributed = sum(node_count(s.productions) for s in partitions)
    return SharingLoss(serial_nodes=serial, distributed_nodes=distributed)
