"""Struct-packed frames for the shared-memory ring transport.

The pipe transport pickles whole command tuples; fine at large batch
sizes, but the per-op constant -- pickling a dict of strings, a pipe
write, a read, an unpickle -- is exactly the dispatch overhead the
paper's hardware scheduler argument says must shrink (Sections 4-5).
This codec packs the two hot frame kinds by hand:

* **batch frames** (coordinator -> worker): every symbol string crosses
  as a fixed-width u32 intern id against the coordinator's
  :class:`~repro.ops5.symbols.SymbolTable`; each frame carries the
  table *delta* (the symbols the worker's mirror has not seen yet), so
  a steady-state frame for ``(+w, class, {attr: sym}, tag)`` is a few
  dozen bytes with no string handling at all;
* **ok frames** (worker -> coordinator): the conflict-set edit stream
  and stat rows, symbols encoded by id when the worker's mirror knows
  them and inline otherwise (a mirror never allocates ids -- the
  coordinator owns the id space).

Anything else -- checkpoints, restores, errors, productions inside a
batch -- rides as a pickle frame; those are rare control-plane events.
Values keep OPS5 semantics: numbers are never interned (``1 == 1.0``
but symbol ``|1|`` equals neither), every value is type-tagged, and
ints beyond i64 fall back to a decimal-string encoding.  A codec error
on the encode side is never fatal: the transport catches it and ships
the frame as a pickle instead.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Optional, Sequence

from ..ops5.symbols import SymbolTable
from . import messages

__all__ = [
    "FRAME_PICKLE",
    "FRAME_BATCH",
    "FRAME_OK",
    "encode_batch",
    "decode_batch",
    "encode_reply",
    "decode_reply",
]

#: First byte of every ring message.
FRAME_PICKLE = 0
FRAME_BATCH = 1
FRAME_OK = 2

_OP_ADD_WME = 1
_OP_REMOVE_WME = 2
_OP_RESET = 3
_OP_ADD_PROD = 4
_OP_REMOVE_PROD = 5

_VAL_INT = 1
_VAL_FLOAT = 2
_VAL_SYM = 3
_VAL_STR = 4
_VAL_BIGINT = 5

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")
_U8 = struct.Struct("<B")

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

#: Pre-packed one-byte tag for the encode slow path.
_BIGINT_TAG = _U8.pack(_VAL_BIGINT)

#: Combined structs covering whole hot-path records in one pack/unpack:
#: the ADD_WME fixed header (after the op tag) and the three fixed-width
#: attribute encodings.  Same byte layout as the field-at-a-time form --
#: "<" disables padding -- just fewer interpreter round trips.
_WME_HDR = struct.Struct("<BIqH")  # op tag, class id, timetag, nattrs
_WME_BODY = struct.Struct("<IqH")  # the same header once the tag is read
_ATTR_SYM = struct.Struct("<IBI")  # attr id, VAL_SYM, symbol id
_ATTR_INT = struct.Struct("<IBq")  # attr id, VAL_INT, i64
_ATTR_FLOAT = struct.Struct("<IBd")  # attr id, VAL_FLOAT, f64
_ATTR_HDR = struct.Struct("<IB")  # attr id + value tag (decode side)


def _put_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8", "surrogatepass")
    out += _U32.pack(len(raw))
    out += raw


def _get_str(buf: bytes, pos: int) -> tuple[str, int]:
    (n,) = _U32.unpack_from(buf, pos)
    pos += 4
    return buf[pos : pos + n].decode("utf-8", "surrogatepass"), pos + n


def _put_value(out: bytearray, value: Any, table: SymbolTable, allocate: bool) -> None:
    """Type-tagged value encoding (symbols by id where possible).

    *allocate* distinguishes the two sides of the wire: the coordinator
    interns freely (its frame carries the delta), a worker mirror only
    uses ids it already has and ships unknown strings inline.
    """
    kind = type(value)
    if kind is str:
        if allocate:
            out += _U8.pack(_VAL_SYM)
            out += _U32.pack(table.intern_id(value))
        else:
            ident = table.try_id(value)
            if ident is not None:
                out += _U8.pack(_VAL_SYM)
                out += _U32.pack(ident)
            else:
                out += _U8.pack(_VAL_STR)
                _put_str(out, value)
    elif kind is int:
        if _I64_MIN <= value <= _I64_MAX:
            out += _U8.pack(_VAL_INT)
            out += _I64.pack(value)
        else:
            out += _U8.pack(_VAL_BIGINT)
            _put_str(out, str(value))
    elif kind is float:
        out += _U8.pack(_VAL_FLOAT)
        out += _F64.pack(value)
    else:
        # bool, None, anything exotic: no wire form.  The transport
        # falls back to a pickle frame for the whole message.
        raise TypeError(f"value {value!r} has no packed encoding")


def _get_value(buf: bytes, pos: int, table: SymbolTable) -> tuple[Any, int]:
    tag = buf[pos]
    pos += 1
    if tag == _VAL_SYM:
        (ident,) = _U32.unpack_from(buf, pos)
        return table.text_of(ident), pos + 4
    if tag == _VAL_INT:
        (v,) = _I64.unpack_from(buf, pos)
        return v, pos + 8
    if tag == _VAL_FLOAT:
        (f,) = _F64.unpack_from(buf, pos)
        return f, pos + 8
    if tag == _VAL_STR:
        return _get_str(buf, pos)
    if tag == _VAL_BIGINT:
        text, pos = _get_str(buf, pos)
        return int(text), pos
    raise ValueError(f"unknown value tag {tag}")


# ---------------------------------------------------------------------------
# Batch frames (coordinator -> worker)
# ---------------------------------------------------------------------------


def encode_batch(
    ops: Sequence[Sequence[Any]],
    seq: Optional[int],
    table: SymbolTable,
    watermark: int,
    op_cache: Optional[dict] = None,
) -> tuple[bytes, int]:
    """Pack ``("batch", ops, seq)``; returns ``(frame, new_watermark)``.

    The body is encoded first (interning may allocate ids), then the
    symbol delta since *watermark* is prepended so the worker's mirror
    is current before it decodes a single op.  *op_cache* (timetag ->
    encoded body) lets the executor reuse a WME op's bytes when one
    change fans out to several shards; it must not outlive one flush
    epoch (timetags restart on ``clear``).
    """
    intern = table.intern_id
    pack_u32 = _U32.pack
    body = bytearray()
    body += pack_u32(len(ops))
    for op in ops:
        tag = op[0]
        if tag == messages.ADD_WME:
            _, cls, attrs, timetag = op
            cached = op_cache.get(timetag) if op_cache is not None else None
            if cached is not None:
                body += cached
                continue
            # The value encoding of _put_value, inlined with *allocate*
            # resolved and whole records packed in one struct call: this
            # loop runs once per attribute of every WME the run
            # dispatches, and is what the dispatch-cost bench times.
            op_body = bytearray(_WME_HDR.pack(_OP_ADD_WME, intern(cls), timetag, len(attrs)))
            for attr, value in attrs.items():
                kind = type(value)
                if kind is str:
                    op_body += _ATTR_SYM.pack(intern(attr), _VAL_SYM, intern(value))
                elif kind is int:
                    if _I64_MIN <= value <= _I64_MAX:
                        op_body += _ATTR_INT.pack(intern(attr), _VAL_INT, value)
                    else:
                        op_body += pack_u32(intern(attr))
                        op_body += _BIGINT_TAG
                        _put_str(op_body, str(value))
                elif kind is float:
                    op_body += _ATTR_FLOAT.pack(intern(attr), _VAL_FLOAT, value)
                else:
                    raise TypeError(f"value {value!r} has no packed encoding")
            if op_cache is not None:
                op_cache[timetag] = bytes(op_body)
            body += op_body
        elif tag == messages.REMOVE_WME:
            body += _U8.pack(_OP_REMOVE_WME)
            body += _I64.pack(op[1])
        elif tag == messages.RESET:
            body += _U8.pack(_OP_RESET)
        elif tag == messages.ADD_PRODUCTION:
            production = op[1]
            # Intern the name now: the worker's edit stream will name
            # this production, and the mirror can then sym-encode it.
            table.intern_id(production.name)
            blob = pickle.dumps(production, protocol=pickle.HIGHEST_PROTOCOL)
            body += _U8.pack(_OP_ADD_PROD)
            body += _U32.pack(len(blob))
            body += blob
        elif tag == messages.REMOVE_PRODUCTION:
            body += _U8.pack(_OP_REMOVE_PROD)
            body += _U32.pack(table.intern_id(op[1]))
        else:
            raise TypeError(f"op {tag!r} has no packed encoding")

    new_watermark = len(table)
    frame = bytearray()
    frame += _U8.pack(FRAME_BATCH)
    delta = table.delta(watermark)
    frame += _U32.pack(len(delta))
    for text in delta:
        _put_str(frame, text)
    frame += _I64.pack(-1 if seq is None else seq)
    frame += body
    return bytes(frame), new_watermark


def decode_batch(frame: bytes, mirror: SymbolTable) -> tuple[list, Optional[int]]:
    """Unpack a batch frame into ``(ops, seq)`` in wire-tuple format.

    Ops come out exactly as :mod:`repro.parallel.messages` specifies
    them, so :meth:`ShardState.apply_batch` and the journal never see a
    difference between transports.
    """
    assert frame[0] == FRAME_BATCH
    pos = 1
    (ndelta,) = _U32.unpack_from(frame, pos)
    pos += 4
    if ndelta:
        texts = []
        for _ in range(ndelta):
            text, pos = _get_str(frame, pos)
            texts.append(text)
        mirror.extend(texts)
    (seq,) = _I64.unpack_from(frame, pos)
    pos += 8
    (nops,) = _U32.unpack_from(frame, pos)
    pos += 4
    ops: list = []
    ops_append = ops.append
    text_of = mirror.text_of
    unpack_attr = _ATTR_HDR.unpack_from
    for _ in range(nops):
        tag = frame[pos]
        pos += 1
        if tag == _OP_ADD_WME:
            cls_id, timetag, nattrs = _WME_BODY.unpack_from(frame, pos)
            pos += 14
            attrs = {}
            for _ in range(nattrs):
                attr_id, vtag = unpack_attr(frame, pos)
                pos += 5
                if vtag == _VAL_SYM:
                    (ident,) = _U32.unpack_from(frame, pos)
                    pos += 4
                    value = text_of(ident)
                elif vtag == _VAL_INT:
                    (value,) = _I64.unpack_from(frame, pos)
                    pos += 8
                elif vtag == _VAL_FLOAT:
                    (value,) = _F64.unpack_from(frame, pos)
                    pos += 8
                else:
                    # Rare tags (inline string, bigint): re-read from
                    # the tag byte through the shared slow path.
                    value, pos = _get_value(frame, pos - 1, mirror)
                attrs[text_of(attr_id)] = value
            ops_append((messages.ADD_WME, text_of(cls_id), attrs, timetag))
        elif tag == _OP_REMOVE_WME:
            (timetag,) = _I64.unpack_from(frame, pos)
            pos += 8
            ops.append((messages.REMOVE_WME, timetag))
        elif tag == _OP_RESET:
            ops.append((messages.RESET,))
        elif tag == _OP_ADD_PROD:
            (n,) = _U32.unpack_from(frame, pos)
            pos += 4
            production = pickle.loads(frame[pos : pos + n])
            pos += n
            ops.append((messages.ADD_PRODUCTION, production))
        elif tag == _OP_REMOVE_PROD:
            (name_id,) = _U32.unpack_from(frame, pos)
            pos += 4
            ops.append((messages.REMOVE_PRODUCTION, mirror.text_of(name_id)))
        else:
            raise ValueError(f"unknown op tag {tag}")
    return ops, None if seq == -1 else seq


# ---------------------------------------------------------------------------
# OK replies (worker -> coordinator)
# ---------------------------------------------------------------------------


def encode_reply(
    edits: Sequence[tuple], stat_rows: Sequence[tuple], mirror: SymbolTable
) -> bytes:
    """Pack ``("ok", edits, stat_rows)`` against the worker's mirror."""
    out = bytearray()
    out += _U8.pack(FRAME_OK)
    out += _U32.pack(len(edits))
    for edit in edits:
        kind = edit[0]
        out += _U8.pack(0 if kind == messages.INSERT else 1)
        _put_value(out, edit[1], mirror, allocate=False)
        timetags = edit[2]
        out += _U16.pack(len(timetags))
        for timetag in timetags:
            out += _I64.pack(timetag)
        if kind == messages.INSERT:
            bindings = edit[3]
            out += _U16.pack(len(bindings))
            for key, value in bindings.items():
                _put_value(out, key, mirror, allocate=False)
                _put_value(out, value, mirror, allocate=False)
    out += _U32.pack(len(stat_rows))
    for row in stat_rows:
        for cell in row:
            out += _I64.pack(cell)
    return bytes(out)


def decode_reply(frame: bytes, table: SymbolTable) -> tuple[list, list]:
    """Unpack an OK frame into ``(edits, stat_rows)`` wire tuples."""
    assert frame[0] == FRAME_OK
    pos = 1
    (nedits,) = _U32.unpack_from(frame, pos)
    pos += 4
    edits: list = []
    for _ in range(nedits):
        is_delete = frame[pos]
        pos += 1
        name, pos = _get_value(frame, pos, table)
        (ntags,) = _U16.unpack_from(frame, pos)
        pos += 2
        timetags = []
        for _ in range(ntags):
            (timetag,) = _I64.unpack_from(frame, pos)
            pos += 8
            timetags.append(timetag)
        if is_delete:
            edits.append((messages.DELETE, name, tuple(timetags)))
        else:
            (nbind,) = _U16.unpack_from(frame, pos)
            pos += 2
            bindings = {}
            for _ in range(nbind):
                key, pos = _get_value(frame, pos, table)
                value, pos = _get_value(frame, pos, table)
                bindings[key] = value
            edits.append((messages.INSERT, name, tuple(timetags), bindings))
    (nrows,) = _U32.unpack_from(frame, pos)
    pos += 4
    stat_rows: list = []
    for _ in range(nrows):
        row = struct.unpack_from("<5q", frame, pos)
        pos += 40
        stat_rows.append(row)
    return edits, stat_rows
