"""The shared-memory parallel backend: compiled-kernel shards as threads.

The paper's Sections 4-5 argue that production-system parallelism only
pays when a dispatch costs about one scheduler operation -- the PSM gets
there with a hardware task queue over a *shared* match network.  The
process backends (``pipe``, ``ring``) partition the network across
address spaces and pay marshalling per op; this module is the
third backend, ``local``, which removes the boundary instead:

* Shards are **threads in the coordinator's address space**.  They
  share the process-wide symbol intern table, the
  :class:`~repro.kernel.shared.SharedKernel` registry (one codegen +
  module exec per ruleset shape, whichever shard gets there first), and
  the columnar alpha-store layout.
* Each shard executes the **compiled kernel**
  (:mod:`repro.kernel`) rather than the interpreted Rete -- per-activation
  match cost, not coordination, dominates the budget.
* A dispatch is an **append to a shared deque** -- no codec, no ring
  frames, no pickle.  WME inserts travel as ``("+wr", wme)`` object
  references (:data:`~repro.parallel.messages.ADD_WME_REF`), and
  conflict-set inserts come back as live
  :class:`~repro.ops5.production.Instantiation` references.
* Scheduling is **work stealing at node-activation granularity**: a
  shard's lane of ops is drained in small grains, and between grains
  the lane returns to a per-worker ready deque where any idle worker
  (or the coordinator itself, while it waits at the barrier) may steal
  it.  The flush barrier is a **counting epoch**: per-lane
  published/completed counters, no channel round-trip.

The coordinator-facing surface mirrors the process shards exactly
(``dispatch`` / ``collect`` / ``checkpoint`` / ``restore`` / ``stop`` /
``kill`` plus fault-plan consultation), so
:class:`~repro.parallel.executor.ParallelMatcher` drives all three
backends through one seam and the chaos/differential harnesses run
unchanged over this one.

Correctness discipline
----------------------
A lane is executed by **at most one thread at a time** (it is enqueued
on exactly one ready deque, or being drained, never both), so kernel
state needs no locks; stealing moves whole lanes between workers, never
splits one.  Replies preserve batch order because lanes are FIFO.
Faults are emulated at dispatch time: ``crash``/``pipe-drop`` discard
the shard's state (exactly what losing a process loses), ``hang`` wedges
the lane behind an abandonable sleep, ``slow`` prepends a bounded sleep.
"""

from __future__ import annotations

import threading
import time
import traceback
from collections import deque
from typing import Iterable, Optional, Sequence

from ..faults.plan import CRASH, HANG, HANG_FOREVER, PIPE_DROP, SLOW, FaultPlan
from ..kernel.runtime import KernelRuntime
from ..kernel.shared import shared_kernel
from ..ops5.conflict import ConflictSet
from ..ops5.production import Production
from ..ops5.wme import WME
from . import messages
from .supervisor import ShardFailure

__all__ = [
    "LocalKernelState",
    "LocalScheduler",
    "_LocalShard",
    "rebuild_local_state",
]

#: How many queued ops a worker runs before returning the lane to a
#: ready deque -- the steal window, i.e. the node-activation grain.
DEFAULT_GRAIN = 16

#: Sleep-task slice: injected hangs sleep in increments this long and
#: re-check the lane's abandoned flag, so kill() unwinds threads fast.
_SLEEP_SLICE = 0.02


class _RecordingConflictSet(ConflictSet):
    """A conflict set that journals its edits as zero-copy tuples.

    The process workers' recorder encodes inserts as
    ``("i", name, timetags, bindings)`` so they survive pickling; here
    both sides share an address space, so an insert is recorded as
    ``("I", instantiation)`` -- the coordinator files the very same
    object into its own conflict set.  Deletes stay ``("d", name,
    timetags)``.  ``delete_key`` is the override point (generated
    kernels bind it directly as ``cs_delete``); ``delete`` funnels
    through it, so nothing records twice.
    """

    def __init__(self) -> None:
        super().__init__()
        self.edits: list[tuple] = []

    def insert(self, inst) -> None:
        super().insert(inst)
        self.edits.append((messages.INSERT_REF, inst))

    def delete_key(self, key) -> None:
        super().delete_key(key)
        self.edits.append((messages.DELETE, key[0], key[1]))

    def drain(self) -> list[tuple]:
        edits, self.edits = self.edits, []
        return edits


class LocalKernelState:
    """One shard's match state: a compiled kernel over its rule slice.

    The thread-shard analogue of :class:`~repro.parallel.worker.ShardState`,
    but executing generated kernel closures instead of a
    :class:`~repro.rete.ReteNetwork`.  Mirrors
    :class:`~repro.kernel.matcher.CompiledMatcher`'s rebuild policy:
    production edits while WM is empty only mark the state dirty (one
    compile per final ruleset shape, so loading N productions does not
    pollute the process-wide kernel cache with N-1 prefix shapes); once
    WMEs exist an edit rebuilds immediately and emits the conflict-set
    *diff* as edits, because the coordinator incrementally maintains its
    merged view.
    """

    def __init__(self) -> None:
        self.productions: dict[str, Production] = {}
        self.wmes: dict[int, WME] = {}
        self.conflict_set = _RecordingConflictSet()
        self._rt: Optional[KernelRuntime] = None
        self._dirty = False

    # -- op application ----------------------------------------------------

    def apply_op(self, op: Sequence, wme_ordinal: int) -> Optional[tuple]:
        """Apply one batch op; return a stats row for WME ops, else None."""
        tag = op[0]
        if tag == messages.ADD_WME_REF:
            return self._add_wme(op[1], wme_ordinal)
        if tag == messages.ADD_WME:
            return self._add_wme(messages.decode_wme(op), wme_ordinal)
        if tag == messages.REMOVE_WME:
            return self._remove_wme(op[1], wme_ordinal)
        if tag == messages.ADD_PRODUCTION:
            production = op[1]
            self.productions[production.name] = production
            self._ruleset_edit()
            return None
        if tag == messages.REMOVE_PRODUCTION:
            del self.productions[op[1]]
            self._ruleset_edit()
            return None
        if tag == messages.RESET:
            self.productions = {}
            self.wmes = {}
            self.conflict_set = _RecordingConflictSet()
            self._rt = None
            self._dirty = False
            return None
        raise ValueError(f"unknown op tag {tag!r}")

    def apply_batch(self, ops: Iterable[Sequence]) -> tuple[list, list]:
        """Apply *ops* in order; return ``(edits, stat_rows)``.

        Used by the demoted-inline path and by restore replay; the
        scheduled path applies ops one at a time so grains interleave.
        """
        stat_rows: list[tuple] = []
        ordinal = 0
        for op in ops:
            row = self.apply_op(op, ordinal)
            if row is not None:
                stat_rows.append(row)
                ordinal += 1
        return self.conflict_set.drain(), stat_rows

    def _add_wme(self, wme: WME, ordinal: int) -> tuple:
        if self._dirty:
            self._rebuild(diff=False)
        self.wmes[wme.timetag] = wme
        rt = self._rt
        if rt is None:
            return (ordinal, 0, 0, 0, 0)
        stores = rt.by_class.get(wme.cls)
        if not stores:
            return (ordinal, 0, 0, 0, 0)
        counters = rt.counters
        b0, b1, b2 = counters
        affected: set[str] = set()
        for store in stores:
            predicate = store.predicate
            if predicate is None or predicate(wme):
                store.insert(wme)
                affected |= store.production_names
                for fn in store.add_subs:
                    fn(wme)
        return (
            ordinal,
            len(affected),
            counters[0] - b0,
            counters[1] - b1,
            counters[2] - b2,
        )

    def _remove_wme(self, timetag: int, ordinal: int) -> tuple:
        self._ensure_built()
        wme = self.wmes.pop(timetag)
        rt = self._rt
        if rt is None:
            return (ordinal, 0, 0, 0, 0)
        counters = rt.counters
        base = tuple(counters)
        affected: set[str] = set()
        hit = [s for s in rt.by_class.get(wme.cls, ()) if timetag in s.rows]
        # Two-phase, like CompiledMatcher: retraction subscribers run
        # while the columns still hold the dying WME, then rows drop.
        for store in hit:
            affected |= store.production_names
            for fn in store.del_subs:
                fn(wme)
        for store in hit:
            store.remove(wme)
        return (
            ordinal,
            len(affected),
            counters[0] - base[0],
            counters[1] - base[1],
            counters[2] - base[2],
        )

    # -- (re)compilation ---------------------------------------------------

    def _ruleset_edit(self) -> None:
        if self.wmes:
            self._rebuild(diff=True)
        else:
            self._dirty = True

    def _ensure_built(self) -> None:
        if self._dirty:
            self._rebuild(diff=False)

    def _rebuild(self, diff: bool) -> None:
        """Re-attach a kernel for the current ruleset over the WM mirror.

        Always builds a *fresh* recording conflict set and swaps it in:
        generated kernels bind ``cs_insert``/``cs_delete`` at attach
        time, so re-using the old set under a new runtime would leave
        stale closures writing into it.  Replay edits are discarded
        (replay is quiet); with ``diff=True`` the membership difference
        against the old set is appended instead, keeping the
        coordinator's incrementally-merged view exact.
        """
        pending = self.conflict_set.edits
        old_keys = self.conflict_set.snapshot() if diff else None
        cs = _RecordingConflictSet()
        productions = list(self.productions.values())
        rt = None
        if productions:
            kernel = shared_kernel(productions)
            rt = kernel.attach(
                cs, productions, (self.wmes[t] for t in sorted(self.wmes))
            )
        cs.edits = pending
        if diff:
            new_keys = cs.snapshot()
            for key in sorted(old_keys - new_keys):
                cs.edits.append((messages.DELETE, key[0], key[1]))
            for key in sorted(new_keys - old_keys):
                cs.edits.append((messages.INSERT_REF, cs.get(key)))
        self.conflict_set = cs
        self._rt = rt
        self._dirty = False

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> tuple:
        """Snapshot the *inputs* (productions + WM mirror), not the kernel.

        Zero-copy like everything else in this backend: the containers
        are copied (a checkpoint must freeze membership while the live
        state keeps mutating) but the Production and WME objects inside
        are shared by reference.  That sharing is load-bearing, not just
        cheap: the engine removes WMEs by identity, so a restored
        shard's instantiations must reference the coordinator's live WME
        objects -- a pickle round-trip here (the process backend's
        design) would resurface them as equal-but-distinct copies and
        poison every firing that touches them.  The kernel itself is
        never captured: it is a pure function of the ruleset shape, so
        restore re-attaches from the shared registry and replays the
        mirror.
        """
        return (dict(self.productions), dict(self.wmes))

    def state_size(self) -> int:
        return self._rt.state_size() if self._rt is not None else 0


def rebuild_local_state(
    checkpoint: Optional[tuple], journal: Iterable[Sequence]
) -> LocalKernelState:
    """Checkpoint + journal-tail replay, the recovery path's core.

    Mirrors :func:`repro.parallel.worker.rebuild_state`: restore the
    last checkpoint snapshot (or start empty), then re-apply the
    journalled ops quietly -- edits and stat rows from replay are
    discarded, because the coordinator already merged the originals
    before the failure.
    """
    state = LocalKernelState()
    if checkpoint is not None:
        productions, wmes = checkpoint
        state.productions = dict(productions)
        state.wmes = dict(wmes)
        if state.productions:
            state._rebuild(diff=False)
        state.conflict_set.drain()
    ops = list(journal)
    if ops:
        state.apply_batch(ops)
    return state


class _Lane:
    """One shard's FIFO of pending tasks plus its epoch counters.

    ``scheduled`` is the single-executor token: True exactly while the
    lane sits on a ready deque or is being drained, so two workers can
    never run the same shard's kernel concurrently.  ``published`` /
    ``completed`` are the counting-epoch pair: the barrier for this
    lane is simply ``completed == published``, no message round-trip.
    """

    __slots__ = (
        "index",
        "home",
        "state",
        "tasks",
        "lock",
        "scheduled",
        "published",
        "completed",
        "replies",
        "abandoned",
    )

    def __init__(self, index: int, home: int, state: LocalKernelState) -> None:
        self.index = index
        self.home = home
        self.state = state
        self.tasks: deque = deque()
        self.lock = threading.Lock()
        self.scheduled = False
        self.published = 0
        self.completed = 0
        self.replies: deque = deque()
        self.abandoned = False


class _BatchJob:
    """Book-keeping for one dispatched batch as its ops flow as tasks."""

    __slots__ = ("remaining", "stat_rows", "wme_ordinal", "failed", "error")

    def __init__(self, remaining: int) -> None:
        self.remaining = remaining
        self.stat_rows: list[tuple] = []
        self.wme_ordinal = 0
        self.failed = False
        self.error: Optional[tuple[str, str]] = None


class LocalScheduler:
    """Work-stealing task scheduler over the thread shards.

    *workers* daemon threads each own a ready deque of lanes.  A lane is
    pushed to its home worker's deque on dispatch; the owning worker
    drains it ``grain`` ops at a time, re-queueing between grains so the
    lane is stealable at node-activation granularity.  Idle workers
    steal from the *back* of peers' deques (classic Chase-Lev
    discipline, minus the lock-free part -- one condition variable
    guards all deques, which is proportionate under a GIL).  The
    coordinator thread "helps": while it waits at the flush barrier it
    drains lanes too, so on few-core hosts the barrier wait converts
    into match work instead of a context switch.
    """

    def __init__(self, workers: int, grain: int = DEFAULT_GRAIN) -> None:
        self.workers = max(1, workers)
        self.grain = max(1, grain)
        self._cv = threading.Condition()
        self._ready: list[deque] = [deque() for _ in range(self.workers)]
        self._stopped = False
        # Counters (ints; single-writer or GIL-atomic += under CPython,
        # and read only for reporting).
        self.steals = 0
        self.executed = 0
        self.helped = 0
        self.fast_batches = 0
        self.epoch_waits = 0
        self.epochs = 0
        self.max_queue_depth = 0
        self._threads = [
            threading.Thread(
                target=self._run, args=(w,), daemon=True, name=f"repro-local-{w}"
            )
            for w in range(self.workers)
        ]
        for t in self._threads:
            t.start()

    # -- dispatch ----------------------------------------------------------

    def enqueue(self, lane: _Lane, tasks: Sequence[tuple]) -> None:
        """Publish *tasks* onto *lane* and make the lane runnable."""
        with lane.lock:
            lane.tasks.extend(tasks)
            lane.published += len(tasks)
            need_schedule = not lane.scheduled and not lane.abandoned
            if need_schedule:
                lane.scheduled = True
        if need_schedule:
            with self._cv:
                self._ready[lane.home].append(lane)
                depth = sum(len(q) for q in self._ready)
                if depth > self.max_queue_depth:
                    self.max_queue_depth = depth
                self._cv.notify(1)

    # -- worker side -------------------------------------------------------

    def _run(self, worker: int) -> None:
        while True:
            with self._cv:
                while True:
                    if self._stopped:
                        return
                    lane = self._take(worker)
                    if lane is not None:
                        break
                    self._cv.wait(0.05)
            self.executed += self._drain(lane, worker)

    def _take(self, worker: int, helper: bool = False) -> Optional[_Lane]:
        """Pop a runnable lane: own deque first, then steal. CV held.

        With ``helper=True`` (the coordinator draining at the barrier)
        lanes whose next task is a sleep are skipped: an injected hang
        must wedge a *worker* thread, never the coordinator -- otherwise
        the collect deadline could not fire.
        """
        own = self._ready[worker]
        if own:
            lane = self._pick(own, helper)
            if lane is not None:
                return lane
        for offset in range(1, self.workers):
            peer = self._ready[(worker + offset) % self.workers]
            if peer:
                lane = self._pick(peer, helper)
                if lane is not None:
                    self.steals += 1
                    return lane
        return None

    @staticmethod
    def _pick(queue: deque, helper: bool) -> Optional[_Lane]:
        if not helper:
            return queue.popleft()
        # Peeking without the lane lock is safe: a lane on a ready deque
        # has no concurrent drainer, and enqueue only appends.
        for lane in queue:
            head = lane.tasks[0] if lane.tasks else None
            if head is None or head[0] != "sleep":
                queue.remove(lane)
                return lane
        return None

    def _drain(self, lane: _Lane, worker: int, helper: bool = False) -> int:
        """Execute *lane*'s queued tasks on the calling thread.

        A worker thread runs one task (= one grain of ops) and returns
        the lane to its deque, keeping it stealable at node-activation
        granularity.  The helping coordinator runs the lane dry in one
        visit instead -- at the barrier every lane must drain anyway,
        so grain-by-grain requeueing would be pure lock traffic -- but
        refuses sleep tasks (injected hangs must wedge a worker thread,
        never the coordinator).

        Returns the number of tasks executed.  The single-executor
        invariant holds because ``lane.scheduled`` stays True from the
        enqueue that scheduled the lane until this method observes an
        empty task deque under the lane lock.
        """
        ran = 0
        while True:
            task = None
            declined = False
            with lane.lock:
                if lane.abandoned:
                    lane.tasks.clear()
                    lane.scheduled = False
                    return ran
                if lane.tasks:
                    if helper and lane.tasks[0][0] == "sleep":
                        declined = True
                    else:
                        task = lane.tasks.popleft()
                else:
                    lane.scheduled = False
            if declined:
                # Hand the sleeping lane to a worker thread.
                with self._cv:
                    self._ready[lane.home].append(lane)
                    self._cv.notify(1)
                return ran
            if task is None:
                break
            self._execute(lane, task)
            lane.completed += 1
            ran += 1
            if not helper:
                requeue = False
                with lane.lock:
                    if lane.tasks and not lane.abandoned:
                        requeue = True  # keep scheduled; stay stealable
                    else:
                        lane.scheduled = False
                if requeue:
                    with self._cv:
                        self._ready[worker].append(lane)
                        self._cv.notify(1)
                    return ran
                break
        if not helper:
            # A reply may have completed an epoch; wake barrier waiters.
            with self._cv:
                self._cv.notify_all()
        return ran

    def _execute(self, lane: _Lane, task: tuple) -> None:
        kind = task[0]
        if kind == "sleep":
            deadline = time.monotonic() + task[1]
            while time.monotonic() < deadline and not lane.abandoned:
                time.sleep(_SLEEP_SLICE)
            return
        _, job, ops = task
        if not job.failed:
            state = lane.state
            apply_op = state.apply_op
            rows = job.stat_rows
            try:
                for op in ops:
                    row = apply_op(op, job.wme_ordinal)
                    if row is not None:
                        rows.append(row)
                        job.wme_ordinal += 1
            except Exception as exc:  # noqa: BLE001 - mirrors worker loop
                job.failed = True
                job.error = (repr(exc), traceback.format_exc())
                # State is torn mid-batch; start fresh exactly like the
                # process worker does -- the coordinator restores from
                # checkpoint + journal on seeing the error reply.
                lane.state = LocalKernelState()
        job.remaining -= 1
        if job.remaining == 0:
            if job.failed:
                reply = (messages.ERROR, job.error[0], job.error[1])
            else:
                reply = (messages.OK, lane.state.conflict_set.drain(), job.stat_rows)
            lane.replies.append(reply)
            # One wakeup per completed batch (not per op): a parked
            # barrier waiter learns its reply is ready immediately.
            with self._cv:
                self._cv.notify_all()

    # -- coordinator side --------------------------------------------------

    def help_until(self, lane: _Lane, predicate, deadline: Optional[float]) -> bool:
        """Run tasks on the caller's thread until *predicate* or timeout.

        This is the counting-epoch barrier: instead of blocking, the
        coordinator drains ready lanes (preferring *lane*'s home deque)
        while it waits.  Returns the predicate's final value.
        """
        limit = None if deadline is None else time.monotonic() + deadline
        while True:
            if predicate():
                return True
            with self._cv:
                claimed = (
                    None if self._stopped else self._take(lane.home, helper=True)
                )
            if claimed is not None:
                self.helped += self._drain(claimed, claimed.home, helper=True)
                continue
            # Nothing runnable here -- a worker may be mid-grain on the
            # lane we need.  Park briefly; reply/requeue notifies us.
            with self._cv:
                if predicate():
                    return True
                remaining = None if limit is None else limit - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return bool(predicate())
                self.epoch_waits += 1
                self._cv.wait(0.01 if remaining is None else min(0.01, remaining))

    def end_epoch(self) -> None:
        """Mark a flush-barrier epoch complete (reporting only)."""
        self.epochs += 1

    # -- lifecycle / reporting ---------------------------------------------

    def shutdown(self) -> None:
        with self._cv:
            self._stopped = True
            self._cv.notify_all()
        for t in self._threads:
            t.join(timeout=1.0)

    def stats(self) -> dict:
        """Side-effect-free counters snapshot (never advances the epoch)."""
        return {
            "workers": self.workers,
            "grain": self.grain,
            "tasks_executed": self.executed,
            "tasks_helped": self.helped,
            "fast_batches": self.fast_batches,
            "steals": self.steals,
            "epochs": self.epochs,
            "epoch_waits": self.epoch_waits,
            "max_queue_depth": self.max_queue_depth,
            "queue_depths": [len(q) for q in self._ready],
        }


class _LocalShard:
    """Coordinator-side handle for one thread shard.

    With a scheduler this fronts a :class:`_Lane`; with
    ``scheduler=None`` it executes synchronously on the caller's thread
    -- the demotion target after ``max_failures``, the thread analogue
    of the executor's ``_InlineShard`` (and, like it, it never consults
    the fault plan).
    """

    def __init__(
        self,
        index: int,
        scheduler: Optional[LocalScheduler] = None,
        fault_plan: Optional[FaultPlan] = None,
        state: Optional[LocalKernelState] = None,
    ) -> None:
        self.index = index
        self.scheduler = scheduler
        self.fault_plan = fault_plan
        self._dead: Optional[str] = None
        self._replies: deque = deque()  # inline mode only
        initial = state if state is not None else LocalKernelState()
        if scheduler is not None:
            self.lane: Optional[_Lane] = _Lane(
                index, index % scheduler.workers, initial
            )
        else:
            self.lane = None
            self._state = initial

    @property
    def state(self) -> LocalKernelState:
        return self.lane.state if self.lane is not None else self._state

    # -- command surface ---------------------------------------------------

    def dispatch(self, ops: Sequence, seq: Optional[int] = None) -> None:
        if self.scheduler is None:
            self._dispatch_inline(ops)
            return
        if self._dead is not None:
            return  # a dead process swallows writes too; collect() raises
        tasks: list[tuple] = []
        fault = (
            self.fault_plan.shard_fault(self.index, seq)
            if self.fault_plan is not None
            else None
        )
        if fault is not None:
            if fault.kind in (CRASH, PIPE_DROP):
                # Losing a thread shard loses what losing a process
                # loses: all match state since the last checkpoint.
                self._dead = "crash"
                self._abandon_lane()
                return
            if fault.kind in (HANG, SLOW):
                seconds = fault.seconds if fault.seconds > 0 else HANG_FOREVER
                tasks.append(("sleep", seconds))
        lane = self.lane
        if not ops:
            # Nothing to run, but the protocol owes one reply per batch.
            lane.replies.append((messages.OK, [], []))
            return
        grain = self.scheduler.grain
        if (
            fault is None
            and len(ops) <= grain
            and lane.completed >= lane.published
            and not lane.tasks
        ):
            # Granularity shortcut -- the paper's Section 4 trade-off
            # measured live: below one grain of work the enqueue/notify/
            # steal round-trip costs more than the match work itself, so
            # a quiescent lane serves the batch on the caller's thread.
            # The single-executor discipline holds (nothing is queued,
            # nothing mid-drain), and batches bigger than a grain still
            # go through the deques where workers and thieves share them.
            self.scheduler.fast_batches += 1
            try:
                edits, stat_rows = lane.state.apply_batch(ops)
            except Exception as exc:  # noqa: BLE001 - mirrors worker loop
                lane.state = LocalKernelState()
                lane.replies.append(
                    (messages.ERROR, repr(exc), traceback.format_exc())
                )
                return
            lane.replies.append((messages.OK, edits, stat_rows))
            return
        # One task per grain of ops: the work-stealing (and helping)
        # granularity without per-op task bookkeeping.
        job = _BatchJob(0)
        op_tasks = [
            ("ops", job, ops[start : start + grain])
            for start in range(0, len(ops), grain)
        ]
        job.remaining = len(op_tasks)
        tasks.extend(op_tasks)
        self.scheduler.enqueue(lane, tasks)

    def _dispatch_inline(self, ops: Sequence) -> None:
        try:
            edits, stat_rows = self._state.apply_batch(ops)
        except Exception as exc:  # noqa: BLE001 - mirrors worker loop
            self._state = LocalKernelState()
            self._replies.append(
                (messages.ERROR, repr(exc), traceback.format_exc())
            )
            return
        self._replies.append((messages.OK, edits, stat_rows))

    def collect(self, deadline: Optional[float] = None):
        if self.scheduler is None:
            assert self._replies  # dispatch is synchronous in this mode
            return self._replies.popleft()
        if self._dead is not None:
            raise ShardFailure(
                self.index, self._dead, "shard state discarded by injected fault"
            )
        lane = self.lane
        served = self.scheduler.help_until(
            lane, lambda: bool(lane.replies), deadline
        )
        if not served:
            raise ShardFailure(
                self.index,
                "hang",
                f"no reply within {deadline:g}s"
                if deadline is not None
                else "no reply",
            )
        return lane.replies.popleft()

    def checkpoint(self, deadline: Optional[float] = None) -> tuple:
        """Snapshot state; called at the flush barrier (lane drained)."""
        if self.scheduler is None:
            return self._state.checkpoint()
        lane = self.lane
        settled = self.scheduler.help_until(
            lane, lambda: lane.completed >= lane.published, deadline
        )
        if not settled:
            raise ShardFailure(
                self.index, "hang", "lane did not settle for checkpoint"
            )
        return lane.state.checkpoint()

    def restore(self, checkpoint: Optional[bytes], journal: Sequence) -> int:
        """Rebuild from checkpoint + journal tail; returns ops replayed."""
        state = rebuild_local_state(checkpoint, journal)
        if self.scheduler is not None:
            self._abandon_lane()
            self.lane = _Lane(
                self.index, self.index % self.scheduler.workers, state
            )
            self._dead = None
        else:
            self._state = state
        return len(journal)

    def stop(self) -> None:
        self._abandon_lane()

    def kill(self) -> None:
        """Tear the shard down ungracefully (recovery path)."""
        self._dead = self._dead or "crash"
        self._abandon_lane()

    def _abandon_lane(self) -> None:
        lane = self.lane
        if lane is None:
            return
        lane.abandoned = True  # drain loops bail; sleep tasks unwind
        with lane.lock:
            lane.tasks.clear()
        lane.replies.clear()
