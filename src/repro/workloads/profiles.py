"""Measured characteristics of the paper's six production systems.

The paper evaluates VT, ILOG, MUD, DAA, R1-Soar, and Eight-Puzzle-Soar
(Section 6).  Their traces are CMU-internal and were never published, so
this reproduction substitutes *calibrated synthetic workloads*: a
:class:`SystemProfile` captures the statistics the paper (and the
companion measurement reports it cites) publishes --

* ~30 productions affected per working-memory change, with large
  per-system variation (Section 4);
* most affected productions need a single two-input activation, a few
  need many (the processing-variance argument, Sections 4 and 8);
* ~2.5 working-memory changes per production firing (implied by the
  9400 wme-changes/sec vs. 3800 firings/sec pair in Section 6);
* node-activation task sizes of 50-100 instructions (Section 4);
* a serial cost near c1 = 1800 instructions per change (Section 3.1).

The per-system numbers below are calibrated so that the simulated
Figure 6-1 / 6-2 curves reproduce the paper's shape: saturation by
32-64 processors, per-system plateaus spanning roughly 6x, an average
concurrency near 16 at 32 processors, and higher plateaus for the
"parallel firings" variants of R1-Soar and EP-Soar.

Each profile's docstring-free fields are knobs of the synthetic
generator (:mod:`repro.workloads.synthetic`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SystemProfile:
    """Generator parameters for one production system's workload."""

    name: str
    #: Recognize--act cycles to generate.
    firings: int = 150
    #: Mean working-memory changes per firing (paper: ~2.5).
    changes_per_firing: float = 2.5
    #: Mean productions affected per change (paper: ~30 overall).
    affected_mean: float = 28.0
    #: Dispersion of the affected count (geometric-like tail).
    affected_spread: float = 0.5
    #: Fraction of affected productions with heavy (multi-activation)
    #: processing -- the variance source.
    heavy_fraction: float = 0.12
    #: Mean fan-out of a heavy production's expensive join (number of
    #: parallel successor activations).
    heavy_fanout: float = 6.0
    #: Serial chain depth of a heavy production's beta path.
    heavy_depth: int = 3
    #: Fraction of a heavy production's work that is irreducibly serial
    #: (deep chain rather than fan-out): drives the plateau down.
    heavy_serial_bias: float = 0.35
    #: Fraction of affected productions whose match reaches the conflict
    #: set (terminal activation).
    terminal_fraction: float = 0.15
    #: Number of distinct productions in the (synthetic) program; node
    #: identities cycle through them, creating realistic lock reuse.
    program_productions: int = 120
    #: Alpha-memory sharing: mean productions sharing one alpha memory.
    alpha_sharing: float = 3.0

    def __post_init__(self) -> None:
        if self.firings < 1:
            raise ValueError("firings must be >= 1")
        if self.changes_per_firing < 1.0:
            raise ValueError("changes_per_firing must be >= 1")
        if not 0.0 <= self.heavy_fraction <= 1.0:
            raise ValueError("heavy_fraction must be a fraction")
        if not 0.0 <= self.terminal_fraction <= 1.0:
            raise ValueError("terminal_fraction must be a fraction")


# ---------------------------------------------------------------------------
# The six paper systems.
#
# Plateau concurrency rises with affected_mean and heavy_fanout and falls
# with heavy_serial_bias.  The orderings follow the paper's Figure 6-1:
# R1-Soar highest, then DAA/VT/MUD/EP-Soar mid-field, ILOG lowest.
# ---------------------------------------------------------------------------

R1_SOAR = SystemProfile(
    name="r1-soar",
    changes_per_firing=3.2,
    affected_mean=36.0,
    heavy_fraction=0.10,
    heavy_fanout=7.0,
    heavy_depth=2,
    heavy_serial_bias=0.22,
    program_productions=260,
)

EP_SOAR = SystemProfile(
    name="ep-soar",
    changes_per_firing=2.6,
    affected_mean=19.0,
    heavy_fraction=0.08,
    heavy_fanout=5.0,
    heavy_depth=2,
    heavy_serial_bias=0.50,
    program_productions=100,
)

DAA = SystemProfile(
    name="daa",
    changes_per_firing=2.4,
    affected_mean=30.0,
    heavy_fraction=0.09,
    heavy_fanout=7.0,
    heavy_depth=2,
    heavy_serial_bias=0.30,
    program_productions=130,
)

VT = SystemProfile(
    name="vt",
    changes_per_firing=2.3,
    affected_mean=26.0,
    heavy_fraction=0.08,
    heavy_fanout=6.0,
    heavy_depth=2,
    heavy_serial_bias=0.38,
    program_productions=170,
)

MUD = SystemProfile(
    name="mud",
    changes_per_firing=2.2,
    affected_mean=22.0,
    heavy_fraction=0.08,
    heavy_fanout=5.0,
    heavy_depth=2,
    heavy_serial_bias=0.45,
    program_productions=150,
)

ILOG = SystemProfile(
    name="ilog",
    changes_per_firing=1.8,
    affected_mean=13.0,
    heavy_fraction=0.09,
    heavy_fanout=3.0,
    heavy_depth=3,
    heavy_serial_bias=0.65,
    program_productions=110,
)

#: All six systems, in the paper's Figure 6-1 legend order.
PAPER_SYSTEMS: tuple[SystemProfile, ...] = (R1_SOAR, EP_SOAR, ILOG, MUD, DAA, VT)

#: The systems whose "parallel firings" variants the figures plot.
PARALLEL_FIRING_SYSTEMS: tuple[SystemProfile, ...] = (R1_SOAR, EP_SOAR)


# ---------------------------------------------------------------------------
# Published anchors the calibration targets (the numbers the paper states
# directly, as opposed to the per-system knobs derived from them).
# ---------------------------------------------------------------------------

#: Section 6: peak working-memory changes processed per second.
PAPER_WME_CHANGES_PER_SECOND = 9400
#: Section 6: peak production firings per second.
PAPER_FIRINGS_PER_SECOND = 3800
#: Section 4: mean productions affected per working-memory change.
PAPER_AFFECTED_PER_CHANGE = 30.0
#: Section 3.1: serial instructions per change on a uniprocessor (c1).
PAPER_SERIAL_COST_C1 = 1800


def implied_changes_per_firing() -> float:
    """Changes per firing implied by the paper's two Section 6 rates."""
    return PAPER_WME_CHANGES_PER_SECOND / PAPER_FIRINGS_PER_SECOND


def fleet_mean(attribute: str, systems: tuple[SystemProfile, ...] = PAPER_SYSTEMS) -> float:
    """Unweighted mean of one numeric profile field across systems."""
    return sum(getattr(profile, attribute) for profile in systems) / len(systems)


def expected_trace_changes(profile: SystemProfile) -> int:
    """Working-memory changes a generated trace of this profile carries."""
    return round(profile.firings * profile.changes_per_firing)


def profile_named(name: str) -> SystemProfile:
    """Look up a paper system profile by name."""
    for profile in PAPER_SYSTEMS:
        if profile.name == name:
            return profile
    raise KeyError(name)
