"""Op-stream replay: record a program's matcher traffic, time the match.

The paper's speedup figures (Sections 2 and 6) are about the *match
phase* of a long-lived production system: the ruleset is loaded once and
working-memory changes stream through it cycle after cycle.  Timing
``mod.run()`` end to end on the system-class programs does not measure
that -- each repetition re-parses the OPS5 source and rebuilds the
engine, which on a one-core host costs several times the match work
itself and buries the quantity under setup noise.

This module separates the two.  :func:`record_program` runs a program
once against an instrumented serial Rete and captures the exact op
stream the engine sent its matcher, split into

* ``preload`` -- everything before the first conflict-set read: the
  production load plus the initial facts.  Replays apply this untimed,
  the same way a serve fleet compiles a ruleset before traffic arrives.
* ``cycles`` -- one op list per recognise-act cycle (the ops between
  consecutive conflict-set reads: the previous firing's makes/removes).

:func:`timed_replay` then replays the stream against any matcher
factory and times only the cycle loop -- each cycle applies its ops and
performs one conflict-set read, exactly the flush cadence the engine
imposes.  The returned conflict-set keys let callers assert
bit-identity between backends before trusting a timing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..rete.network import ReteNetwork

__all__ = [
    "OpStreamRecorder",
    "Recording",
    "record_program",
    "replay_once",
    "timed_replay",
]


@dataclass
class Recording:
    """A program's matcher op stream, split for replay."""

    name: str
    preload: list = field(default_factory=list)
    cycles: list = field(default_factory=list)

    @property
    def op_count(self) -> int:
        return sum(len(cycle) for cycle in self.cycles)

    @property
    def cycle_count(self) -> int:
        return len(self.cycles)


class OpStreamRecorder:
    """A matcher shim that journals ops while a real Rete answers.

    Delegates everything to a wrapped :class:`ReteNetwork` (so the
    recorded run behaves exactly like a serial run) and files each
    mutating call as a ``(tag, arg)`` pair.  The first conflict-set read
    closes the preload; every later read closes one cycle -- the
    engine's read cadence *is* the cycle boundary, so no engine
    cooperation is needed.
    """

    def __init__(self, name: str = "?") -> None:
        self.net = ReteNetwork()
        self.recording = Recording(name)
        self._current: list = []
        self._prologue = True

    def _record(self, op: tuple) -> None:
        if self._prologue:
            self.recording.preload.append(op)
        else:
            self._current.append(op)

    def add_production(self, production) -> None:
        self._record(("+p", production))
        self.net.add_production(production)

    def remove_production(self, name: str) -> None:
        self._record(("-p", name))
        self.net.remove_production(name)

    def add_wme(self, wme) -> None:
        self._record(("+w", wme))
        self.net.add_wme(wme)

    def remove_wme(self, wme) -> None:
        self._record(("-w", wme))
        self.net.remove_wme(wme)

    @property
    def conflict_set(self):
        if self._prologue:
            self._prologue = False
        elif self._current:
            self.recording.cycles.append(self._current)
            self._current = []
        return self.net.conflict_set

    def clear(self) -> None:  # engines call this on reset; nothing to do
        pass

    def __getattr__(self, name: str):
        # Everything not intercepted (stats, production_names, ...)
        # passes straight through to the live network.
        return getattr(self.net, name)


def record_program(mod) -> Recording:
    """Run a program module once, returning its op-stream recording."""
    recorder = OpStreamRecorder(getattr(mod, "NAME", mod.__name__))
    mod.run(matcher=recorder)
    if recorder._current:
        recorder.recording.cycles.append(recorder._current)
    return recorder.recording


def _apply(matcher, tag: str, arg) -> None:
    if tag == "+w":
        matcher.add_wme(arg)
    elif tag == "-w":
        matcher.remove_wme(arg)
    elif tag == "+p":
        matcher.add_production(arg)
    elif tag == "-p":
        matcher.remove_production(arg)
    else:  # pragma: no cover - recorder only emits the four tags above
        raise ValueError(f"unknown replay tag {tag!r}")


def replay_once(recording: Recording, matcher) -> tuple[float, list]:
    """Replay *recording* on an already-built matcher.

    Preload is applied untimed (plus one conflict-set read, which the
    parallel backends treat as the flush that builds their kernels);
    the cycle loop is timed.  Returns ``(elapsed_seconds, sorted
    conflict-set keys)`` -- the keys are the bit-identity witness.
    """
    for tag, arg in recording.preload:
        _apply(matcher, tag, arg)
    _ = matcher.conflict_set
    start = time.perf_counter()
    for cycle in recording.cycles:
        for tag, arg in cycle:
            _apply(matcher, tag, arg)
        _ = matcher.conflict_set
    elapsed = time.perf_counter() - start
    keys = sorted(inst.key for inst in matcher.conflict_set)
    return elapsed, keys


def timed_replay(
    recording: Recording,
    factory: Callable[[], object],
    repeats: int = 3,
    close: bool = False,
) -> tuple[float, list]:
    """Best-of-*repeats* replay against fresh matchers from *factory*.

    Best-of (not mean) because the CI host's timing noise is one-sided:
    a repetition can only be slowed by interference, never sped up, so
    the minimum is the least-contaminated estimate of the true cost.
    """
    best = float("inf")
    keys: Sequence = ()
    for _ in range(max(1, repeats)):
        matcher = factory()
        try:
            elapsed, keys = replay_once(recording, matcher)
        finally:
            if close:
                matcher.close()
        best = min(best, elapsed)
    return best, list(keys)
