"""Calibrated synthetic trace generation.

Builds :class:`~repro.trace.events.Trace` objects with the statistical
shape of the paper's measured systems (see
:mod:`repro.workloads.profiles`).  The generated task DAG per
working-memory change mirrors what the instrumented Rete emits for real
programs:

* one **root** task (class dispatch + constant tests);
* per alpha-memory hit, an **amem** task depending on the root; alpha
  memories are shared by several productions (``alpha_sharing``), so one
  amem task carries multiple production attributions;
* per affected production, a beta path hanging off its amem task:

  - *light* productions: one join activation in the 50-100 instruction
    band, sometimes reaching a terminal;
  - *heavy* productions: an expensive join whose output fans out into
    parallel successor activations, plus an irreducibly serial chain
    segment (``heavy_serial_bias`` splits the work) -- reproducing the
    processing-variance profile that caps production-level parallelism
    at ~5x while node-level parallelism goes much higher.

Node identities are drawn from a per-production stable registry, so the
same logical node recurs across changes and the simulator's lock model
sees realistic contention.

Determinism: everything derives from ``random.Random(seed)``.
"""

from __future__ import annotations

import random
import zlib
from typing import Optional

from ..trace.events import ChangeTrace, FiringTrace, Task, Trace
from .profiles import SystemProfile

_WME_CLASSES = ("goal", "state", "operator", "context", "object", "relation")


class _NodeRegistry:
    """Stable synthetic node identities per (production, role)."""

    def __init__(self) -> None:
        self._ids: dict[tuple, int] = {}
        self._next = 1

    def node(self, *key) -> int:
        if key not in self._ids:
            self._ids[key] = self._next
            self._next += 1
        return self._ids[key]


class SyntheticGenerator:
    """Generates one system's trace from its profile."""

    def __init__(self, profile: SystemProfile, seed: int = 0) -> None:
        self.profile = profile
        # zlib.crc32 is stable across processes (str hash() is not).
        self.rng = random.Random(zlib.crc32(profile.name.encode()) * 65537 + seed)
        self.nodes = _NodeRegistry()
        # Pre-assign each production to an alpha-memory cluster, so the
        # same productions co-activate consistently across the run.
        cluster_count = max(
            1, int(profile.program_productions / max(profile.alpha_sharing, 1.0))
        )
        self._clusters: dict[int, list[int]] = {c: [] for c in range(cluster_count)}
        for production in range(profile.program_productions):
            self._clusters[self.rng.randrange(cluster_count)].append(production)
        # A per-production heaviness flag: heavy productions are heavy on
        # every change that affects them (the variance is structural).
        self._heavy = {
            production: self.rng.random() < profile.heavy_fraction
            for production in range(profile.program_productions)
        }

    # -- distributions ------------------------------------------------------

    def _geometric(self, mean: float) -> int:
        """A >=1 geometric variate with the given mean."""
        if mean <= 1.0:
            return 1
        p = 1.0 / mean
        count = 1
        while self.rng.random() > p and count < mean * 8:
            count += 1
        return count

    def _production_name(self, production: int) -> str:
        return f"{self.profile.name}-p{production:03d}"

    # -- task construction -----------------------------------------------------

    def change(self) -> ChangeTrace:
        """Generate one working-memory change's activation DAG."""
        profile = self.profile
        rng = self.rng
        change = ChangeTrace(
            kind="add" if rng.random() < 0.55 else "remove",
            wme_class=rng.choice(_WME_CLASSES),
        )
        tasks = change.tasks

        def add_task(
            kind: str,
            cost: int,
            deps: tuple[int, ...],
            node_id: int,
            productions: tuple[str, ...] = (),
        ) -> int:
            index = len(tasks)
            tasks.append(
                Task(
                    index=index,
                    kind=kind,
                    cost=max(1, cost),
                    deps=deps,
                    node_id=node_id,
                    productions=productions,
                )
            )
            return index

        # Root: class dispatch + constant tests.
        root = add_task("root", 20 + rng.randrange(5, 20), (), self.nodes.node("root"))

        # Which productions does this change affect?  Draw clusters until
        # the affected target is met -- co-activation through shared
        # alpha memories, as in a real network.
        target = self._geometric(profile.affected_mean)
        affected: list[int] = []
        cluster_ids = list(self._clusters)
        guard = 0
        while len(affected) < target and guard < 10 * len(cluster_ids):
            guard += 1
            cluster = self._clusters[rng.choice(cluster_ids)]
            if not cluster:
                continue
            for production in cluster:
                if production not in affected:
                    affected.append(production)
                if len(affected) >= target:
                    break

        # Group the affected productions by their alpha cluster to emit
        # shared amem tasks.
        by_cluster: dict[int, list[int]] = {}
        for production in affected:
            for cluster_id, members in self._clusters.items():
                if production in members:
                    by_cluster.setdefault(cluster_id, []).append(production)
                    break

        for cluster_id, members in sorted(by_cluster.items()):
            names = tuple(self._production_name(p) for p in sorted(members))
            amem = add_task(
                "amem",
                18,
                (root,),
                self.nodes.node("amem", cluster_id),
                names,
            )
            for production in sorted(members):
                self._production_path(production, amem, add_task)
        return change

    def _production_path(self, production: int, amem: int, add_task) -> None:
        """Emit the beta-path tasks of one affected production."""
        profile = self.profile
        rng = self.rng
        name = (self._production_name(production),)

        if not self._heavy[production]:
            join_cost = rng.randrange(22, 40)
            join = add_task(
                "join", join_cost, (amem,), self.nodes.node("join", production, 0), name
            )
            if rng.random() < profile.terminal_fraction:
                bmem = add_task(
                    "bmem", 20, (join,), self.nodes.node("bmem", production, 0), name
                )
                add_task("term", 35, (bmem,), self.nodes.node("term", production), name)
            return

        # Heavy production: an expensive join fans out, plus a serial
        # chain segment.  Total work ~ fanout * task + depth * task.
        fanout = max(1, self._geometric(profile.heavy_fanout))
        serial_depth = max(
            1, round(profile.heavy_depth * (0.5 + rng.random()))
        )
        big_join = add_task(
            "join",
            rng.randrange(50, 75),
            (amem,),
            self.nodes.node("join", production, 0),
            name,
        )
        # Parallel part: fanout successor activations on the next level.
        parallel_heads: list[int] = []
        for branch in range(fanout):
            cost = rng.randrange(35, 60)
            child = add_task(
                "join",
                cost,
                (big_join,),
                self.nodes.node("join", production, 1 + branch % 4),
                name,
            )
            parallel_heads.append(child)
        # Serial part: a chain hanging off one branch, sized by bias.
        chain_len = max(1, round(serial_depth * profile.heavy_serial_bias * 3))
        previous = parallel_heads[0]
        for level in range(chain_len):
            previous = add_task(
                "join",
                rng.randrange(40, 65),
                (previous,),
                self.nodes.node("chain", production, level),
                name,
            )
        if rng.random() < profile.terminal_fraction:
            bmem = add_task(
                "bmem", 20, (previous,), self.nodes.node("bmem", production, 1), name
            )
            add_task("term", 40, (bmem,), self.nodes.node("term", production), name)

    # -- whole traces ---------------------------------------------------------------

    def trace(self, firings: Optional[int] = None) -> Trace:
        """Generate the full run: *firings* recognize--act cycles."""
        profile = self.profile
        count = firings if firings is not None else profile.firings
        firing_list: list[FiringTrace] = []
        for index in range(count):
            firing = FiringTrace(
                production=self._production_name(
                    self.rng.randrange(profile.program_productions)
                )
            )
            for _ in range(self._geometric(profile.changes_per_firing)):
                firing.changes.append(self.change())
            firing_list.append(firing)
        trace = Trace(name=profile.name, firings=firing_list)
        trace.validate()
        return trace


def generate_trace(
    profile: SystemProfile, seed: int = 0, firings: Optional[int] = None
) -> Trace:
    """Generate a calibrated synthetic trace for *profile*."""
    return SyntheticGenerator(profile, seed).trace(firings)
