"""Transitive closure in OPS5: a join-heavy, beta-state-heavy workload.

Derives the ``ancestor`` relation from ``parent`` facts.  Every derived
fact re-enters the match, so beta memories and join activity grow with
the relation -- the opposite profile to the goal-chaining workloads and
a good stress test for negated-CE duplicate suppression (the rules
guard against re-deriving known facts).

The run halts naturally when the closure is complete (no satisfied
production remains).
"""

from __future__ import annotations

from ...ops5.engine import ProductionSystem, RunResult
from ...ops5.wme import WME

PROGRAM = """
(literalize parent from to)
(literalize ancestor from to)

(p ancestor-base
  (parent ^from <x> ^to <y>)
  - (ancestor ^from <x> ^to <y>)
  -->
  (make ancestor ^from <x> ^to <y>))

(p ancestor-step
  (ancestor ^from <x> ^to <y>)
  (parent ^from <y> ^to <z>)
  - (ancestor ^from <x> ^to <z>)
  -->
  (make ancestor ^from <x> ^to <z>))
"""


def chain(length: int) -> list[WME]:
    """A single descent line: n0 -> n1 -> ... (closure has n(n+1)/2 pairs
    for length+1 people ... precisely length*(length+1)/2 ancestor facts)."""
    return [
        WME("parent", {"from": f"n{i}", "to": f"n{i + 1}"}) for i in range(length)
    ]


def tree(depth: int, fanout: int = 2) -> list[WME]:
    """A complete tree of the given depth and fan-out."""
    wmes: list[WME] = []
    frontier = ["r"]
    for level in range(depth):
        next_frontier: list[str] = []
        for node in frontier:
            for child in range(fanout):
                name = f"{node}.{child}"
                wmes.append(WME("parent", {"from": node, "to": name}))
                next_frontier.append(name)
        frontier = next_frontier
    return wmes


def setup(length: int = 6) -> list[WME]:
    """The default initial memory (chain), under the name every other
    bundled program exposes -- callers can treat all programs uniformly."""
    return chain(length)


def expected_chain_facts(length: int) -> int:
    """Ancestor pairs of a chain with *length* parent edges."""
    return length * (length + 1) // 2


def build(facts: list[WME] | None = None, **kwargs) -> ProductionSystem:
    """A ready-to-run engine loaded with *facts* (default: chain(6))."""
    system = ProductionSystem(PROGRAM, **kwargs)
    for wme in facts if facts is not None else chain(6):
        system.add_wme(wme)
    return system


def run(facts: list[WME] | None = None, **kwargs) -> RunResult:
    """Compute the closure; halts when no new fact can be derived."""
    return build(facts, **kwargs).run(max_cycles=5000)


def derived_facts(system: ProductionSystem) -> int:
    """Number of ancestor WMEs currently in working memory."""
    return len(system.memory.of_class("ancestor"))
