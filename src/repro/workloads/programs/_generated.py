"""Binder turning calibrated :func:`emit_system_program` artifacts into
bundled program modules.

The six paper systems (VT, ILOG, MUD, DAA, R1-Soar, EP-Soar) are not
publicly available, so each ``programs/<system>.py`` module materialises
a deterministic *system-class* program from its calibrated profile: same
module contract as the hand-written workloads (``PROGRAM`` / ``setup`` /
``build`` / ``run``), but the rule graph -- stage depth, branch fan-in,
lane parallelism, distractor alpha load -- is shaped by the profile's
paper statistics rather than written by hand.
"""

from __future__ import annotations

from ...ops5.engine import ProductionSystem, RunResult
from ...ops5.wme import WME
from ..generator import SystemProgram, emit_system_program
from ..profiles import SystemProfile


def bind(profile: SystemProfile) -> dict:
    """The module namespace for one system-class program."""
    emitted = emit_system_program(profile)

    def setup() -> list[WME]:
        """The default initial working memory (context, tasks, items)."""
        return [WME(cls, dict(attrs)) for cls, attrs in emitted.setup]

    def build(facts: list[WME] | None = None, **kwargs) -> ProductionSystem:
        """A ready-to-run engine loaded with *facts* (default: setup())."""
        system = ProductionSystem(emitted.source, **kwargs)
        for wme in facts if facts is not None else setup():
            system.add_wme(wme)
        return system

    def run(facts: list[WME] | None = None, **kwargs) -> RunResult:
        """Run to the explicit halt; fires exactly expected_firings()."""
        return build(facts, **kwargs).run(max_cycles=emitted.max_cycles)

    def expected_firings() -> int:
        """Closed-form firing count of the staged pipeline."""
        return emitted.expected_firings()

    return {
        "PROGRAM": emitted.source,
        "EMITTED": emitted,
        "PROFILE": profile,
        "setup": setup,
        "build": build,
        "run": run,
        "expected_firings": expected_firings,
    }


def install(module_globals: dict, profile: SystemProfile) -> None:
    """Populate a program module's globals from its profile."""
    namespace = bind(profile)
    module_globals.update(namespace)
    module_globals.setdefault("__all__", sorted(namespace))


__all__ = ["SystemProgram", "bind", "install"]
