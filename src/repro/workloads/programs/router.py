"""A rule-based maze router (the paper's Weaver motivation, miniature).

The paper's opening applications include VLSI routing (Weaver, a
knowledge-based router).  This program routes one two-pin net on a grid
with obstacles using the classic Lee algorithm expressed as rules:

1. **wave expansion** -- a ``wave`` element floods outward from the
   source through free cells, labelling each reached cell with its
   distance (the negated CE stops re-labelling);
2. **backtrace** -- once the target is reached, ``trace`` elements walk
   the distance labels back down to the source, marking ``route`` cells;
3. **halt** when the trace reaches distance zero.

One OPS5-flavoured caveat: LEX recency makes the serial engine expand
the *newest* wave first (depth-first), so labels -- and therefore the
route -- are valid but not necessarily minimal; true Lee routing needs
breadth-first order, which is exactly the kind of per-layer parallel
firing the paper's multiprocessor would restore.  Unroutable nets end
with "no satisfied production" once the wave exhausts.

The wave phase is many independent rule firings over a growing join --
a realistic, verifiable match workload (see :func:`lee_distance`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ...ops5.engine import ProductionSystem, RunResult
from ...ops5.wme import WME

PROGRAM = """
(literalize cell x y state)
(literalize adj x1 y1 x2 y2)
(literalize wave x y d)
(literalize target x y)
(literalize trace x y d want)
(literalize route x y)
(literalize mode phase)

; Phase 1: expand the wavefront into free, unlabelled neighbours.
(p expand
  (mode ^phase expand)
  (wave ^x <x> ^y <y> ^d <d>)
  (adj ^x1 <x> ^y1 <y> ^x2 <nx> ^y2 <ny>)
  (cell ^x <nx> ^y <ny> ^state free)
  - (wave ^x <nx> ^y <ny>)
  -->
  (make wave ^x <nx> ^y <ny> ^d (compute <d> + 1)))

; The wave reached the target: switch to backtracing.
(p reached
  (mode ^phase expand)
  (target ^x <tx> ^y <ty>)
  (wave ^x <tx> ^y <ty> ^d <d>)
  -->
  (modify 1 ^phase trace)
  (make trace ^x <tx> ^y <ty> ^d <d> ^want (compute <d> - 1))
  (make route ^x <tx> ^y <ty>)
  (write reached target at distance <d>))

; Phase 2: step down the distance labels toward the source.
(p backtrace
  (mode ^phase trace)
  (trace ^x <x> ^y <y> ^d { <d> > 0 } ^want <w>)
  (adj ^x1 <x> ^y1 <y> ^x2 <nx> ^y2 <ny>)
  (wave ^x <nx> ^y <ny> ^d <w>)
  -->
  (remove 2)
  (make trace ^x <nx> ^y <ny> ^d <w> ^want (compute <w> - 1))
  (make route ^x <nx> ^y <ny>))

(p done
  (mode ^phase trace)
  (trace ^d 0)
  -->
  (remove 1)
  (remove 2)
  (write route complete)
  (halt))
"""


def setup(
    width: int = 6,
    height: int = 6,
    source: tuple[int, int] = (0, 0),
    target: tuple[int, int] = (5, 5),
    obstacles: Sequence[tuple[int, int]] = ((1, 1), (1, 2), (2, 1), (3, 3), (4, 2)),
) -> list[WME]:
    """Grid cells, 4-adjacency, the source wave, the target, the mode."""
    blocked = set(obstacles)
    if source in blocked or target in blocked:
        raise ValueError("source/target may not be obstacles")
    wmes: list[WME] = []
    for x in range(width):
        for y in range(height):
            state = "blocked" if (x, y) in blocked else "free"
            wmes.append(WME("cell", {"x": x, "y": y, "state": state}))
    for x in range(width):
        for y in range(height):
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nx, ny = x + dx, y + dy
                if 0 <= nx < width and 0 <= ny < height:
                    wmes.append(WME("adj", {"x1": x, "y1": y, "x2": nx, "y2": ny}))
    wmes.append(WME("wave", {"x": source[0], "y": source[1], "d": 0}))
    wmes.append(WME("target", {"x": target[0], "y": target[1]}))
    wmes.append(WME("mode", {"phase": "expand"}))
    return wmes


def build(**kwargs) -> ProductionSystem:
    """A ready-to-run engine; grid options pass through to setup()."""
    extra = {k: kwargs.pop(k) for k in list(kwargs) if k in (
        "width", "height", "source", "target", "obstacles")}
    system = ProductionSystem(PROGRAM, **kwargs)
    for wme in setup(**extra):
        system.add_wme(wme)
    return system


def run(max_cycles: int = 2000, **kwargs) -> RunResult:
    """Route the default net; output reports the Lee distance."""
    return build(**kwargs).run(max_cycles=max_cycles)


def route_cells(system: ProductionSystem) -> list[tuple[int, int]]:
    """The marked route, unordered."""
    return [(w.get("x"), w.get("y")) for w in system.memory.of_class("route")]


def lee_distance(
    width: int, height: int,
    source: tuple[int, int], target: tuple[int, int],
    obstacles: Iterable[tuple[int, int]],
) -> int | None:
    """Reference BFS distance (for verifying the rule-based router)."""
    from collections import deque

    blocked = set(obstacles)
    seen = {source}
    queue = deque([(source, 0)])
    while queue:
        (x, y), distance = queue.popleft()
        if (x, y) == target:
            return distance
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nxt = (x + dx, y + dy)
            if (
                0 <= nxt[0] < width
                and 0 <= nxt[1] < height
                and nxt not in blocked
                and nxt not in seen
            ):
                seen.add(nxt)
                queue.append((nxt, distance + 1))
    return None
