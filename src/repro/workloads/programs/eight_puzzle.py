"""The eight puzzle in OPS5: greedy tile-homing.

The paper's workload list includes Eight-Puzzle-Soar; this is the
classic OPS5 rendition of the domain: tiles on a 3x3 board, a blank,
and slide moves.  The strategy is deliberately simple -- slide a tile
into the blank whenever that square is the tile's home -- so runs are
deterministic and terminate for instances whose greedy solution exists
(the provided instances are chosen that way).  A fallback rule slides
any adjacent tile, letting recency explore when no homing move exists;
``run`` therefore takes a cycle cap.

Board cells are numbered 1-9 row-major; ``adjacent`` facts encode the
sliding topology.
"""

from __future__ import annotations

from ...ops5.engine import ProductionSystem, RunResult
from ...ops5.wme import WME

PROGRAM = """
(literalize tile value pos home)
(literalize blank pos)
(literalize adjacent a b)

(p solved
  (blank ^pos 9)
  - (tile ^home <q> ^pos <> <q>)
  -->
  (write solved)
  (halt))

(p move-tile-home
  (blank ^pos <b>)
  (tile ^value <v> ^pos <p> ^home <b>)
  (adjacent ^a <p> ^b <b>)
  -->
  (modify 1 ^pos <p>)
  (modify 2 ^pos <b>)
  (write slide <v> home to <b>))
"""

#: PROGRAM plus a fallback that slides any adjacent tile.  Recency then
#: drives a bounded exploration -- useful as a trace workload, but no
#: longer guaranteed to terminate, so always run with a cycle cap.
EXPLORATORY_PROGRAM = PROGRAM + """
(p slide-any
  (blank ^pos <b>)
  (tile ^value <v> ^pos <p>)
  (adjacent ^a <p> ^b <b>)
  -->
  (modify 1 ^pos <p>)
  (modify 2 ^pos <b>)
  (write slide <v> to <b>))
"""

#: Row-major 3x3 adjacency (orthogonal neighbours).
_ADJACENT: list[tuple[int, int]] = []
for cell in range(1, 10):
    row, col = divmod(cell - 1, 3)
    if col < 2:
        _ADJACENT.append((cell, cell + 1))
        _ADJACENT.append((cell + 1, cell))
    if row < 2:
        _ADJACENT.append((cell, cell + 3))
        _ADJACENT.append((cell + 3, cell))

#: The goal layout: tiles 1-8 in cells 1-8, blank in cell 9.
GOAL_HOME = {value: value for value in range(1, 9)}

#: An instance two greedy moves from the goal.
EASY = (1, 2, 3, 4, 0, 5, 7, 8, 6)
#: An instance four greedy moves from the goal.
MEDIUM = (1, 2, 3, 0, 4, 5, 7, 8, 6)


def setup(board: tuple[int, ...] = EASY) -> list[WME]:
    """WMEs for a board given row-major, 0 = blank."""
    if sorted(board) != list(range(9)):
        raise ValueError("board must be a permutation of 0..8")
    wmes = [WME("adjacent", {"a": a, "b": b}) for a, b in _ADJACENT]
    for cell, value in enumerate(board, start=1):
        if value == 0:
            wmes.append(WME("blank", {"pos": cell}))
        else:
            wmes.append(
                WME("tile", {"value": value, "pos": cell, "home": GOAL_HOME[value]})
            )
    return wmes


def build(
    board: tuple[int, ...] = EASY, exploratory: bool = False, **kwargs
) -> ProductionSystem:
    """A ready-to-run engine for *board* (greedy or exploratory rules)."""
    source = EXPLORATORY_PROGRAM if exploratory else PROGRAM
    system = ProductionSystem(source, **kwargs)
    for wme in setup(board):
        system.add_wme(wme)
    return system


def run(board: tuple[int, ...] = EASY, max_cycles: int = 60, **kwargs) -> RunResult:
    """Slide until solved (or the cycle cap for non-greedy instances)."""
    return build(board, **kwargs).run(max_cycles=max_cycles)
