"""Monkey and bananas in OPS5: the classic planning chain.

The monkey must walk to the ladder, push it under the bananas, climb,
and grab.  A linear chain of firings driven by the state of working
memory -- small but exercises modify-heavy rules and multi-CE joins.
"""

from __future__ import annotations

from ...ops5.engine import ProductionSystem, RunResult
from ...ops5.wme import WME

PROGRAM = """
(literalize monkey at on holding)
(literalize object name at weight)
(literalize goal status)

(p walk-to-ladder
  (goal ^status hungry)
  (monkey ^at <m> ^on floor)
  (object ^name ladder ^at { <l> <> <m> })
  -->
  (modify 2 ^at <l>)
  (write monkey walks to <l>))

(p push-ladder
  (goal ^status hungry)
  (object ^name ladder ^at <l>)
  (monkey ^at <l> ^on floor)
  (object ^name bananas ^at { <b> <> <l> })
  -->
  (modify 2 ^at <b>)
  (modify 3 ^at <b>)
  (write monkey pushes ladder to <b>))

(p climb-ladder
  (goal ^status hungry)
  (object ^name ladder ^at <l>)
  (object ^name bananas ^at <l>)
  (monkey ^at <l> ^on floor)
  -->
  (modify 4 ^on ladder)
  (write monkey climbs))

(p grab-bananas
  (goal ^status hungry)
  (monkey ^at <l> ^on ladder ^holding nil)
  (object ^name bananas ^at <l>)
  -->
  (modify 2 ^holding bananas)
  (modify 1 ^status satisfied)
  (write monkey grabs bananas))

(p feast
  (goal ^status satisfied)
  -->
  (remove 1)
  (write burp)
  (halt))
"""


def setup(
    monkey_at: str = "door", ladder_at: str = "window", bananas_at: str = "center"
) -> list[WME]:
    """Initial scene; defaults put everything in different places."""
    return [
        WME("monkey", {"at": monkey_at, "on": "floor"}),
        WME("object", {"name": "ladder", "at": ladder_at, "weight": "light"}),
        WME("object", {"name": "bananas", "at": bananas_at, "weight": "light"}),
        WME("goal", {"status": "hungry"}),
    ]


def build(**kwargs) -> ProductionSystem:
    """A ready-to-run engine with the default scene loaded."""
    system = ProductionSystem(PROGRAM, **kwargs)
    for wme in setup():
        system.add_wme(wme)
    return system


def run(**kwargs) -> RunResult:
    """The monkey gets the bananas in five firings."""
    return build(**kwargs).run()
