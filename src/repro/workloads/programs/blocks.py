"""Blocks world in OPS5: goal-ordered stacking with automatic clearing.

Working memory holds ``on`` relations and ``clear`` markers; numbered
``goal`` elements describe the target stack bottom-up, and a ``step``
counter walks them in order.  A blocked goal first fires the clearing
rule (move the obstructing block to the table), then the stacking rule.

Exercises negated condition elements and multi-way joins on a real
planning task.
"""

from __future__ import annotations

from typing import Sequence

from ...ops5.engine import ProductionSystem, RunResult
from ...ops5.wme import WME

PROGRAM = """
(literalize on top bottom)
(literalize clear block)
(literalize goal seq put onto)
(literalize step n)

; The current goal's target or the block itself may be buried:
; move whatever sits on the involved block to the table.
(p clear-put-block
  (step ^n <k>)
  (goal ^seq <k> ^put <x>)
  (on ^top <o> ^bottom <x>)
  (clear ^block <o>)
  -->
  (modify 3 ^bottom table)
  (make clear ^block <x>)
  (write cleared <x> by moving <o> to table))

(p clear-target-block
  (step ^n <k>)
  (goal ^seq <k> ^put <x> ^onto { <y> <> table })
  (on ^top <o> ^bottom <y>)
  (clear ^block <o>)
  -->
  (modify 3 ^bottom table)
  (make clear ^block <y>)
  (write cleared <y> by moving <o> to table))

(p stack-onto-block
  (step ^n <k>)
  (goal ^seq <k> ^put <x> ^onto { <y> <> table })
  (clear ^block <x>)
  (clear ^block <y>)
  (on ^top <x> ^bottom <w>)
  -->
  (modify 5 ^bottom <y>)
  (remove 4)
  (remove 2)
  (make clear ^block <w>)
  (modify 1 ^n (compute <k> + 1))
  (write stacked <x> onto <y>))

(p put-on-table
  (step ^n <k>)
  (goal ^seq <k> ^put <x> ^onto table)
  (clear ^block <x>)
  (on ^top <x> ^bottom <w>)
  -->
  (modify 4 ^bottom table)
  (remove 2)
  (make clear ^block <w>)
  (modify 1 ^n (compute <k> + 1))
  (write placed <x> on table))

(p all-goals-done
  (step ^n <k>)
  - (goal ^seq <k>)
  -->
  (remove 1)
  (halt))
"""


def setup(
    stacks: Sequence[Sequence[str]] = (("a", "b", "c"), ("d", "e")),
    goals: Sequence[tuple[str, str]] = (("e", "b"), ("c", "e"), ("d", "c")),
) -> list[WME]:
    """Initial scene and goal list.

    *stacks* lists the towers bottom-up (so ``("a","b","c")`` means c is
    on b is on a); *goals* are processed in order, each "put X onto Y".
    """
    wmes: list[WME] = []
    for stack in stacks:
        below = "table"
        for block in stack:
            wmes.append(WME("on", {"top": block, "bottom": below}))
            below = block
        wmes.append(WME("clear", {"block": stack[-1]}))
    for seq, (block, target) in enumerate(goals, start=1):
        wmes.append(WME("goal", {"seq": seq, "put": block, "onto": target}))
    wmes.append(WME("step", {"n": 1}))
    return wmes


def build(**kwargs) -> ProductionSystem:
    """A ready-to-run engine with the default scene loaded."""
    system = ProductionSystem(PROGRAM, **kwargs)
    for wme in setup():
        system.add_wme(wme)
    return system


def run(**kwargs) -> RunResult:
    """Rebuild the default towers into the goal configuration."""
    return build(**kwargs).run(max_cycles=200)
