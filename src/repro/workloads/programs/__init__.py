"""Real, runnable OPS5 programs used as trace workloads and examples.

Each module exposes ``PROGRAM`` (OPS5 source), ``setup(...)`` (initial
WMEs), ``build(...)`` (a loaded :class:`ProductionSystem`), and
``run(...)``.

Two families live here: hand-written classics (Hanoi, blocks world,
monkey & bananas, ...) and six *system-class* programs (``vt``,
``ilog``, ``mud``, ``daa``, ``r1-soar``, ``ep-soar``) generated from
the paper's per-system Section 6 statistics -- see
:mod:`repro.workloads.programs._generated`.
"""

from . import (
    blocks,
    closure,
    daa,
    eight_puzzle,
    elevator,
    ep_soar,
    hanoi,
    ilog,
    monkey,
    mud,
    r1_soar,
    router,
    vt,
)

ALL_PROGRAMS = {
    "hanoi": hanoi,
    "blocks": blocks,
    "monkey": monkey,
    "eight-puzzle": eight_puzzle,
    "closure": closure,
    "router": router,
    "elevator": elevator,
    "vt": vt,
    "ilog": ilog,
    "mud": mud,
    "daa": daa,
    "r1-soar": r1_soar,
    "ep-soar": ep_soar,
}

SYSTEM_PROGRAMS = {
    "vt": vt,
    "ilog": ilog,
    "mud": mud,
    "daa": daa,
    "r1-soar": r1_soar,
    "ep-soar": ep_soar,
}

__all__ = [
    "ALL_PROGRAMS",
    "SYSTEM_PROGRAMS",
    "blocks",
    "closure",
    "daa",
    "eight_puzzle",
    "elevator",
    "ep_soar",
    "hanoi",
    "ilog",
    "monkey",
    "mud",
    "r1_soar",
    "router",
    "vt",
]
