"""Real, runnable OPS5 programs used as trace workloads and examples.

Each module exposes ``PROGRAM`` (OPS5 source), ``setup(...)`` (initial
WMEs), ``build(...)`` (a loaded :class:`ProductionSystem`), and
``run(...)``.
"""

from . import blocks, closure, eight_puzzle, elevator, hanoi, monkey, router

ALL_PROGRAMS = {
    "hanoi": hanoi,
    "blocks": blocks,
    "monkey": monkey,
    "eight-puzzle": eight_puzzle,
    "closure": closure,
    "router": router,
    "elevator": elevator,
}

__all__ = [
    "ALL_PROGRAMS",
    "blocks",
    "closure",
    "eight_puzzle",
    "elevator",
    "hanoi",
    "monkey",
    "router",
]
