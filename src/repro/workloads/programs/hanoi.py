"""Tower of Hanoi in OPS5: recursive goal decomposition.

A classic production-system benchmark: the goal stack lives in working
memory, and the 2^n - 1 moves emerge from recency-driven depth-first
goal expansion.  Pegs are numbered 1-3 so the spare peg is computable as
``6 - from - to``.

Useful as a *real* trace workload: deep goal chaining with modest
fan-out, the opposite profile to the closure workload.
"""

from __future__ import annotations

from ...ops5.engine import ProductionSystem, RunResult
from ...ops5.wme import WME

PROGRAM = """
(literalize goal id disk from to via status parent phase)
(literalize disk size peg)

(p expand
  (goal ^id <g> ^disk { <n> > 1 } ^from <f> ^to <t> ^via <v> ^status active)
  -->
  (modify 1 ^status wait1)
  (make goal ^id (compute <g> * 2) ^disk (compute <n> - 1)
        ^from <f> ^to <v> ^via <t> ^status active ^parent <g> ^phase 1))

(p base-move
  (goal ^id <g> ^disk 1 ^from <f> ^to <t> ^status active)
  (disk ^size 1 ^peg <f>)
  -->
  (modify 2 ^peg <t>)
  (modify 1 ^status done)
  (write move 1 <f> <t>))

(p after-first-sub
  (goal ^id <g> ^disk <n> ^from <f> ^to <t> ^via <v> ^status wait1)
  (goal ^parent <g> ^phase 1 ^status done)
  (disk ^size <n> ^peg <f>)
  -->
  (modify 3 ^peg <t>)
  (write move <n> <f> <t>)
  (modify 1 ^status wait2)
  (remove 2)
  (make goal ^id (compute <g> * 2 + 1) ^disk (compute <n> - 1)
        ^from <v> ^to <t> ^via <f> ^status active ^parent <g> ^phase 2))

(p after-second-sub
  (goal ^id <g> ^status wait2)
  (goal ^parent <g> ^phase 2 ^status done)
  -->
  (modify 1 ^status done)
  (remove 2))

(p all-done
  (goal ^id 1 ^status done)
  -->
  (remove 1)
  (halt))
"""


def setup(disks: int = 4) -> list[WME]:
    """Initial working memory: *disks* disks on peg 1, the root goal."""
    if disks < 1:
        raise ValueError("need at least one disk")
    wmes = [WME("disk", {"size": s, "peg": 1}) for s in range(1, disks + 1)]
    wmes.append(
        WME(
            "goal",
            {"id": 1, "disk": disks, "from": 1, "to": 3, "via": 2, "status": "active"},
        )
    )
    return wmes


def expected_moves(disks: int) -> int:
    """The well-known optimum: 2^n - 1."""
    return 2**disks - 1


def build(disks: int = 4, **kwargs) -> ProductionSystem:
    """A ready-to-run engine loaded with the program and initial memory."""
    system = ProductionSystem(PROGRAM, **kwargs)
    for wme in setup(disks):
        system.add_wme(wme)
    return system


def run(disks: int = 4, **kwargs) -> RunResult:
    """Solve *disks*-disk Hanoi; the output lists the moves."""
    return build(disks, **kwargs).run()
