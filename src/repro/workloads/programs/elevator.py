"""An elevator controller in OPS5: reactive control with MEA flavour.

A classic control-style production system (the domain 1980s expert-
system courses used to teach OPS5): an elevator serves pending calls,
moving one floor per cycle, opening doors at called floors, and parking
at the ground floor when idle.  Unlike the planning workloads, this one
is *reactive*: the rule base encodes a policy, and working memory is a
small state vector updated every firing.

Deterministic policy: keep moving in the current direction while a call
remains in that direction (the classic "elevator algorithm" / SCAN),
reverse when none remains, park at floor 1 when no calls are pending.
"""

from __future__ import annotations

from typing import Sequence

from ...ops5.engine import ProductionSystem, RunResult
from ...ops5.wme import WME

PROGRAM = """
(literalize lift floor dir)
(literalize call floor)

; Serve a call at the current floor: open doors, clear the call.
(p serve
  (lift ^floor <f>)
  (call ^floor <f>)
  -->
  (remove 2)
  (write serve <f>))

; Keep moving up while some call is above.
(p move-up
  (lift ^floor <f> ^dir up)
  - (call ^floor <f>)
  (call ^floor > <f>)
  -->
  (modify 1 ^floor (compute <f> + 1))
  (write up-to (compute <f> + 1)))

; Keep moving down while some call is below.
(p move-down
  (lift ^floor <f> ^dir down)
  - (call ^floor <f>)
  (call ^floor < <f>)
  -->
  (modify 1 ^floor (compute <f> - 1))
  (write down-to (compute <f> - 1)))

; No call ahead: reverse direction.
(p reverse-to-down
  (lift ^floor <f> ^dir up)
  - (call ^floor >= <f>)
  (call)
  -->
  (modify 1 ^dir down))

(p reverse-to-up
  (lift ^floor <f> ^dir down)
  - (call ^floor <= <f>)
  (call)
  -->
  (modify 1 ^dir up))

; All calls served: park at the ground floor, then rest.
(p park
  (lift ^floor { <f> > 1 })
  - (call)
  -->
  (modify 1 ^floor (compute <f> - 1) ^dir down))

(p rest
  (lift ^floor 1)
  - (call)
  -->
  (write resting)
  (halt))
"""


def setup(start: int = 1, calls: Sequence[int] = (4, 2, 7)) -> list[WME]:
    """The lift at *start* heading up, plus pending call floors."""
    wmes = [WME("lift", {"floor": start, "dir": "up"})]
    for floor in calls:
        wmes.append(WME("call", {"floor": floor}))
    return wmes


def build(start: int = 1, calls: Sequence[int] = (4, 2, 7), **kwargs) -> ProductionSystem:
    """A ready-to-run controller for the given call pattern."""
    system = ProductionSystem(PROGRAM, **kwargs)
    for wme in setup(start, calls):
        system.add_wme(wme)
    return system


def run(start: int = 1, calls: Sequence[int] = (4, 2, 7), **kwargs) -> RunResult:
    """Serve all calls and park; output logs every movement."""
    return build(start, calls, **kwargs).run(max_cycles=500)


def floors_visited(result: RunResult) -> list[int]:
    """The floor sequence the lift moved through, from the output log."""
    floors: list[int] = []
    for line in result.output:
        parts = line.split()
        if parts[0] in ("up-to", "down-to"):
            floors.append(int(parts[1]))
    return floors


def served_floors(result: RunResult) -> list[int]:
    """The call floors in service order."""
    return [
        int(line.split()[1]) for line in result.output if line.startswith("serve")
    ]
