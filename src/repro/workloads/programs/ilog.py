"""ILOG (logistics simulation): calibrated system-class workload.

Generated from the paper's Section 6 statistics for this system via
:func:`repro.workloads.generator.emit_system_program`; see
:mod:`repro.workloads.programs._generated` for the module contract.
"""

from ..profiles import ILOG as _PROFILE
from ._generated import install as _install

_install(globals(), _PROFILE)
