"""Property-based OPS5 *program* generation and the differential fuzzer.

The paper's evaluation (Section 6) runs over six real systems whose
traces never left CMU; :mod:`repro.workloads.synthetic` substitutes
calibrated *trace* generators, but every bit-identity claim in this repo
still rested on a handful of hand-written programs.  This module closes
that gap from the other side: it generates whole OPS5 **programs** --
typed attribute schemas, rulesets with negated condition elements and
variable-join graphs of controlled fan-in/fan-out, RHS make/remove/
modify mixes -- together with matched working-memory change streams, and
feeds them to the cross-matcher differential harness: every generated
``(ruleset, stream)`` pair must produce bit-identical conflict sets,
firing sequences, output, and final memories across all six matcher
backends (naive, TREAT, Rete, indexed Rete, Oflazer, parallel) and all
shard transports (pipe, ring, and the shared-memory ``local`` threads).

Three consumers share the machinery:

* **hypothesis** property tests -- :func:`fuzz_cases` builds a strategy
  whose draws flow through the same :class:`Choices` abstraction as the
  seeded path, so hypothesis shrinks structure, not just seeds;
* the ``repro fuzz`` CLI -- :func:`fuzz` runs a seeded, time-budgeted
  campaign and reports counterexamples minimised by the built-in
  greedy shrinker (:func:`shrink_case`), each reproducible from its
  recorded ``case_seed``;
* the six *system-class* program emitters -- :func:`emit_system_program`
  turns a :class:`~repro.workloads.profiles.SystemProfile` into a real,
  runnable, terminating OPS5 program whose per-change affected-production
  counts track the paper's Section 6 statistics
  (``workloads/programs/{vt,ilog,mud,daa,r1_soar,ep_soar}.py``).

Everything derives from ``random.Random`` seeded through ``zlib.crc32``
(stable across processes), so a counterexample found in CI reproduces
locally from its seed alone.
"""

from __future__ import annotations

import random
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Optional, Sequence

from ..ops5.actions import Action, Constant, Halt, Make, Modify, Remove, VariableRef, Write
from ..ops5.condition import (
    ConditionElement,
    ConstantTest,
    Predicate,
    PredicateTest,
    Test,
    VariableTest,
)
from ..ops5.engine import ProductionSystem
from ..ops5.errors import Ops5Error, ValidationError
from ..ops5.parser import Program, parse_program
from ..ops5.production import Production
from ..ops5.unparse import unparse_program
from ..ops5.wme import Value
from .profiles import PAPER_SYSTEMS, SystemProfile

# ---------------------------------------------------------------------------
# Typed attribute schemas
# ---------------------------------------------------------------------------

#: Symbol constants the generator draws from.  ``nil`` is deliberately
#: excluded: a WME attribute set to NIL is indistinguishable from an
#: absent attribute (see :mod:`repro.ops5.wme`).
SYMBOL_POOL: tuple[str, ...] = ("red", "blue", "green", "amber")

#: Number constants: small ints so ordering predicates hit both sides.
NUMBER_POOL: tuple[int, ...] = (0, 1, 2, 3, 7)

#: Variable names available to one production's LHS.
VARIABLE_NAMES: tuple[str, ...] = ("x", "y", "z", "w")


@dataclass(frozen=True)
class ClassSchema:
    """One element class: a name plus typed attributes.

    ``attributes`` maps attribute name to a kind, ``"sym"`` or ``"num"``;
    constants drawn for that attribute come from the matching pool, so
    ordering predicates are generated only where they can ever succeed.
    """

    name: str
    attributes: tuple[tuple[str, str], ...]

    def attribute_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.attributes)


@dataclass(frozen=True)
class Schema:
    """The typed attribute schema one generated program is built over."""

    classes: tuple[ClassSchema, ...]

    def literalizations(self) -> dict[str, tuple[str, ...]]:
        return {cls.name: cls.attribute_names() for cls in self.classes}

    def class_named(self, name: str) -> ClassSchema:
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise KeyError(name)


# ---------------------------------------------------------------------------
# Generator profiles
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GeneratorProfile:
    """Knobs of the program generator.

    The default is the fuzzing scale: programs small enough that a
    failing pair shrinks to a reviewable reproduction in seconds, but
    structurally rich (joins, negation, predicates, RHS churn).  The six
    per-system profiles (:data:`GENERATOR_PROFILES`) scale these knobs
    from the paper systems' measured statistics via
    :func:`profile_for_system`.
    """

    name: str = "default"
    #: Number of element classes in the schema.
    classes: int = 3
    #: Attribute-count range per class.
    min_attributes: int = 2
    max_attributes: int = 3
    #: Fraction of attributes that are numeric.
    numeric_rate: float = 0.45
    #: Production-count range per ruleset.
    min_rules: int = 1
    max_rules: int = 4
    #: Condition elements per production (first is always positive).
    max_ces: int = 3
    #: Probability a non-first CE is negated.
    negation_rate: float = 0.25
    #: Probability an attribute test is a variable occurrence at all.
    variable_rate: float = 0.45
    #: Probability a variable occurrence reuses an already-bound variable
    #: (the fan-in/fan-out control of the join graph).
    join_rate: float = 0.6
    #: Probability an attribute test is a predicate (vs. a constant).
    predicate_rate: float = 0.3
    #: RHS mix.
    max_makes: int = 2
    modify_rate: float = 0.3
    remove_rate: float = 0.35
    write_rate: float = 0.2
    halt_rate: float = 0.05
    #: Working-memory change-stream length range.
    min_stream: int = 2
    max_stream: int = 10
    #: Probability a stream op retracts a live element.
    stream_remove_rate: float = 0.3
    #: Probability a stream add populates any given attribute.
    stream_attribute_rate: float = 0.7

    def __post_init__(self) -> None:
        if self.min_rules < 1 or self.max_rules < self.min_rules:
            raise ValueError("rule-count range must be ordered and >= 1")
        if self.max_ces < 1:
            raise ValueError("max_ces must be >= 1")
        if self.min_stream < 1 or self.max_stream < self.min_stream:
            raise ValueError("stream range must be ordered and >= 1")


DEFAULT_PROFILE = GeneratorProfile()


def profile_for_system(system: SystemProfile) -> GeneratorProfile:
    """Scale fuzzing knobs from one paper system's measured statistics.

    The mapping keeps the *relative* structure the paper reports: systems
    with more productions fuzz with larger rulesets, heavier fan-out
    raises the join-reuse rate, deeper serial chains raise the CE count,
    and the stream length tracks working-memory changes per firing.
    """
    return GeneratorProfile(
        name=system.name,
        classes=3,
        min_attributes=2,
        max_attributes=3,
        min_rules=2,
        max_rules=max(3, round(system.program_productions / 40)),
        max_ces=min(4, system.heavy_depth + 2),
        negation_rate=min(0.4, 0.15 + system.heavy_serial_bias / 4.0),
        join_rate=min(0.85, system.heavy_fanout / 8.0),
        predicate_rate=0.3,
        max_makes=max(1, round(system.changes_per_firing * 0.75)),
        min_stream=3,
        max_stream=max(6, round(system.changes_per_firing * 5)),
    )


#: The six paper systems as generator profiles, keyed by system name.
GENERATOR_PROFILES: dict[str, GeneratorProfile] = {
    system.name: profile_for_system(system) for system in PAPER_SYSTEMS
}

#: Everything ``repro fuzz --profile`` accepts.
FUZZ_PROFILES: dict[str, GeneratorProfile] = {
    "default": DEFAULT_PROFILE,
    **GENERATOR_PROFILES,
}


# ---------------------------------------------------------------------------
# Choice sources: one generator body, two randomness backends
# ---------------------------------------------------------------------------


class Choices:
    """Decision source backed by ``random.Random`` (the seeded path)."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def integer(self, low: int, high: int) -> int:
        """An int in [low, high]; shrink-friendly backends pull to *low*."""
        return self._rng.randint(low, high)

    def fraction(self) -> float:
        """A float in [0, 1); shrink-friendly backends pull toward 0."""
        return self._rng.random()

    def boolean(self, probability: float = 0.5) -> bool:
        """True with *probability*; shrinks toward False.

        Implemented as ``fraction() >= 1 - p`` so a shrinking backend
        driving :meth:`fraction` toward 0 turns every optional feature
        off -- smaller programs, not different ones.
        """
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.fraction() >= 1.0 - probability

    def choice(self, items: Sequence):
        """One of *items*; shrinks toward the first."""
        return items[self.integer(0, len(items) - 1)]


class _HypothesisChoices(Choices):
    """The same decision surface, drawing through hypothesis.

    Every structural decision becomes a hypothesis draw, so shrinking
    operates on the program's shape (fewer rules, fewer CEs, earlier
    pool values) rather than on an opaque seed.
    """

    def __init__(self, draw, strategies) -> None:  # no super().__init__
        self._draw = draw
        self._st = strategies

    def integer(self, low: int, high: int) -> int:
        return self._draw(self._st.integers(min_value=low, max_value=high))

    def fraction(self) -> float:
        # 1/1000 resolution keeps the draw space small; probabilities in
        # the profiles have at most two significant digits.
        return self._draw(self._st.integers(min_value=0, max_value=999)) / 1000.0


# ---------------------------------------------------------------------------
# The generated artefact
# ---------------------------------------------------------------------------

#: One working-memory stream operation:
#: ``("add", slot, class, attrs)`` or ``("remove", slot)``.  Slots are
#: stable ids, so dropping an add during shrinking drops its dependent
#: remove instead of silently retargeting it.
StreamOp = tuple


@dataclass(frozen=True)
class FuzzCase:
    """One generated (ruleset, stream) pair, the fuzzer's unit of work."""

    productions: tuple[Production, ...]
    literalizations: Mapping[str, tuple[str, ...]]
    stream: tuple[StreamOp, ...]
    profile: str = "default"
    case_seed: Optional[int] = None

    def program(self) -> Program:
        return Program(
            productions=list(self.productions),
            literalizations=dict(self.literalizations),
        )

    def source(self) -> str:
        """The ruleset as OPS5 source (via the unparser)."""
        return unparse_program(self.program())

    def stream_text(self) -> str:
        """The change stream as reviewable lines."""
        lines = []
        for op in self.stream:
            if op[0] == "add":
                _, slot, cls, attrs = op
                rendered = " ".join(f"^{a} {v}" for a, v in sorted(attrs.items()))
                lines.append(f"add  #{slot} ({cls}{' ' + rendered if rendered else ''})")
            else:
                lines.append(f"remove #{op[1]}")
        return "\n".join(lines)

    def snapshot(self) -> dict:
        """JSON-ready form (embedded in fuzz reports)."""
        return {
            "profile": self.profile,
            "case_seed": self.case_seed,
            "productions": len(self.productions),
            "stream_ops": len(self.stream),
            "source": self.source(),
            "stream": [list(op) for op in self.stream],
        }


def roundtrip_problems(case: FuzzCase) -> list[str]:
    """``parse(unparse(p)) == p`` violations for this case's ruleset.

    The unparser's contract is that generated programs survive a full
    round trip; any discrepancy here is a reportable bug in its own
    right (and historically how exponent-formatted floats and unlexable
    symbols were caught).
    """
    problems: list[str] = []
    try:
        reparsed = parse_program(case.source())
    except Ops5Error as error:
        return [f"unparse produced unparseable source: {error}"]
    if reparsed.literalizations != dict(case.literalizations):
        problems.append("literalize declarations did not round-trip")
    if len(reparsed.productions) != len(case.productions):
        problems.append(
            f"production count changed: {len(case.productions)} -> "
            f"{len(reparsed.productions)}"
        )
        return problems
    for original, again in zip(case.productions, reparsed.productions):
        if again.name != original.name:
            problems.append(f"production name {original.name!r} became {again.name!r}")
        if tuple(again.conditions) != tuple(original.conditions):
            problems.append(f"{original.name}: conditions did not round-trip")
        if tuple(again.actions) != tuple(original.actions):
            problems.append(f"{original.name}: actions did not round-trip")
    return problems


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------


def _value_for(ch: Choices, kind: str) -> Value:
    return ch.choice(NUMBER_POOL if kind == "num" else SYMBOL_POOL)


def build_schema(ch: Choices, profile: GeneratorProfile) -> Schema:
    """Draw a typed attribute schema."""
    classes = []
    for index in range(profile.classes):
        count = ch.integer(profile.min_attributes, profile.max_attributes)
        attributes = tuple(
            (f"a{j}", "num" if ch.boolean(profile.numeric_rate) else "sym")
            for j in range(count)
        )
        classes.append(ClassSchema(f"c{index}", attributes))
    return Schema(tuple(classes))


def _build_condition(
    ch: Choices,
    profile: GeneratorProfile,
    schema: Schema,
    index: int,
    bound: dict[str, str],
) -> ConditionElement:
    """One CE.  *bound* maps exported variables (positive CEs only) to
    their kinds; it is updated in place for positive CEs."""
    cls = ch.choice(schema.classes)
    negated = index > 0 and ch.boolean(profile.negation_rate)
    tests: dict[str, Test] = {}
    local: dict[str, str] = {}
    chosen = [attr for attr in cls.attributes if ch.boolean(0.75)]
    if not chosen:
        chosen = [ch.choice(cls.attributes)]
    for attribute, kind in chosen:
        roll = ch.fraction()
        if roll < profile.variable_rate:
            # A variable occurrence: reuse an existing same-kind variable
            # (a join / intra-CE consistency edge) or bind a fresh one.
            known = {**bound, **local}
            same_kind = sorted(v for v, k in known.items() if k == kind)
            if same_kind and ch.boolean(profile.join_rate):
                name = ch.choice(same_kind)
            else:
                unused = [v for v in VARIABLE_NAMES if v not in known]
                name = ch.choice(unused) if unused else ch.choice(sorted(known))
            tests[attribute] = VariableTest(name)
            local[name] = kind
        elif roll < profile.variable_rate + profile.predicate_rate:
            # Predicate: against a constant, or a variable bound by an
            # earlier CE (strictly earlier keeps binding order valid).
            ordering = kind == "num"
            candidates = sorted(v for v, k in bound.items() if k == kind)
            if candidates and ch.boolean(0.5):
                predicate = (
                    ch.choice((Predicate.NE, Predicate.LT, Predicate.GT))
                    if ordering
                    else Predicate.NE
                )
                tests[attribute] = PredicateTest(
                    predicate, VariableTest(ch.choice(candidates))
                )
            else:
                predicate = (
                    ch.choice((Predicate.NE, Predicate.GT, Predicate.LE))
                    if ordering
                    else Predicate.NE
                )
                tests[attribute] = PredicateTest(
                    predicate, ConstantTest(_value_for(ch, kind))
                )
        else:
            tests[attribute] = ConstantTest(_value_for(ch, kind))
    if not negated:
        bound.update(local)
    return ConditionElement(cls.name, tests, negated)


def _build_actions(
    ch: Choices,
    profile: GeneratorProfile,
    schema: Schema,
    conditions: Sequence[ConditionElement],
    bound: Mapping[str, str],
) -> tuple[Action, ...]:
    """A small RHS: makes, at most one modify, at most one remove,
    occasionally a write or a halt.  Made WMEs may re-enter the matched
    classes, so runs can cascade; the drivers cap cycles and every
    backend hits the same cap."""
    actions: list[Action] = []

    def expression_for(kind: str):
        same_kind = sorted(v for v, k in bound.items() if k == kind)
        if same_kind and ch.boolean(0.5):
            return VariableRef(ch.choice(same_kind))
        return Constant(_value_for(ch, kind))

    for _ in range(ch.integer(0, profile.max_makes)):
        cls = ch.choice(schema.classes)
        attrs = tuple(
            (attribute, expression_for(kind))
            for attribute, kind in cls.attributes
            if ch.boolean(0.6)
        )
        actions.append(Make(cls.name, attrs))

    positive = [i + 1 for i, ce in enumerate(conditions) if not ce.negated]
    if positive and ch.boolean(profile.modify_rate):
        target = ch.choice(positive)
        cls = schema.class_named(conditions[target - 1].cls)
        updates = tuple(
            (attribute, expression_for(kind))
            for attribute, kind in cls.attributes
            if ch.boolean(0.5)
        )
        if not updates:
            attribute, kind = ch.choice(cls.attributes)
            updates = ((attribute, expression_for(kind)),)
        actions.append(Modify(target, updates))
    if positive and ch.boolean(profile.remove_rate):
        actions.append(Remove(ch.choice(positive)))
    if ch.boolean(profile.write_rate):
        values = [Constant(ch.choice(SYMBOL_POOL))]
        exported = sorted(bound)
        if exported and ch.boolean(0.6):
            values.append(VariableRef(ch.choice(exported)))
        actions.append(Write(tuple(values)))
    if ch.boolean(profile.halt_rate):
        actions.append(Halt())
    return tuple(actions)


def build_production(
    ch: Choices, profile: GeneratorProfile, schema: Schema, name: str
) -> Production:
    """Draw one valid production (first CE positive, bindings ordered)."""
    ce_count = ch.integer(1, profile.max_ces)
    bound: dict[str, str] = {}
    conditions = [
        _build_condition(ch, profile, schema, index, bound) for index in range(ce_count)
    ]
    actions = _build_actions(ch, profile, schema, conditions, bound)
    return Production(name, conditions, actions)


def build_stream(
    ch: Choices, profile: GeneratorProfile, schema: Schema
) -> tuple[StreamOp, ...]:
    """Draw a working-memory change stream matched to *schema*."""
    ops: list[StreamOp] = []
    live: list[int] = []
    slot = 0
    for _ in range(ch.integer(profile.min_stream, profile.max_stream)):
        if live and ch.boolean(profile.stream_remove_rate):
            victim = ch.choice(live)
            live.remove(victim)
            ops.append(("remove", victim))
        else:
            cls = ch.choice(schema.classes)
            attrs = {
                attribute: _value_for(ch, kind)
                for attribute, kind in cls.attributes
                if ch.boolean(profile.stream_attribute_rate)
            }
            ops.append(("add", slot, cls.name, attrs))
            live.append(slot)
            slot += 1
    return tuple(ops)


def build_case(
    ch: Choices,
    profile: GeneratorProfile = DEFAULT_PROFILE,
    case_seed: Optional[int] = None,
) -> FuzzCase:
    """Draw one complete fuzz case from any :class:`Choices` source."""
    schema = build_schema(ch, profile)
    rules = ch.integer(profile.min_rules, profile.max_rules)
    productions = tuple(
        build_production(ch, profile, schema, f"p{i}") for i in range(rules)
    )
    stream = build_stream(ch, profile, schema)
    return FuzzCase(
        productions=productions,
        literalizations=schema.literalizations(),
        stream=stream,
        profile=profile.name,
        case_seed=case_seed,
    )


def case_from_seed(profile: GeneratorProfile, seed: int) -> FuzzCase:
    """The seeded path: one deterministic case per (profile, seed).

    ``zlib.crc32`` mixes the profile name into the seed (``str.__hash__``
    is per-process randomised), so the same seed under different profiles
    explores different programs, and the same (profile, seed) pair
    reproduces bit-identically everywhere.
    """
    rng = random.Random(zlib.crc32(profile.name.encode()) * 2654435761 + seed)
    return build_case(Choices(rng), profile, case_seed=seed)


def fuzz_cases(profile: GeneratorProfile = DEFAULT_PROFILE):
    """A hypothesis strategy of :class:`FuzzCase` values.

    Imported lazily so the seeded CLI path never needs hypothesis
    installed.  The strategy drives :func:`build_case` through draws, so
    hypothesis shrinking minimises program *structure*.
    """
    from hypothesis import strategies as st

    @st.composite
    def cases(draw) -> FuzzCase:
        return build_case(_HypothesisChoices(draw, st), profile)

    return cases()


# ---------------------------------------------------------------------------
# The differential harness: serial matchers x parallel transports
# ---------------------------------------------------------------------------

#: The serial matcher backends every case runs through.  ``compiled`` is
#: the generated kernel (``repro.kernel``); its inclusion makes every
#: fuzz case a differential check of the codegen against all six
#: interpreted matchers.
SERIAL_BACKENDS: tuple[str, ...] = (
    "naive",
    "treat",
    "rete",
    "rete-indexed",
    "oflazer",
    "compiled",
)

#: Default shard transports for the parallel backend.  ``local`` is the
#: shared-memory thread backend (compiled-kernel shards, zero-copy
#: dispatch); its inclusion makes every fuzz case a differential check
#: of the work-stealing scheduler against the process transports too.
DEFAULT_TRANSPORTS: tuple[str, ...] = ("pipe", "ring", "local")


@dataclass(frozen=True)
class CaseRecord:
    """Everything observable about one backend's run of one case.

    Phase 1 applies the change stream op by op, snapshotting the
    conflict set after every change (the per-change bit-identity the
    paper's Section 2 semantics require); phase 2 runs recognize--act to
    quiescence or the cycle cap, recording the firing sequence, the
    conflict set after each cycle, the ``write`` output, and the final
    working memory.
    """

    stream_sets: tuple[frozenset, ...]
    fired: tuple[tuple[str, tuple[int, ...]], ...]
    cycle_sets: tuple[frozenset, ...]
    output: tuple[str, ...]
    final_memory: tuple[tuple[int, tuple], ...]
    halted: bool


def drive_case(
    matcher, case: FuzzCase, strategy: str = "lex", max_cycles: int = 40
) -> CaseRecord:
    """Run *case* on *matcher* and reduce the run to a :class:`CaseRecord`."""
    system = ProductionSystem(case.program(), matcher=matcher, strategy=strategy)
    live: dict[int, object] = {}
    stream_sets = []
    for op in case.stream:
        if op[0] == "add":
            _, slot, cls, attrs = op
            live[slot] = system.add(cls, **attrs)
        else:
            system.remove_wme(live.pop(op[1]))
        stream_sets.append(system.conflict_set.snapshot())
    fired = []
    cycle_sets = []
    while len(fired) < max_cycles:
        instantiation = system.step()
        if instantiation is None:
            break
        fired.append((instantiation.production.name, instantiation.timetags))
        cycle_sets.append(system.conflict_set.snapshot())
    return CaseRecord(
        stream_sets=tuple(stream_sets),
        fired=tuple(fired),
        cycle_sets=tuple(cycle_sets),
        output=tuple(system.output),
        final_memory=tuple(
            (w.timetag, w.content_key()) for w in system.memory.snapshot()
        ),
        halted=system.halted,
    )


class MatcherFleet:
    """The backend cross-product the fuzzer checks, with warm pools.

    Serial matchers are rebuilt per case (cheap); the parallel matcher
    keeps one process pool per transport for the whole campaign and is
    ``clear()``-ed between cases, so a thousand generated programs cost
    two forks, not two thousand.  Transports the host cannot provide
    (no ``multiprocessing.shared_memory``) are skipped with a note.
    """

    def __init__(
        self,
        workers: int = 2,
        transports: Sequence[str] = DEFAULT_TRANSPORTS,
        serial: Sequence[str] = SERIAL_BACKENDS,
    ) -> None:
        from ..parallel import ParallelMatcher, ring_available

        self._serial = tuple(serial)
        self._pools: dict[str, object] = {}
        self.notes: list[str] = []
        for transport in transports:
            if transport == "ring" and not ring_available():
                self.notes.append("ring transport unavailable on this host; skipped")
                continue
            self._pools[f"parallel-{transport}"] = ParallelMatcher(
                workers=workers, transport=transport
            )

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        for pool in self._pools.values():
            pool.close()
        self._pools.clear()

    def __enter__(self) -> "MatcherFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- backend factories -------------------------------------------------

    def backends(self) -> dict[str, Callable[[], object]]:
        """Label -> zero-argument matcher factory, fleet-wide."""
        from ..kernel.matcher import CompiledMatcher
        from ..naive import NaiveMatcher
        from ..oflazer import CombinationMatcher
        from ..rete import ReteNetwork
        from ..treat import TreatMatcher

        serial_factories: dict[str, Callable[[], object]] = {
            "naive": NaiveMatcher,
            "treat": TreatMatcher,
            "rete": ReteNetwork,
            "rete-indexed": lambda: ReteNetwork(indexed=True),
            "oflazer": CombinationMatcher,
            "compiled": CompiledMatcher,
        }
        factories = {
            name: serial_factories[name] for name in self._serial
        }

        def pooled(pool):
            def factory():
                pool.clear()
                return pool

            return factory

        for label, pool in self._pools.items():
            factories[label] = pooled(pool)
        return factories

    def labels(self) -> list[str]:
        return sorted(self.backends())


@dataclass
class CaseOutcome:
    """Verdict of one case across the fleet."""

    case: FuzzCase
    records: dict[str, CaseRecord] = field(default_factory=dict)
    errors: dict[str, str] = field(default_factory=dict)
    roundtrip: list[str] = field(default_factory=list)

    @property
    def errors_agree(self) -> bool:
        """Every backend raised, and with the same error.

        A program that is uniformly invalid at runtime (e.g. a rule
        whose ``modify 1`` and ``remove 2`` alias the same WME) is
        *agreement*: the error, raised at the same point with the same
        message, is part of the observable semantics.  Only asymmetric
        errors -- some backends raise, others complete, or the messages
        differ -- are findings.
        """
        return (
            bool(self.errors)
            and not self.records
            and len(set(self.errors.values())) == 1
        )

    @property
    def ok(self) -> bool:
        if self.roundtrip:
            return False
        if self.errors:
            return self.errors_agree
        return len(set(self.records.values())) <= 1

    @property
    def kind(self) -> str:
        """What went wrong: ``ok``, ``roundtrip``, ``error``, ``mismatch``."""
        if self.roundtrip:
            return "roundtrip"
        if self.errors:
            return "ok" if self.errors_agree else "error"
        if len(set(self.records.values())) > 1:
            return "mismatch"
        return "ok"

    def divergences(self) -> list[str]:
        """Human-readable description of every disagreement."""
        problems = list(self.roundtrip)
        if not self.errors_agree:
            for name in sorted(self.errors):
                problems.append(f"{name}: raised {self.errors[name]}")
            if self.errors and self.records:
                for name in sorted(self.records):
                    problems.append(f"{name}: completed without error")
        names = sorted(self.records)
        if len(names) >= 2:
            reference = names[0]
            base = self.records[reference]
            for name in names[1:]:
                other = self.records[name]
                if other != base:
                    problems.append(_describe(reference, base, name, other))
        return problems


def _describe(ref_name: str, ref: CaseRecord, name: str, other: CaseRecord) -> str:
    if ref.stream_sets != other.stream_sets:
        for i, (a, b) in enumerate(zip(ref.stream_sets, other.stream_sets)):
            if a != b:
                extra = sorted(b - a)
                missing = sorted(a - b)
                return (
                    f"{name} vs {ref_name}: conflict set after stream op {i + 1} "
                    f"differs (extra {extra}, missing {missing})"
                )
    if ref.fired != other.fired:
        for i, (a, b) in enumerate(zip(ref.fired, other.fired)):
            if a != b:
                return f"{name} vs {ref_name}: cycle {i + 1} fired {b} != {a}"
        return f"{name} vs {ref_name}: fired {len(other.fired)} cycles != {len(ref.fired)}"
    if ref.cycle_sets != other.cycle_sets:
        for i, (a, b) in enumerate(zip(ref.cycle_sets, other.cycle_sets)):
            if a != b:
                extra = sorted(b - a)
                missing = sorted(a - b)
                return (
                    f"{name} vs {ref_name}: conflict set after cycle {i + 1} "
                    f"differs (extra {extra}, missing {missing})"
                )
    if ref.output != other.output:
        return f"{name} vs {ref_name}: output differs"
    if ref.final_memory != other.final_memory:
        return f"{name} vs {ref_name}: final working memory differs"
    return f"{name} vs {ref_name}: halt state differs"


def run_case(
    case: FuzzCase,
    backends: Mapping[str, Callable[[], object]],
    strategy: str = "lex",
    max_cycles: int = 40,
) -> CaseOutcome:
    """One case through every backend; asymmetric exceptions are failures.

    A backend that *raises* on a program the others accept is as much a
    divergence as a wrong conflict set -- the fuzzer reports both kinds
    and the shrinker minimises both.  A program every backend rejects
    with the identical error is agreement (see
    :attr:`CaseOutcome.errors_agree`).
    """
    outcome = CaseOutcome(case=case)
    outcome.roundtrip = roundtrip_problems(case)
    for name in sorted(backends):
        try:
            matcher = backends[name]()
            outcome.records[name] = drive_case(
                matcher, case, strategy=strategy, max_cycles=max_cycles
            )
        except Exception as error:  # noqa: BLE001 - any crash is a finding
            outcome.errors[name] = f"{type(error).__name__}: {error}"
    return outcome


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _rebuild(
    production: Production,
    conditions: Sequence[ConditionElement],
    actions: Sequence[Action],
) -> Optional[Production]:
    """Reconstruct a production, or None if the variant is invalid."""
    try:
        return Production(production.name, tuple(conditions), tuple(actions))
    except (ValidationError, Ops5Error):
        return None


def _without_ce(production: Production, index: int) -> Optional[Production]:
    """Drop CE *index*, remapping 1-based RHS references across the gap."""
    conditions = [ce for i, ce in enumerate(production.conditions) if i != index]
    if not conditions or conditions[0].negated:
        return None
    actions: list[Action] = []
    for action in production.actions:
        ce_index = getattr(action, "ce_index", None)
        if ce_index is None:
            actions.append(action)
        elif ce_index - 1 == index:
            continue  # action referenced the dropped CE
        elif ce_index - 1 > index:
            if isinstance(action, Remove):
                actions.append(Remove(ce_index - 1))
            else:
                actions.append(Modify(ce_index - 1, action.attributes))
        else:
            actions.append(action)
    return _rebuild(production, conditions, actions)


def _stream_without(stream: Sequence[StreamOp], index: int) -> tuple[StreamOp, ...]:
    """Drop stream op *index* and any remove depending on a dropped add."""
    dropped = stream[index]
    out = [op for i, op in enumerate(stream) if i != index]
    if dropped[0] == "add":
        out = [op for op in out if not (op[0] == "remove" and op[1] == dropped[1])]
    return tuple(out)


def _candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Strictly smaller variants of *case*, biggest cuts first."""

    def with_productions(productions) -> FuzzCase:
        return FuzzCase(
            tuple(productions), case.literalizations, case.stream,
            case.profile, case.case_seed,
        )

    # Drop whole productions.
    if len(case.productions) > 1:
        for i in range(len(case.productions)):
            yield with_productions(
                [p for j, p in enumerate(case.productions) if j != i]
            )
    # Drop stream ops, tail first (later ops are least load-bearing).
    if len(case.stream) > 1:
        for i in reversed(range(len(case.stream))):
            shrunk = _stream_without(case.stream, i)
            if shrunk:
                yield FuzzCase(
                    case.productions, case.literalizations, shrunk,
                    case.profile, case.case_seed,
                )
    # Drop condition elements.
    for i, production in enumerate(case.productions):
        if len(production.conditions) > 1:
            for j in range(len(production.conditions)):
                variant = _without_ce(production, j)
                if variant is not None:
                    yield with_productions(
                        [variant if k == i else p for k, p in enumerate(case.productions)]
                    )
    # Drop actions.
    for i, production in enumerate(case.productions):
        for j in range(len(production.actions)):
            variant = _rebuild(
                production,
                production.conditions,
                [a for k, a in enumerate(production.actions) if k != j],
            )
            if variant is not None:
                yield with_productions(
                    [variant if k == i else p for k, p in enumerate(case.productions)]
                )
    # Drop individual attribute tests.
    for i, production in enumerate(case.productions):
        for j, ce in enumerate(production.conditions):
            if len(ce.tests) <= 1:
                continue
            for attribute in sorted(ce.tests):
                smaller = {a: t for a, t in ce.tests.items() if a != attribute}
                conditions = list(production.conditions)
                conditions[j] = ConditionElement(ce.cls, smaller, ce.negated)
                variant = _rebuild(production, conditions, production.actions)
                if variant is not None:
                    yield with_productions(
                        [variant if k == i else p for k, p in enumerate(case.productions)]
                    )
    # Drop attributes from stream adds.
    for i, op in enumerate(case.stream):
        if op[0] != "add" or not op[3]:
            continue
        for attribute in sorted(op[3]):
            attrs = {a: v for a, v in op[3].items() if a != attribute}
            stream = list(case.stream)
            stream[i] = ("add", op[1], op[2], attrs)
            yield FuzzCase(
                case.productions, case.literalizations, tuple(stream),
                case.profile, case.case_seed,
            )


def shrink_case(
    case: FuzzCase,
    failing: Callable[[FuzzCase], bool],
    max_attempts: int = 250,
    deadline: Optional[float] = None,
) -> tuple[FuzzCase, int]:
    """Greedy ddmin-style minimisation of a failing case.

    Repeatedly tries strictly smaller variants (*_candidates* order:
    whole productions, stream ops, CEs, actions, tests, attributes) and
    keeps any variant for which *failing* still holds, restarting the
    scan from the top after every success.  Stops at a fixpoint, the
    attempt budget, or the wall-clock *deadline* (``time.monotonic``
    value).  Returns the shrunk case and the number of evaluations.
    """
    attempts = 0
    improved = True
    while improved:
        improved = False
        for candidate in _candidates(case):
            if attempts >= max_attempts:
                return case, attempts
            if deadline is not None and time.monotonic() > deadline:
                return case, attempts
            attempts += 1
            try:
                still_failing = failing(candidate)
            except Exception:  # noqa: BLE001 - a crashing candidate still fails
                still_failing = True
            if still_failing:
                case = candidate
                improved = True
                break
    return case, attempts


# ---------------------------------------------------------------------------
# The fuzz campaign
# ---------------------------------------------------------------------------


@dataclass
class CounterExample:
    """One shrunk failing (ruleset, stream) pair, report-ready."""

    iteration: int
    case_seed: int
    kind: str
    divergences: list[str]
    original: FuzzCase
    shrunk: FuzzCase
    shrink_attempts: int

    def snapshot(self) -> dict:
        return {
            "iteration": self.iteration,
            "case_seed": self.case_seed,
            "kind": self.kind,
            "divergences": self.divergences,
            "original": self.original.snapshot(),
            "shrunk": self.shrunk.snapshot(),
            "shrink_attempts": self.shrink_attempts,
        }


@dataclass
class FuzzReport:
    """Outcome of one seeded, time-budgeted fuzz campaign."""

    seed: int
    profile: str
    budget: float
    elapsed: float
    iterations: int
    backends: list[str]
    counterexamples: list[CounterExample] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def snapshot(self) -> dict:
        """JSON-ready form (the CI fuzz artifact)."""
        return {
            "schema": "repro.fuzz/1",
            "seed": self.seed,
            "profile": self.profile,
            "budget_seconds": self.budget,
            "elapsed_seconds": round(self.elapsed, 3),
            "iterations": self.iterations,
            "backends": self.backends,
            "mismatches": len(self.counterexamples),
            "counterexamples": [c.snapshot() for c in self.counterexamples],
            "notes": self.notes,
        }


def _case_seed_for(seed: int, iteration: int) -> int:
    """Per-iteration case seed: reproducible independent of the budget."""
    return (seed * 1_000_003 + iteration) & 0xFFFFFFFF


def fuzz(
    seed: int = 0,
    budget: float = 60.0,
    profile: GeneratorProfile = DEFAULT_PROFILE,
    backends: Optional[Mapping[str, Callable[[], object]]] = None,
    workers: int = 2,
    transports: Sequence[str] = DEFAULT_TRANSPORTS,
    max_cycles: int = 40,
    iterations: Optional[int] = None,
    shrink_attempts: int = 250,
    strategy: str = "lex",
    on_case: Optional[Callable[[int, CaseOutcome], None]] = None,
) -> FuzzReport:
    """Run a seeded fuzz campaign until the time *budget* (seconds) or
    *iterations* runs out; shrink and record every failure.

    Each iteration derives ``case_seed = _case_seed_for(seed, i)``, so a
    report row reproduces via :func:`case_from_seed` regardless of how
    far the budget let the original campaign run.  *backends* overrides
    the fleet (used by the injected-bug tests); by default the full six
    matchers x both transports cross-product runs.
    """
    start = time.monotonic()
    deadline = start + budget
    fleet: Optional[MatcherFleet] = None
    notes: list[str] = []
    try:
        if backends is None:
            fleet = MatcherFleet(workers=workers, transports=transports)
            backends = fleet.backends()
            notes.extend(fleet.notes)
        report = FuzzReport(
            seed=seed,
            profile=profile.name,
            budget=budget,
            elapsed=0.0,
            iterations=0,
            backends=sorted(backends),
            notes=notes,
        )
        iteration = 0
        while time.monotonic() < deadline:
            if iterations is not None and iteration >= iterations:
                break
            case_seed = _case_seed_for(seed, iteration)
            case = case_from_seed(profile, case_seed)
            outcome = run_case(
                case, backends, strategy=strategy, max_cycles=max_cycles
            )
            if on_case is not None:
                on_case(iteration, outcome)
            if not outcome.ok:
                def still_fails(candidate: FuzzCase) -> bool:
                    return not run_case(
                        candidate, backends, strategy=strategy, max_cycles=max_cycles
                    ).ok

                shrunk, attempts = shrink_case(
                    case, still_fails, max_attempts=shrink_attempts, deadline=deadline
                )
                final = run_case(
                    shrunk, backends, strategy=strategy, max_cycles=max_cycles
                )
                report.counterexamples.append(
                    CounterExample(
                        iteration=iteration,
                        case_seed=case_seed,
                        kind=final.kind if not final.ok else outcome.kind,
                        divergences=final.divergences() or outcome.divergences(),
                        original=case,
                        shrunk=shrunk,
                        shrink_attempts=attempts,
                    )
                )
            iteration += 1
        report.iterations = iteration
        report.elapsed = time.monotonic() - start
        return report
    finally:
        if fleet is not None:
            fleet.close()


# ---------------------------------------------------------------------------
# System-class program emission (the six runnable paper workloads)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SystemProgram:
    """A generated, runnable, terminating system-class OPS5 program.

    Structure: per stage and branch a *mark* rule joins the lane's task
    to a typed item (negated-CE deduplicated), an *advance* rule with
    branch-count fan-in moves the lane's task to the next stage once all
    marks exist, a *done* rule retires finished tasks, a *halt* rule
    fires when no task remains, and ``distractors`` rules are affected
    by every task change without ever firing -- which is what calibrates
    the measured affected-productions-per-change to the paper's Table
    statistics for the system.
    """

    name: str
    source: str
    setup: tuple[tuple[str, dict], ...]
    stages: int
    branches: int
    lanes: int
    distractors: int
    rule_count: int
    max_cycles: int

    def expected_firings(self) -> int:
        """Exact recognize--act cycles a full run takes."""
        # Per lane: every (stage, branch) mark, one advance per stage,
        # one done; plus the single final halt rule firing.
        return self.lanes * (self.stages * (self.branches + 1) + 1) + 1


def emit_system_program(
    profile: SystemProfile, lanes: Optional[int] = None
) -> SystemProgram:
    """Emit one paper system's runnable program from its profile.

    Deterministic (no randomness): the structure is a closed-form
    function of the profile's knobs, so the committed program modules
    are stable across runs and platforms.
    """
    stages = max(2, profile.heavy_depth + 1)
    branches = max(2, round(profile.heavy_fanout))
    lane_count = lanes if lanes is not None else max(2, round(profile.changes_per_firing))
    distractors = max(0, round(profile.affected_mean) - branches - 2)
    name = profile.name

    productions: list[Production] = []
    for stage in range(stages):
        for branch in range(branches):
            tests: dict[str, Test] = {
                "lane": VariableTest("l"),
                "kind": ConstantTest(f"k{branch}"),
            }
            if branch % 3 == 2:
                # Predicate coverage: item values are 10+branch, so > 5
                # always passes -- structure, not filtering.
                tests["val"] = PredicateTest(Predicate.GT, ConstantTest(5))
            productions.append(
                Production(
                    f"{name}-s{stage}-b{branch}",
                    (
                        ConditionElement(
                            "task",
                            {"stage": ConstantTest(stage), "lane": VariableTest("l")},
                        ),
                        ConditionElement("item", tests),
                        ConditionElement(
                            "mark",
                            {
                                "stage": ConstantTest(stage),
                                "lane": VariableTest("l"),
                                "branch": ConstantTest(branch),
                            },
                            negated=True,
                        ),
                    ),
                    (
                        Make(
                            "mark",
                            (
                                ("stage", Constant(stage)),
                                ("lane", VariableRef("l")),
                                ("branch", Constant(branch)),
                            ),
                        ),
                    ),
                )
            )
        # Advance: fan-in of *branches* mark CEs plus the task anchor.
        advance_ces: list[ConditionElement] = [
            ConditionElement(
                "task", {"stage": ConstantTest(stage), "lane": VariableTest("l")}
            )
        ]
        for branch in range(branches):
            advance_ces.append(
                ConditionElement(
                    "mark",
                    {
                        "stage": ConstantTest(stage),
                        "lane": VariableTest("l"),
                        "branch": ConstantTest(branch),
                    },
                )
            )
        productions.append(
            Production(
                f"{name}-advance-{stage}",
                tuple(advance_ces),
                (Modify(1, (("stage", Constant(stage + 1)),)),),
            )
        )
    productions.append(
        Production(
            f"{name}-done",
            (
                ConditionElement(
                    "task", {"stage": ConstantTest(stages), "lane": VariableTest("l")}
                ),
            ),
            (Write((Constant("done"), VariableRef("l"))), Remove(1)),
        )
    )
    productions.append(
        Production(
            f"{name}-halt",
            (
                ConditionElement("ctx", {"phase": ConstantTest("run")}),
                ConditionElement(
                    "task",
                    {"stage": VariableTest("s"), "lane": VariableTest("l")},
                    negated=True,
                ),
            ),
            (Modify(1, (("phase", Constant("end")),)), Halt()),
        )
    )
    # Distractors: affected by every task change, never satisfied (no
    # item carries their kind), so they load the alpha network exactly
    # the way the paper's ~30-affected-per-change statistic describes.
    for index in range(distractors):
        productions.append(
            Production(
                f"{name}-watch-{index}",
                (
                    ConditionElement(
                        "task",
                        {"stage": VariableTest("s"), "lane": VariableTest("l")},
                    ),
                    ConditionElement(
                        "item",
                        {"lane": VariableTest("l"), "kind": ConstantTest(f"x{index}")},
                    ),
                ),
                (Make("log", (("tag", Constant(index)),)),),
            )
        )

    program = Program(
        productions=productions,
        literalizations={
            "task": ("stage", "lane"),
            "item": ("lane", "kind", "val"),
            "mark": ("stage", "lane", "branch"),
            "ctx": ("phase",),
            "log": ("tag",),
        },
    )

    setup: list[tuple[str, dict]] = [("ctx", {"phase": "run"})]
    for lane in range(lane_count):
        setup.append(("task", {"stage": 0, "lane": f"lane{lane}"}))
        for branch in range(branches):
            setup.append(
                ("item", {"lane": f"lane{lane}", "kind": f"k{branch}", "val": 10 + branch})
            )

    firings = lane_count * (stages * (branches + 1) + 1) + 1
    return SystemProgram(
        name=name,
        source=unparse_program(program),
        setup=tuple(setup),
        stages=stages,
        branches=branches,
        lanes=lane_count,
        distractors=distractors,
        rule_count=len(productions),
        max_cycles=firings + 16,
    )
