"""Workloads: calibrated synthetic system profiles and real OPS5 programs.

Two sources of match work drive the evaluation:

* :mod:`repro.workloads.profiles` / :mod:`repro.workloads.synthetic` --
  synthetic trace generators calibrated to the published statistics of
  the paper's six systems (VT, ILOG, MUD, DAA, R1-Soar, EP-Soar), whose
  original traces are CMU-internal;
* :mod:`repro.workloads.programs` -- real OPS5 programs (Tower of
  Hanoi, blocks world, monkey & bananas, eight puzzle, transitive
  closure) run through the instrumented Rete network.
"""

from .profiles import (
    DAA,
    EP_SOAR,
    ILOG,
    MUD,
    PAPER_SYSTEMS,
    PARALLEL_FIRING_SYSTEMS,
    R1_SOAR,
    SystemProfile,
    VT,
    profile_named,
)
from .synthetic import SyntheticGenerator, generate_trace
from .programs import ALL_PROGRAMS

__all__ = [
    "ALL_PROGRAMS",
    "DAA",
    "EP_SOAR",
    "ILOG",
    "MUD",
    "PAPER_SYSTEMS",
    "PARALLEL_FIRING_SYSTEMS",
    "R1_SOAR",
    "SyntheticGenerator",
    "SystemProfile",
    "VT",
    "generate_trace",
    "profile_named",
]
