"""Workloads: calibrated synthetic system profiles and real OPS5 programs.

Two sources of match work drive the evaluation:

* :mod:`repro.workloads.profiles` / :mod:`repro.workloads.synthetic` --
  synthetic trace generators calibrated to the published statistics of
  the paper's six systems (VT, ILOG, MUD, DAA, R1-Soar, EP-Soar), whose
  original traces are CMU-internal;
* :mod:`repro.workloads.programs` -- real OPS5 programs (Tower of
  Hanoi, blocks world, monkey & bananas, eight puzzle, transitive
  closure) plus six generated *system-class* programs, run through the
  instrumented matchers;
* :mod:`repro.workloads.generator` -- the property-based OPS5 program
  generator and differential fuzzing harness (``docs/workloads.md``).
"""

from .profiles import (
    DAA,
    EP_SOAR,
    ILOG,
    MUD,
    PAPER_SYSTEMS,
    PARALLEL_FIRING_SYSTEMS,
    R1_SOAR,
    SystemProfile,
    VT,
    profile_named,
)
from .generator import GENERATOR_PROFILES, case_from_seed, emit_system_program, fuzz
from .replay import OpStreamRecorder, Recording, record_program, timed_replay
from .synthetic import SyntheticGenerator, generate_trace
from .programs import ALL_PROGRAMS

__all__ = [
    "ALL_PROGRAMS",
    "GENERATOR_PROFILES",
    "DAA",
    "EP_SOAR",
    "ILOG",
    "MUD",
    "OpStreamRecorder",
    "PAPER_SYSTEMS",
    "PARALLEL_FIRING_SYSTEMS",
    "R1_SOAR",
    "Recording",
    "SyntheticGenerator",
    "SystemProfile",
    "VT",
    "case_from_seed",
    "emit_system_program",
    "fuzz",
    "generate_trace",
    "profile_named",
    "record_program",
    "timed_replay",
]
