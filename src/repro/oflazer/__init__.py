"""Oflazer's all-combinations match algorithm (paper Sections 3.2, 7.3).

The high end of the state-saving spectrum: tokens are stored for *all*
combinations of a production's condition elements, so each change's
interaction with old state can be computed independently.  The paper
flags its two risks -- state volume and wasted state maintenance --
which this implementation lets you measure directly.
"""

from .matcher import CombinationMatcher

__all__ = ["CombinationMatcher"]
