"""The all-combinations state-saving matcher (Oflazer's scheme).

Where Rete stores partial matches for one fixed chain of CE prefixes,
this algorithm stores a consistent partial assignment for **every**
subset of a production's positive condition elements: "the tokens
matching not some but all combinations of condition elements of a
production should be stored ... such that the interaction of a change
to working memory with each token of the old state can be computed
independently and in parallel" (paper Section 7.3).

Implementation
--------------
Per production, a store maps each non-empty CE-index subset to its
partial assignments.  A WME insertion creates singleton partials for
every CE it matches; a worklist then merges each new partial with every
stored partial over a *disjoint* subset, deduplicating by the
(index, timetag) key -- so all supersets containing the new WME appear
exactly once.  Deletion removes every partial containing the WME (the
scheme's cheap direction, like TREAT's).

Consistency of a partial is checked by *lenient* re-evaluation in LHS
index order: a predicate whose variable operand is not yet bound
passes provisionally.  On the full CE set every operand's binder is
present and earlier (the validator guarantees it), so full assignments
are checked strictly -- partial leniency never leaks into the conflict
set.

Negated CEs are evaluated only when a full positive assignment forms
(with bindings restricted to the variables visible at the negation's
LHS position, as in :mod:`repro.treat.matcher`).  Because full partials
stay stored even while blocked, unblocking after a deletion is a cheap
re-check rather than a join.

The per-change work and the stored volume both grow exponentially with
LHS width -- the paper's stated concerns (1) and (2) about this end of
the spectrum, observable here via :meth:`CombinationMatcher.state_size`
and the matcher's comparison counters.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..ops5.condition import (
    Bindings,
    CEAnalysis,
    ConjunctiveTest,
    PredicateTest,
    Test,
    VariableTest,
    wme_passes_alpha,
)
from ..ops5.matcher import ChangeRecord, Matcher
from ..ops5.production import Instantiation, Production
from ..ops5.wme import WME

#: A partial-assignment key: sorted ((ce_index, timetag), ...).
PartialKey = tuple[tuple[int, int], ...]


def _lenient_evaluate(test: Test, value, bindings: Bindings) -> Optional[Bindings]:
    """Like ``Test.evaluate`` but unbound predicate operands pass.

    Partial assignments may lack the condition element that binds a
    predicate's operand; the predicate is then provisionally satisfied
    and re-checked once a merge brings the binder in.
    """
    if isinstance(test, PredicateTest) and isinstance(test.operand, VariableTest):
        if test.operand.name not in bindings:
            return bindings
        return test.evaluate(value, bindings)
    if isinstance(test, ConjunctiveTest):
        current: Optional[Bindings] = bindings
        for inner in test.tests:
            current = _lenient_evaluate(inner, value, current)
            if current is None:
                return None
        return current
    return test.evaluate(value, bindings)


def _lenient_match(analysis: CEAnalysis, wme: WME, bindings: Bindings) -> Optional[Bindings]:
    """CE match with lenient predicate semantics (see above)."""
    ce = analysis.ce
    if wme.cls != ce.cls:
        return None
    current: Optional[Bindings] = bindings
    for attribute in sorted(ce.tests):
        current = _lenient_evaluate(ce.tests[attribute], wme.get(attribute), current)
        if current is None:
            return None
    return current


class _Partial:
    """One consistent assignment of WMEs to a subset of positive CEs."""

    __slots__ = ("assignment", "key")

    def __init__(self, assignment: dict[int, WME]) -> None:
        self.assignment = assignment
        self.key: PartialKey = tuple(
            (index, assignment[index].timetag) for index in sorted(assignment)
        )

    @property
    def indices(self) -> frozenset[int]:
        return frozenset(self.assignment)

    def contains_wme(self, timetag: int) -> bool:
        return any(w.timetag == timetag for w in self.assignment.values())


class _ProductionState:
    """All stored combinations for one production."""

    def __init__(self, production: Production) -> None:
        self.production = production
        self.analyses = production.analysis
        self.positive = [a for a in self.analyses if not a.ce.negated]
        self.positive_indices = frozenset(a.index for a in self.positive)
        self.negated = [a for a in self.analyses if a.ce.negated]
        #: subset -> {partial key: _Partial}
        self.store: dict[frozenset[int], dict[PartialKey, _Partial]] = {}
        #: Variables visible to each negated CE (bound at earlier LHS
        #: positions by positive CEs).
        self.visible_vars: dict[int, frozenset[str]] = {}
        bound: set[str] = set()
        for analysis in self.analyses:
            if analysis.ce.negated:
                self.visible_vars[analysis.index] = frozenset(bound)
            else:
                bound.update(analysis.binders)

    def partials_of(self, subset: frozenset[int]) -> dict[PartialKey, _Partial]:
        return self.store.setdefault(subset, {})

    def consistent_bindings(self, assignment: dict[int, WME]) -> Optional[Bindings]:
        """Lenient re-evaluation of *assignment* in LHS index order."""
        bindings: Optional[Bindings] = {}
        for index in sorted(assignment):
            bindings = _lenient_match(self.analyses[index], assignment[index], bindings)
            if bindings is None:
                return None
        return bindings


class CombinationMatcher(Matcher):
    """The all-combinations scheme as a live matcher."""

    def __init__(self) -> None:
        super().__init__()
        self._states: dict[str, _ProductionState] = {}
        #: Alpha memories for negated CEs: (production, ce index) -> wmes.
        self._neg_amem: dict[tuple[str, int], dict[int, WME]] = {}
        self._wmes: dict[int, WME] = {}
        self._comparisons = 0
        self._tokens_built = 0

    # -- Matcher interface -----------------------------------------------------

    @property
    def productions(self) -> Iterable[Production]:
        return (state.production for state in self._states.values())

    def add_production(self, production: Production) -> None:
        state = _ProductionState(production)
        self._states[production.name] = state
        for analysis in state.negated:
            self._neg_amem[(production.name, analysis.index)] = {
                tag: wme
                for tag, wme in self._wmes.items()
                if wme_passes_alpha(wme, analysis)
            }
        # Fold existing memory in one WME at a time (reusing the
        # incremental machinery keeps one code path).
        for wme in list(self._wmes.values()):
            self._combine_new_wme(state, wme)
        for partial in state.partials_of(state.positive_indices).values():
            instantiation = self._instantiation(state, partial)
            if self._negations_clear(state, partial) and instantiation not in self.conflict_set:
                self.conflict_set.insert(instantiation)

    def remove_production(self, name: str) -> None:
        state = self._states.pop(name)
        for analysis in state.negated:
            self._neg_amem.pop((name, analysis.index), None)
        for instantiation in list(self.conflict_set):
            if instantiation.production is state.production:
                self.conflict_set.delete(instantiation)

    def add_wme(self, wme: WME) -> None:
        self._comparisons = 0
        self._tokens_built = 0
        self._wmes[wme.timetag] = wme
        affected: set[str] = set()

        for name, state in self._states.items():
            new_fulls = self._combine_new_wme(state, wme)
            # Affectedness: the WME matched some CE (positive or negated).
            if self._hit_any_ce(state, wme):
                affected.add(name)
            for partial in new_fulls:
                if self._negations_clear(state, partial):
                    self.conflict_set.insert(self._instantiation(state, partial))
            # Negated CEs: a new blocker retracts satisfied instantiations
            # (including any inserted just above with the pre-change
            # blocker memories -- net effect identical either way).
            for analysis in state.negated:
                amem = self._neg_amem[(name, analysis.index)]
                if wme_passes_alpha(wme, analysis):
                    amem[wme.timetag] = wme
                    self._retract_blocked(state, analysis, wme)

        self._record("add", wme, affected)

    def remove_wme(self, wme: WME) -> None:
        self._comparisons = 0
        self._tokens_built = 0
        del self._wmes[wme.timetag]
        affected: set[str] = set()

        for instantiation in list(self.conflict_set):
            if wme.timetag in instantiation.timetags:
                self.conflict_set.delete(instantiation)

        for name, state in self._states.items():
            if self._hit_any_ce(state, wme):
                affected.add(name)
            # Drop every partial carrying the WME.
            for subset, partials in state.store.items():
                doomed = [
                    key for key, partial in partials.items()
                    if partial.contains_wme(wme.timetag)
                ]
                for key in doomed:
                    del partials[key]
            # Negated CEs: removing a blocker may satisfy stored fulls.
            for analysis in state.negated:
                amem = self._neg_amem[(name, analysis.index)]
                if wme.timetag in amem:
                    del amem[wme.timetag]
                    self._resurrect_unblocked(state)

        self._record("remove", wme, affected)

    # -- combination machinery ---------------------------------------------------

    def _combine_new_wme(self, state: _ProductionState, wme: WME) -> list[_Partial]:
        """Insert *wme*'s singletons and close under disjoint merges.

        Returns the new full-subset partials (candidate instantiations).
        """
        worklist: list[_Partial] = []
        for analysis in state.positive:
            self._comparisons += 1
            if _lenient_match(analysis, wme, {}) is not None:
                partial = _Partial({analysis.index: wme})
                store = state.partials_of(frozenset({analysis.index}))
                if partial.key not in store:
                    store[partial.key] = partial
                    self._tokens_built += 1
                    worklist.append(partial)

        new_fulls: list[_Partial] = []
        position = 0
        while position < len(worklist):
            current = worklist[position]
            position += 1
            if current.indices == state.positive_indices:
                new_fulls.append(current)
                continue
            # Merge with every stored partial over a disjoint subset.
            for subset, partials in list(state.store.items()):
                if subset & current.indices:
                    continue
                for other in list(partials.values()):
                    merged_assignment = dict(current.assignment)
                    merged_assignment.update(other.assignment)
                    merged = _Partial(merged_assignment)
                    target = state.partials_of(merged.indices)
                    if merged.key in target:
                        continue
                    self._comparisons += 1
                    if state.consistent_bindings(merged_assignment) is None:
                        continue
                    target[merged.key] = merged
                    self._tokens_built += 1
                    worklist.append(merged)
        return new_fulls

    def _hit_any_ce(self, state: _ProductionState, wme: WME) -> bool:
        return any(wme_passes_alpha(wme, analysis) for analysis in state.analyses)

    # -- negation handling ----------------------------------------------------------

    def _visible(self, state: _ProductionState, analysis: CEAnalysis,
                 bindings: Bindings) -> Bindings:
        return {
            var: bindings[var]
            for var in state.visible_vars[analysis.index]
            if var in bindings
        }

    def _negations_clear(self, state: _ProductionState, partial: _Partial) -> bool:
        bindings = state.consistent_bindings(partial.assignment)
        if bindings is None:  # pragma: no cover - stored partials are consistent
            return False
        for analysis in state.negated:
            amem = self._neg_amem[(state.production.name, analysis.index)]
            visible = self._visible(state, analysis, bindings)
            for blocker in amem.values():
                self._comparisons += 1
                if analysis.ce.match(blocker, dict(visible)) is not None:
                    return False
        return True

    def _retract_blocked(self, state: _ProductionState, analysis: CEAnalysis,
                         blocker: WME) -> None:
        for instantiation in list(self.conflict_set):
            if instantiation.production is not state.production:
                continue
            visible = self._visible(state, analysis, instantiation.bindings)
            self._comparisons += 1
            if analysis.ce.match(blocker, visible) is not None:
                self.conflict_set.delete(instantiation)

    def _resurrect_unblocked(self, state: _ProductionState) -> None:
        for partial in state.partials_of(state.positive_indices).values():
            instantiation = self._instantiation(state, partial)
            if instantiation in self.conflict_set:
                continue
            if self._negations_clear(state, partial):
                self.conflict_set.insert(instantiation)

    def _instantiation(self, state: _ProductionState, partial: _Partial) -> Instantiation:
        bindings = state.consistent_bindings(partial.assignment) or {}
        wmes = tuple(partial.assignment[i] for i in sorted(partial.assignment))
        return Instantiation(state.production, wmes, bindings)

    # -- bookkeeping --------------------------------------------------------------------

    def _record(self, kind: str, wme: WME, affected: set[str]) -> None:
        self.stats.record(
            ChangeRecord(
                kind=kind,
                wme_class=wme.cls,
                affected_productions=len(affected),
                node_activations=0,
                comparisons=self._comparisons,
                tokens_built=self._tokens_built,
            )
        )

    def state_size(self) -> dict[str, int]:
        """Stored volume in the shared schema (alpha vs beta split).

        Singleton partials plus negated-CE memories count as alpha
        state; multi-CE partials are the combination (beta) state.
        """
        alpha = sum(len(m) for m in self._neg_amem.values())
        beta = 0
        for state in self._states.values():
            for subset, partials in state.store.items():
                if len(subset) == 1:
                    alpha += len(partials)
                else:
                    beta += len(partials)
        return {"alpha_wmes": alpha, "beta_tokens": beta}

    def memory_size(self) -> int:
        return len(self._wmes)
