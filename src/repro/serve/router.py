"""The front-door router: one address, N rule-server workers behind it.

Scaling the serve layer *out* (ROADMAP item 3): a :class:`RuleRouter`
speaks the same length-prefixed JSON protocol as a
:class:`~repro.serve.server.RuleServer`, so existing clients (the
blocking :class:`RuleClient`, the load generator) point at it unchanged
-- but behind it every session lives on one of N workers, each its own
server process/thread with its own event loop, session threads, and
shared-kernel registry.

Placement and naming
--------------------
The router owns session naming: client-supplied names are honoured
(rejected on collision), otherwise the router mints globally-unique
``r<n>`` ids.  A new session lands on the worker chosen by a stable
hash of its id over the *healthy* workers, so placement is deterministic
for a given fleet shape and needs no coordination.  The placement map
(session -> worker) is the router's only authoritative state; everything
else re-derives from worker stats.

Admission control
-----------------
Per-tenant quotas are enforced fleet-wide at the router (the
authoritative count lives in the placement map) *before* a create is
forwarded; workers enforce their own local quotas independently.  A
rejected create answers ``error: "quota"`` -- not backpressure, because
retrying cannot help until the tenant frees a session.

Migration
---------
``migrate_session`` moves a live session between workers using the
engine's checkpoint machinery: the router marks the session *migrating*
(in-flight requests for it are answered with a backpressure rejection
carrying a small ``retry_after``, so well-behaved clients retry
transparently through :meth:`RuleClient.call`), drives the session's
``export`` op on the source (ordered through its queue, so everything
acknowledged is in the blob), replays it into an ``import_session`` on
the target, destroys the source copy, and flips the placement.  The
continuation is bit-identical -- the same property the parallel
supervisor's checkpoint+journal restore proves per shard.

Degraded workers
----------------
Every worker call failure counts; ``failure_threshold`` consecutive
failures demote the worker (mirroring the parallel supervisor's
shard-demotion policy): it stops receiving new sessions, a structured
event is recorded, and the router attempts to evacuate its sessions to
healthy workers via the migration path.  Evacuation is best-effort --
a worker that died (rather than slowed) cannot export, and those
sessions are reported lost in the router's stats rather than silently
forgotten.

Durability
----------
With a :class:`~repro.serve.durability.DurabilityStore` attached, the
lost-session failure mode disappears: every accepted mutating op is
appended to the session's write-ahead journal *before* the reply leaves
the router, periodic checkpoints persist the engine's ``export_state``
blob, and a dead worker's sessions are rebuilt -- on the respawned
process (when a ``supervisor``, e.g. a
:class:`~repro.serve.fleet.ProcessFleet`, is attached) or on the
surviving workers -- from checkpoint + journal tail, bit-identical to a
no-fault run.  ``recovered_sessions`` replaces ``lost_sessions`` in the
books.  A per-session lock serialises durable forwarding, so journal
order is execution order and a checkpoint taken under the lock covers
exactly the journal prefix it records; the migrating-check,
sequence-number bump, and journal append happen in one synchronous
block on the event loop, so every append strictly precedes any recovery
that could replay it.  Ops the worker definitively did not execute --
backpressure rejections, and deadline expiries whose reply reports the
op never started -- are tombstoned so replay applies exactly what ran.
The op a worker died on is answered from the recovery replay -- the
journal is the authority, and handing the caller an error would invite
a retry that double-applies.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
import zlib
from collections import deque
from typing import Optional, Sequence

from ..ops5 import Ops5Error
from .protocol import ProtocolError, read_message, write_message
from .session import DEFAULT_TENANT
from .stats import Telemetry

__all__ = ["RouterFleet", "RouterThread", "RuleRouter", "WorkerLink"]

#: Consecutive call failures before a worker is demoted.
DEFAULT_FAILURE_THRESHOLD = 3

#: Retry hint handed to clients whose session is mid-migration (also
#: used while a durable session is mid-recovery).
MIGRATING_RETRY_AFTER = 0.05

#: Checkpoint a durable session every N journaled ops (0 = never).
DEFAULT_CHECKPOINT_EVERY = 16

#: Session ops recorded in the write-ahead journal: everything that
#: mutates engine state.  Reads (query, export) are forwarded under the
#: same per-session lock but never replayed.
_JOURNALED_OPS = frozenset({"assert", "retract", "modify", "apply", "run"})


class WorkerLink:
    """The router's connection pool to one worker.

    The wire protocol is strict request/reply per connection, so each
    in-flight call owns one pooled connection; up to *pool_size*
    connections are opened lazily.  A transport failure tears the
    connection down (the next call reconnects) and counts toward the
    worker's consecutive-failure streak; any success resets the streak.
    """

    def __init__(self, address, index: int, pool_size: int = 4) -> None:
        self.address = address
        self.index = index
        self.pool_size = pool_size
        self.healthy = True
        self.calls = 0
        self.failures = 0
        self.consecutive_failures = 0
        #: Bumped by :meth:`reset`; a failure observed under an older
        #: generation is stale -- its worker has already been replaced.
        self.generation = 0
        self._open = 0
        self._pool: asyncio.Queue = asyncio.Queue()

    async def _connect(self):
        if isinstance(self.address, str):
            return await asyncio.open_unix_connection(self.address)
        host, port = self.address
        return await asyncio.open_connection(host, port)

    async def _acquire(self):
        if not self._pool.empty():
            return self._pool.get_nowait()
        if self._open < self.pool_size:
            self._open += 1
            try:
                return await self._connect()
            except Exception:
                self._open -= 1
                raise
        return await self._pool.get()

    def _release(self, conn) -> None:
        self._pool.put_nowait(conn)

    def _discard(self, conn) -> None:
        self._open -= 1
        reader, writer = conn
        writer.close()

    async def call(self, request: dict, timeout: float = 60.0) -> dict:
        """One request/reply round trip on a pooled connection."""
        try:
            conn = await self._acquire()
        except Exception:
            self.failures += 1
            self.consecutive_failures += 1
            raise
        reader, writer = conn
        try:
            await write_message(writer, request)
            reply = await asyncio.wait_for(read_message(reader), timeout)
            if reply is None:
                raise ProtocolError(f"worker {self.index} closed the connection")
        except Exception:
            self._discard(conn)
            self.failures += 1
            self.consecutive_failures += 1
            raise
        self._release(conn)
        self.calls += 1
        self.consecutive_failures = 0
        return reply

    def close(self) -> None:
        while not self._pool.empty():
            _, writer = self._pool.get_nowait()
            writer.close()

    def reset(self, address) -> None:
        """Point this link at a replacement worker process.

        Pooled connections to the dead incarnation are dropped and the
        failure streak forgiven.  A call that was in flight during the
        swap discards its stale connection on its own failure path; the
        open-connection accounting tolerates the resulting slop.
        """
        self.close()
        self._open = 0
        self._pool = asyncio.Queue()
        self.address = address
        self.healthy = True
        self.consecutive_failures = 0
        self.generation += 1

    def snapshot(self) -> dict:
        return {
            "index": self.index,
            "address": list(self.address)
            if isinstance(self.address, tuple)
            else self.address,
            "healthy": self.healthy,
            "calls": self.calls,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "generation": self.generation,
            "pool_connections": self._open,
        }


class _Placement:
    __slots__ = ("worker", "tenant", "migrating", "seq", "ops_since_checkpoint", "lock")

    def __init__(self, worker: int, tenant: str) -> None:
        self.worker = worker
        self.tenant = tenant
        self.migrating = False
        #: Journal sequence of the last accepted op (durable routers).
        self.seq = 0
        #: Journaled ops since the last checkpoint (durable routers).
        self.ops_since_checkpoint = 0
        #: Serialises durable forwarding: journal order == worker order.
        self.lock = asyncio.Lock()


class RuleRouter:
    """The protocol-compatible front door over a fleet of workers."""

    def __init__(
        self,
        worker_addresses: Sequence,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        tenant_quotas: Optional[dict] = None,
        default_tenant_quota: Optional[int] = None,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        durability=None,
        supervisor=None,
        checkpoint_every: Optional[int] = DEFAULT_CHECKPOINT_EVERY,
        heartbeat_interval: Optional[float] = None,
    ) -> None:
        if not worker_addresses:
            raise Ops5Error("a router needs at least one worker address")
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.workers = [
            WorkerLink(address, index)
            for index, address in enumerate(worker_addresses)
        ]
        self.tenant_quotas = dict(tenant_quotas or {})
        self.default_tenant_quota = default_tenant_quota
        self.failure_threshold = failure_threshold
        #: A DurabilityStore, or None for the classic lossy router.
        self.durability = durability
        #: A ProcessFleet (or anything with alive/respawn/restart), or
        #: None; without one, recovery restores onto surviving workers.
        self.supervisor = supervisor
        self.checkpoint_every = checkpoint_every or 0
        self.heartbeat_interval = heartbeat_interval
        self.telemetry = Telemetry()
        self.placements: dict[str, _Placement] = {}
        self.migrations = 0
        self.lost_sessions: list[str] = []
        self.recovered_sessions: list[str] = []
        self.events: deque[dict] = deque(maxlen=128)
        self._quota_rejections: dict[str, int] = {}
        self._ids = itertools.count(1)
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self.connections = 0
        #: Single-flight recovery: worker index -> in-progress task.
        self._recoveries: dict[int, asyncio.Task] = {}
        #: Latest completed recovery result per worker index, for calls
        #: whose failure is observed after the recovery already ran.
        self._last_recovery: dict[int, dict] = {}
        #: Sessions with a checkpoint task in flight.
        self._checkpointing: set[str] = set()
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._rolling = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._stopped = asyncio.Event()
        if self.durability is not None:
            await self._resume_from_store()
        if self.unix_path:
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.host, port=self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
        if self.heartbeat_interval:
            self._heartbeat_task = asyncio.get_running_loop().create_task(
                self._heartbeat_loop(), name="router-heartbeat"
            )

    @property
    def address(self):
        return self.unix_path if self.unix_path else (self.host, self.port)

    async def serve_until_shutdown(self) -> None:
        assert self._stopped is not None, "start() must run first"
        await self._stopped.wait()

    async def shutdown(self, stop_workers: bool = False) -> None:
        """Stop accepting; optionally forward shutdown to every worker."""
        if self._draining:
            return
        self._draining = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if stop_workers:
            for link in self.workers:
                try:
                    await link.call({"op": "shutdown"}, timeout=10.0)
                except Exception:
                    pass
        for link in self.workers:
            link.close()
        if self._stopped is not None:
            self._stopped.set()

    # -- connection handling ----------------------------------------------

    async def _handle(self, reader, writer) -> None:
        self.connections += 1
        try:
            while True:
                try:
                    request = await read_message(reader)
                except ProtocolError as error:
                    await write_message(
                        writer, {"ok": False, "error": f"protocol: {error}"}
                    )
                    break
                if request is None:
                    break
                reply = await self.dispatch(request)
                await write_message(writer, reply)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- placement ---------------------------------------------------------

    def _healthy_workers(self) -> list[WorkerLink]:
        return [link for link in self.workers if link.healthy]

    def _place(self, session_id: str) -> WorkerLink:
        """Stable-hash *session_id* over the healthy workers."""
        healthy = self._healthy_workers()
        if not healthy:
            raise Ops5Error("no healthy workers available")
        digest = zlib.crc32(session_id.encode())
        return healthy[digest % len(healthy)]

    def _least_loaded(self, exclude: int) -> Optional[WorkerLink]:
        loads: dict[int, int] = {}
        for placement in self.placements.values():
            loads[placement.worker] = loads.get(placement.worker, 0) + 1
        candidates = [
            link for link in self._healthy_workers() if link.index != exclude
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda link: loads.get(link.index, 0))

    def tenant_sessions(self, tenant: str) -> int:
        return sum(1 for p in self.placements.values() if p.tenant == tenant)

    def _admit(self, tenant: str) -> Optional[dict]:
        quota = self.tenant_quotas.get(tenant, self.default_tenant_quota)
        if quota is not None and self.tenant_sessions(tenant) >= quota:
            self._quota_rejections[tenant] = (
                self._quota_rejections.get(tenant, 0) + 1
            )
            return {
                "ok": False,
                "error": "quota",
                "detail": (
                    f"tenant {tenant!r} is at its fleet-wide quota of "
                    f"{quota} concurrent session(s)"
                ),
            }
        return None

    def _record_failure(self, link: WorkerLink) -> bool:
        """Account a worker failure; demote at the threshold."""
        if link.healthy and link.consecutive_failures >= self.failure_threshold:
            link.healthy = False
            self.events.append(
                {
                    "type": "demoted",
                    "worker": link.index,
                    "consecutive_failures": link.consecutive_failures,
                    "time": time.time(),
                }
            )
            return True
        return False

    async def _evacuate(self, link: WorkerLink) -> None:
        """Best-effort migration of a demoted worker's sessions."""
        stranded = [
            session_id
            for session_id, placement in self.placements.items()
            if placement.worker == link.index
        ]
        for session_id in stranded:
            reply = await self._migrate(session_id)
            if not reply.get("ok"):
                self.lost_sessions.append(session_id)
                del self.placements[session_id]
                self.events.append(
                    {
                        "type": "lost",
                        "session": session_id,
                        "worker": link.index,
                        "error": reply.get("error"),
                        "time": time.time(),
                    }
                )

    # -- durable recovery ----------------------------------------------------

    def _mark_lost(self, session_id: str, worker: int, error: str) -> None:
        """Last resort, even for a durable router: record the loss but
        keep the session's journal on disk for a postmortem restore."""
        self.lost_sessions.append(session_id)
        self.placements.pop(session_id, None)
        self.events.append(
            {
                "type": "lost",
                "session": session_id,
                "worker": worker,
                "error": error,
                "time": time.time(),
            }
        )

    async def _recover_worker(
        self, link: WorkerLink, generation: int, cause: str
    ) -> dict:
        """Single-flight recovery of one dead worker.

        Every caller that observed a failure awaits the same recovery
        task (shielded -- one caller's disconnect must not cancel the
        fleet's recovery).  A failure observed under an older link
        generation is stale: that worker was already replaced, so the
        cached result answers it without fencing the healthy successor.
        """
        if link.generation != generation and link.index not in self._recoveries:
            return self._last_recovery.get(
                link.index, {"replies": {}, "lost": set()}
            )
        task = self._recoveries.get(link.index)
        if task is None:
            task = asyncio.get_running_loop().create_task(
                self._do_recover_worker(link, cause),
                name=f"recover-worker-{link.index}",
            )
            self._recoveries[link.index] = task
            task.add_done_callback(
                lambda _t: self._recoveries.pop(link.index, None)
            )
        return await asyncio.shield(task)

    async def _do_recover_worker(self, link: WorkerLink, cause: str) -> dict:
        started = time.monotonic()
        link.healthy = False
        stranded = sorted(
            session_id
            for session_id, placement in self.placements.items()
            if placement.worker == link.index
        )
        # Freeze the stranded sessions *before* the first await: any op
        # that already passed its migrating-check has already journaled
        # (same synchronous block), so the replay below cannot miss it;
        # everything later is backpressured until its session recovers.
        for session_id in stranded:
            self.placements[session_id].migrating = True
        self.events.append(
            {
                "type": "worker_failed",
                "worker": link.index,
                "cause": cause,
                "sessions": stranded,
                "time": time.time(),
            }
        )
        target: Optional[WorkerLink] = None
        if self.supervisor is not None:
            address = await asyncio.get_running_loop().run_in_executor(
                None, self.supervisor.respawn, link.index
            )
            if address is not None:
                link.reset(address)
                target = link
        replies: dict[str, tuple] = {}
        lost: set[str] = set()
        for session_id in stranded:
            destination = target or self._least_loaded(exclude=link.index)
            if destination is None:
                self._mark_lost(session_id, link.index, "no healthy target worker")
                lost.add(session_id)
                continue
            outcome = await self._restore_session(session_id, destination)
            if outcome is None:
                self._mark_lost(session_id, link.index, "restore failed")
                lost.add(session_id)
            else:
                replies[session_id] = outcome
        if self.supervisor is None and replies:
            # Without a supervisor nothing fenced the suspect worker: if
            # it was merely slow rather than dead, its session copies
            # are still live and holding worker-local quota beside the
            # restored ones.  Best-effort destroy them; a truly dead
            # worker fails the first call fast and we stop poking.
            for session_id in sorted(replies):
                try:
                    await link.call(
                        {"op": "destroy_session", "session": session_id},
                        timeout=5.0,
                    )
                except Exception:
                    break
        result = {"replies": replies, "lost": lost}
        self._last_recovery[link.index] = result
        self.events.append(
            {
                "type": "worker_recovered",
                "worker": link.index,
                "respawned": target is not None,
                "sessions": len(replies),
                "lost": sorted(lost),
                "seconds": time.monotonic() - started,
                "time": time.time(),
            }
        )
        return result

    async def _restore_session(
        self, session_id: str, target: WorkerLink, event: str = "recovered"
    ) -> Optional[tuple]:
        """Rebuild one session on *target* from checkpoint + journal tail.

        Returns ``(last_seq, last_reply)`` of the replayed tail (``(0,
        None)`` when the tail was empty) so the caller whose op died in
        flight can be answered from the replay, or None on failure.
        """
        placement = self.placements.get(session_id)
        bundle = self.durability.load(session_id)
        if placement is None or bundle is None:
            return None
        if bundle.checkpoint is not None:
            rebuild = {
                "op": "import_session",
                "name": session_id,
                "config": bundle.checkpoint["config"],
                "state": bundle.checkpoint["state"],
            }
        else:
            rebuild = {
                "op": "create_session",
                **bundle.config,
                "name": session_id,
            }
        try:
            reply = await target.call(rebuild)
            if not reply.get("ok") and "already exists" in str(reply.get("error", "")):
                # A half-migrated or half-restored copy squats on the
                # name; the journal is the authority, so replace it.
                await target.call(
                    {"op": "destroy_session", "session": session_id}
                )
                reply = await target.call(rebuild)
            if not reply.get("ok"):
                return None
            last: tuple = (0, None)
            for record in bundle.records:
                request = {
                    key: value
                    for key, value in record.request.items()
                    if key != "deadline"
                }
                last = (record.seq, await target.call(request))
        except Exception:
            return None
        placement.worker = target.index
        placement.migrating = False
        placement.ops_since_checkpoint = len(bundle.records)
        placement.seq = max(placement.seq, bundle.last_seq)
        if event == "recovered":
            self.recovered_sessions.append(session_id)
        self.events.append(
            {
                "type": event,
                "session": session_id,
                "worker": target.index,
                "replayed_ops": len(bundle.records),
                "used_checkpoint": bundle.used_checkpoint,
                "notes": bundle.notes,
                "time": time.time(),
            }
        )
        return last

    async def _resume_from_store(self) -> None:
        """Cold start over an existing store: restore every journaled
        session (a router restart must not lose the fleet's state)."""
        top_minted = 0
        for session_id in self.durability.sessions():
            if session_id in self.placements:
                continue
            bundle = self.durability.load(session_id)
            if bundle is None:
                continue
            if session_id.startswith("r") and session_id[1:].isdigit():
                top_minted = max(top_minted, int(session_id[1:]))
            try:
                target = self._place(session_id)
            except Ops5Error:
                self._mark_lost(session_id, -1, "no healthy workers at resume")
                continue
            placement = _Placement(
                target.index, bundle.config.get("tenant", DEFAULT_TENANT)
            )
            placement.seq = bundle.last_seq
            placement.migrating = True
            self.placements[session_id] = placement
            outcome = await self._restore_session(
                session_id, target, event="resumed"
            )
            if outcome is None:
                self._mark_lost(session_id, target.index, "resume failed")
        if top_minted:
            self._ids = itertools.count(top_minted + 1)

    async def _heartbeat_loop(self) -> None:
        """Proactive liveness: don't wait for a client op to trip over a
        dead worker.  Process liveness via the supervisor when attached,
        a ping round-trip otherwise.

        A supervisor verdict (the OS process exited) is certain and
        recovers immediately.  A ping timeout is not -- the worker may
        merely be slow -- so both the durable and the classic path wait
        for ``failure_threshold`` *consecutive* failures before acting:
        a premature durable restore would leave the slow worker's live
        session copies running unfenced beside the restored ones.
        """
        while not self._draining:
            await asyncio.sleep(self.heartbeat_interval)
            if self._rolling:
                # A rolling restart replaces processes on purpose; the
                # probe would read the swap window as a crash and race
                # the roll's own restore.
                continue
            for link in self.workers:
                if self._draining:
                    return
                if not link.healthy:
                    continue
                generation = link.generation
                process_dead = (
                    self.supervisor is not None
                    and not self.supervisor.alive(link.index)
                )
                if not process_dead:
                    try:
                        await link.call({"op": "ping"}, timeout=5.0)
                        continue
                    except Exception:
                        pass  # counted in link.consecutive_failures
                if self.durability is not None:
                    if (
                        process_dead
                        or link.consecutive_failures >= self.failure_threshold
                    ):
                        await self._recover_worker(
                            link, generation, "heartbeat"
                        )
                else:
                    demoted = self._record_failure(link)
                    if demoted:
                        await self._evacuate(link)

    def _maybe_checkpoint(self, session_id: str, placement: _Placement) -> None:
        placement.ops_since_checkpoint += 1
        if (
            self.checkpoint_every
            and placement.ops_since_checkpoint >= self.checkpoint_every
            and session_id not in self._checkpointing
        ):
            self._checkpointing.add(session_id)
            asyncio.get_running_loop().create_task(
                self._checkpoint_session(session_id),
                name=f"checkpoint-{session_id}",
            )

    async def _checkpoint_session(self, session_id: str) -> None:
        """Persist one session's checkpoint, off the request path.

        Holding the placement lock means no op is in flight, so the
        exported blob covers exactly ``placement.seq`` journaled ops --
        the seq recorded beside it.  Failures are ignored: a checkpoint
        is an optimisation of the replay, never a correctness event.
        """
        try:
            placement = self.placements.get(session_id)
            if placement is None:
                return
            async with placement.lock:
                if (
                    self.placements.get(session_id) is not placement
                    or placement.migrating
                ):
                    # Destroyed (or destroyed-and-recreated under the
                    # same name) while this task waited for the lock: a
                    # stale checkpoint landing after the drop would
                    # resurrect the old incarnation on recovery.
                    return
                link = self.workers[placement.worker]
                try:
                    reply = await link.call(
                        {"op": "export", "session": session_id}
                    )
                except Exception:
                    return  # the next op's failure will drive recovery
                if not reply.get("ok"):
                    return
                self.durability.save_checkpoint(
                    session_id, placement.seq, reply["config"], reply["state"]
                )
                placement.ops_since_checkpoint = 0
        finally:
            self._checkpointing.discard(session_id)

    async def _forward_durable(
        self, request: dict, session_id: str, placement: _Placement
    ) -> dict:
        """Forward one session op under the journal's ordering contract."""
        op = request.get("op")
        journal = op in _JOURNALED_OPS
        async with placement.lock:
            if placement.migrating:
                self.telemetry.rejected += 1
                return {
                    "ok": False,
                    "error": "backpressure",
                    "retry_after": MIGRATING_RETRY_AFTER,
                    "migrating": True,
                }
            link = self.workers[placement.worker]
            generation = link.generation
            seq = 0
            if journal:
                # No await between the migrating-check and this append:
                # recovery freezes sessions synchronously, so the append
                # lands strictly before any journal-tail read.
                placement.seq += 1
                seq = placement.seq
                self.durability.append(session_id, seq, request)
            try:
                reply = await link.call(request)
            except Exception as error:
                self.telemetry.errors += 1
                result = await self._recover_worker(
                    link, generation, f"{type(error).__name__}: {error}"
                )
                if session_id in result["lost"]:
                    return {
                        "ok": False,
                        "error": "session_lost",
                        "session": session_id,
                    }
                if journal:
                    entry = result["replies"].get(session_id)
                    if entry is not None and entry[0] == seq and entry[1] is not None:
                        # The journal replayed this very op on the fresh
                        # worker; its reply is the authoritative answer.
                        return entry[1]
                    return {
                        "ok": False,
                        "error": "worker_unreachable",
                        "worker": link.index,
                        "detail": f"{type(error).__name__}: {error}",
                    }
                # Read-only op: retry once against the recovered placement.
                retry_link = self.workers[placement.worker]
                try:
                    return await retry_link.call(request)
                except Exception as retry_error:
                    return {
                        "ok": False,
                        "error": "worker_unreachable",
                        "worker": retry_link.index,
                        "detail": f"{type(retry_error).__name__}: {retry_error}",
                    }
            if journal:
                error = reply.get("error")
                if error == "backpressure" or (
                    error == "deadline" and not reply.get("started")
                ):
                    # Never enqueued at the worker (backpressure), or
                    # cancelled in its queue before execution began
                    # (deadline with started=false): the client was told
                    # it failed, so a replay must not apply it.
                    # Tombstone, don't rewrite history.  A started
                    # deadline op did execute -- only its reply was
                    # dropped -- so it stays live in the journal.
                    self.durability.mark_skipped(session_id, seq)
                else:
                    self._maybe_checkpoint(session_id, placement)
            return reply

    # -- request dispatch ---------------------------------------------------

    async def dispatch(self, request) -> dict:
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        self.telemetry.requests += 1
        try:
            handler = _ROUTER_OPS.get(op)
            if handler is not None:
                return await handler(self, request)
            return await self._forward_session_op(request)
        except Ops5Error as error:
            self.telemetry.errors += 1
            return {"ok": False, "error": str(error)}
        except Exception as error:  # defensive: keep the router alive
            self.telemetry.errors += 1
            return {"ok": False, "error": f"internal: {type(error).__name__}: {error}"}

    async def _call_worker(self, link: WorkerLink, request: dict) -> dict:
        """Forward to *link*, converting transport failures to replies."""
        generation = link.generation
        try:
            return await link.call(request)
        except Exception as error:
            self.telemetry.errors += 1
            if self.durability is not None:
                # Durable routers recover instead of demoting: fence,
                # respawn, restore -- then answer this caller honestly.
                await self._recover_worker(
                    link, generation, f"{type(error).__name__}: {error}"
                )
            else:
                demoted = self._record_failure(link)
                if demoted:
                    await self._evacuate(link)
            return {
                "ok": False,
                "error": "worker_unreachable",
                "worker": link.index,
                "detail": f"{type(error).__name__}: {error}",
            }

    async def _forward_session_op(self, request: dict) -> dict:
        session_id = request.get("session")
        placement = self.placements.get(session_id)
        if placement is None:
            return {"ok": False, "error": f"no session {session_id!r}"}
        if self.durability is not None:
            return await self._forward_durable(request, session_id, placement)
        if placement.migrating:
            # Well-behaved clients sleep retry_after and re-send; by
            # then the placement points at the new worker.
            self.telemetry.rejected += 1
            return {
                "ok": False,
                "error": "backpressure",
                "retry_after": MIGRATING_RETRY_AFTER,
                "migrating": True,
            }
        return await self._call_worker(self.workers[placement.worker], request)

    # -- server-level ops ----------------------------------------------------

    async def _op_create_session(self, request: dict) -> dict:
        if self._draining:
            raise Ops5Error("router is shutting down")
        tenant = request.get("tenant", DEFAULT_TENANT)
        rejection = self._admit(tenant)
        if rejection is not None:
            return rejection
        name = request.get("name")
        session_id = name if name is not None else f"r{next(self._ids)}"
        if session_id in self.placements:
            return {"ok": False, "error": f"session {session_id!r} already exists"}
        tried: set[int] = set()
        while True:
            healthy = [w for w in self._healthy_workers() if w.index not in tried]
            if not healthy:
                return {"ok": False, "error": "no healthy workers available"}
            link = self._place(session_id)
            if link.index in tried:
                link = healthy[0]
            tried.add(link.index)
            reply = await self._call_worker(
                link, {**request, "name": session_id, "tenant": tenant}
            )
            if reply.get("ok"):
                self.placements[session_id] = _Placement(link.index, tenant)
                if self.durability is not None:
                    config = {
                        key: request[key]
                        for key in (
                            "program",
                            "matcher",
                            "workers",
                            "strategy",
                            "max_pending",
                            "transport",
                        )
                        if request.get(key) is not None
                    }
                    config["tenant"] = tenant
                    self.durability.register(session_id, config)
                return {"ok": True, "session": session_id, "worker": link.index}
            if reply.get("error") != "worker_unreachable":
                return reply

    async def _op_destroy_session(self, request: dict) -> dict:
        session_id = request.get("session")
        placement = self.placements.get(session_id)
        if placement is None:
            return {"ok": False, "error": f"no session {session_id!r}"}
        if self.durability is not None:
            # The placement lock serialises the destroy against both
            # in-flight durable ops and the off-path checkpoint task:
            # without it, a checkpoint that exported before the drop
            # could rewrite <sid>.ckpt.json after it -- and if the name
            # was recreated in that window, recovery would restore the
            # old incarnation's state under the new session's journal.
            async with placement.lock:
                if self.placements.get(session_id) is not placement:
                    return {"ok": False, "error": f"no session {session_id!r}"}
                reply = await self._call_worker(
                    self.workers[placement.worker], request
                )
                if reply.get("error") == "worker_unreachable":
                    # Recovery just restored the session somewhere;
                    # honour the destroy against its new home rather
                    # than leaking a zombie.
                    current = self.placements.get(session_id)
                    if current is not None:
                        reply = await self._call_worker(
                            self.workers[current.worker], request
                        )
                if reply.get("ok") or reply.get("error") == "worker_unreachable":
                    self.placements.pop(session_id, None)
                    self.durability.drop(session_id)
                return reply
        reply = await self._call_worker(
            self.workers[placement.worker], request
        )
        if reply.get("ok") or reply.get("error") == "worker_unreachable":
            self.placements.pop(session_id, None)
        return reply

    async def _op_list_sessions(self, request: dict) -> dict:
        return {"ok": True, "sessions": sorted(self.placements)}

    async def _op_ping(self, request: dict) -> dict:
        return {"ok": True, "pong": request.get("payload")}

    async def _op_shutdown(self, request: dict) -> dict:
        sessions = len(self.placements)
        asyncio.get_running_loop().create_task(
            self.shutdown(stop_workers=bool(request.get("stop_workers", True)))
        )
        return {"ok": True, "draining_sessions": sessions}

    async def _op_migrate_session(self, request: dict) -> dict:
        session_id = request.get("session")
        return await self._migrate(session_id, request.get("to"))

    async def _migrate(
        self, session_id: str, to: Optional[int] = None
    ) -> dict:
        placement = self.placements.get(session_id)
        if placement is None:
            return {"ok": False, "error": f"no session {session_id!r}"}
        if placement.migrating:
            return {"ok": False, "error": f"session {session_id!r} is already migrating"}
        source = self.workers[placement.worker]
        if to is not None:
            if not 0 <= to < len(self.workers):
                return {"ok": False, "error": f"no worker {to}"}
            target = self.workers[to]
        else:
            target = self._least_loaded(exclude=placement.worker)
            if target is None:
                return {"ok": False, "error": "no healthy target worker"}
        placement.migrating = True
        try:
            exported = await self._call_worker(
                source, {"op": "export", "session": session_id}
            )
            if not exported.get("ok"):
                return {
                    "ok": False,
                    "error": exported.get("error", "export failed"),
                    "phase": "export",
                }
            imported = await self._call_worker(
                target,
                {
                    "op": "import_session",
                    "name": session_id,
                    "config": exported["config"],
                    "state": exported["state"],
                },
            )
            if not imported.get("ok"):
                return {
                    "ok": False,
                    "error": imported.get("error", "import failed"),
                    "phase": "import",
                }
            # Source copy is best-effort garbage from here on: the
            # authoritative placement flips to the target either way.
            await self._call_worker(
                source, {"op": "destroy_session", "session": session_id}
            )
            placement.worker = target.index
            self.migrations += 1
            self.events.append(
                {
                    "type": "migrated",
                    "session": session_id,
                    "from": source.index,
                    "to": target.index,
                    "time": time.time(),
                }
            )
            return {
                "ok": True,
                "session": session_id,
                "from": source.index,
                "to": target.index,
            }
        finally:
            placement.migrating = False

    async def _op_rolling_restart(self, request: dict) -> dict:
        """Zero-loss fleet upgrade: per worker, checkpoint its sessions,
        gracefully replace the process, restore from the checkpoints.

        An operator-driven restart consumes no crash budget.  Sessions
        see only a bounded backpressure window, and nothing replays --
        the checkpoint taken under each session lock covers the whole
        journal.
        """
        if self.durability is None or self.supervisor is None:
            return {
                "ok": False,
                "error": "rolling restart requires a durable process fleet",
            }
        rolled = []
        self._rolling = True
        try:
            for link in self.workers:
                stranded = sorted(
                    session_id
                    for session_id, placement in self.placements.items()
                    if placement.worker == link.index
                )
                for session_id in stranded:
                    placement = self.placements.get(session_id)
                    if placement is None or placement.migrating:
                        continue
                    async with placement.lock:
                        try:
                            reply = await link.call(
                                {"op": "export", "session": session_id}
                            )
                            if reply.get("ok"):
                                self.durability.save_checkpoint(
                                    session_id,
                                    placement.seq,
                                    reply["config"],
                                    reply["state"],
                                )
                                placement.ops_since_checkpoint = 0
                        except Exception:
                            pass  # the journal alone still restores it
                        placement.migrating = True
                try:
                    address = await asyncio.get_running_loop().run_in_executor(
                        None, self.supervisor.restart, link.index
                    )
                except Exception as error:
                    for session_id in stranded:
                        placement = self.placements.get(session_id)
                        if placement is not None:
                            placement.migrating = False
                    return {
                        "ok": False,
                        "error": f"restart of worker {link.index} failed: {error}",
                        "rolled": rolled,
                    }
                link.reset(address)
                restored = 0
                for session_id in stranded:
                    outcome = await self._restore_session(
                        session_id, link, event="rolled"
                    )
                    if outcome is None:
                        self._mark_lost(
                            session_id, link.index, "rolling restore failed"
                        )
                    else:
                        restored += 1
                rolled.append(
                    {
                        "worker": link.index,
                        "sessions": len(stranded),
                        "restored": restored,
                    }
                )
        finally:
            self._rolling = False
        self.events.append(
            {"type": "rolling_restart", "workers": rolled, "time": time.time()}
        )
        return {"ok": True, "workers": rolled}

    async def _op_stats(self, request: dict) -> dict:
        """Fleet rollup: router view plus merged worker stats."""
        per_worker = []
        sessions: dict[str, dict] = {}
        totals: dict[str, float] = {}
        for link in self.workers:
            row = link.snapshot()
            if link.healthy:
                reply = await self._call_worker(link, {"op": "stats"})
                if reply.get("ok"):
                    row["server"] = reply.get("server", {})
                    sessions.update(reply.get("sessions", {}))
                    for key, value in (reply.get("totals") or {}).items():
                        if isinstance(value, (int, float)):
                            totals[key] = totals.get(key, 0) + value
            per_worker.append(row)
        for session_id, placement in self.placements.items():
            if session_id in sessions:
                sessions[session_id]["worker"] = placement.worker
        totals["sessions"] = len(self.placements)
        tenants: dict[str, dict] = {}
        for placement in self.placements.values():
            row = tenants.setdefault(
                placement.tenant,
                {
                    "sessions": 0,
                    "quota": self.tenant_quotas.get(
                        placement.tenant, self.default_tenant_quota
                    ),
                    "quota_rejections": 0,
                },
            )
            row["sessions"] += 1
        for tenant, rejected in self._quota_rejections.items():
            row = tenants.setdefault(
                tenant,
                {
                    "sessions": 0,
                    "quota": self.tenant_quotas.get(
                        tenant, self.default_tenant_quota
                    ),
                    "quota_rejections": 0,
                },
            )
            row["quota_rejections"] = rejected
        router = {
            "workers": per_worker,
            "placements": len(self.placements),
            "migrations": self.migrations,
            "lost_sessions": list(self.lost_sessions),
            "recovered_sessions": list(self.recovered_sessions),
            "events": list(self.events),
            "connections": self.connections,
            "requests": self.telemetry.requests,
            "rejected": self.telemetry.rejected,
            "errors": self.telemetry.errors,
            "draining": self._draining,
        }
        if self.durability is not None:
            router["durability"] = self.durability.stats()
        if self.supervisor is not None:
            router["fleet"] = self.supervisor.snapshot()
        return {
            "ok": True,
            "router": router,
            "tenants": tenants,
            "sessions": sessions,
            "totals": totals,
        }


_ROUTER_OPS = {
    "create_session": RuleRouter._op_create_session,
    "destroy_session": RuleRouter._op_destroy_session,
    "list_sessions": RuleRouter._op_list_sessions,
    "migrate_session": RuleRouter._op_migrate_session,
    "rolling_restart": RuleRouter._op_rolling_restart,
    "stats": RuleRouter._op_stats,
    "ping": RuleRouter._op_ping,
    "shutdown": RuleRouter._op_shutdown,
}


class RouterThread:
    """A router on a background thread (tests, benchmarks, fleets)."""

    def __init__(self, **router_kwargs) -> None:
        self._kwargs = router_kwargs
        self._ready = threading.Event()
        self._router: Optional[RuleRouter] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-router", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise RuntimeError("router failed to start") from self._error
        if self._router is None:
            raise RuntimeError("router did not start within 30s")

    def _run(self) -> None:
        async def main() -> None:
            try:
                router = RuleRouter(**self._kwargs)
                await router.start()
            except BaseException as error:
                self._error = error
                self._ready.set()
                return
            self._router = router
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            try:
                await router.serve_until_shutdown()
            finally:
                await router.shutdown()

        asyncio.run(main())

    @property
    def router(self) -> RuleRouter:
        assert self._router is not None
        return self._router

    @property
    def address(self):
        return self.router.address

    def stop(self, timeout: float = 30) -> None:
        loop, router = self._loop, self._router
        if loop is not None and router is not None and loop.is_running():
            asyncio.run_coroutine_threadsafe(router.shutdown(), loop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "RouterThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class RouterFleet:
    """N workers plus a router, each on its own thread, one address.

    The embedded form of the scale-out topology: workers are
    :class:`~repro.serve.server.ServerThread` instances (same protocol
    and code path as standalone worker processes -- the wire is a real
    socket either way), the router a :class:`RouterThread` over their
    addresses.  ``repro serve --workers N`` builds exactly this.
    """

    def __init__(
        self,
        workers: int = 2,
        worker_kwargs: Optional[dict] = None,
        **router_kwargs,
    ) -> None:
        from .server import ServerThread

        if workers < 1:
            raise Ops5Error("a fleet needs at least one worker")
        self.workers: list = []
        self.router_thread: Optional[RouterThread] = None
        try:
            for _ in range(workers):
                self.workers.append(ServerThread(**(worker_kwargs or {})))
            self.router_thread = RouterThread(
                worker_addresses=[w.address for w in self.workers],
                **router_kwargs,
            )
        except BaseException:
            self.stop()
            raise

    @property
    def address(self):
        assert self.router_thread is not None
        return self.router_thread.address

    @property
    def router(self) -> RuleRouter:
        assert self.router_thread is not None
        return self.router_thread.router

    def stop(self, timeout: float = 30) -> None:
        if self.router_thread is not None:
            self.router_thread.stop(timeout=timeout)
            self.router_thread = None
        while self.workers:
            self.workers.pop().stop(timeout=timeout)

    def __enter__(self) -> "RouterFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
