"""The front-door router: one address, N rule-server workers behind it.

Scaling the serve layer *out* (ROADMAP item 3): a :class:`RuleRouter`
speaks the same length-prefixed JSON protocol as a
:class:`~repro.serve.server.RuleServer`, so existing clients (the
blocking :class:`RuleClient`, the load generator) point at it unchanged
-- but behind it every session lives on one of N workers, each its own
server process/thread with its own event loop, session threads, and
shared-kernel registry.

Placement and naming
--------------------
The router owns session naming: client-supplied names are honoured
(rejected on collision), otherwise the router mints globally-unique
``r<n>`` ids.  A new session lands on the worker chosen by a stable
hash of its id over the *healthy* workers, so placement is deterministic
for a given fleet shape and needs no coordination.  The placement map
(session -> worker) is the router's only authoritative state; everything
else re-derives from worker stats.

Admission control
-----------------
Per-tenant quotas are enforced fleet-wide at the router (the
authoritative count lives in the placement map) *before* a create is
forwarded; workers enforce their own local quotas independently.  A
rejected create answers ``error: "quota"`` -- not backpressure, because
retrying cannot help until the tenant frees a session.

Migration
---------
``migrate_session`` moves a live session between workers using the
engine's checkpoint machinery: the router marks the session *migrating*
(in-flight requests for it are answered with a backpressure rejection
carrying a small ``retry_after``, so well-behaved clients retry
transparently through :meth:`RuleClient.call`), drives the session's
``export`` op on the source (ordered through its queue, so everything
acknowledged is in the blob), replays it into an ``import_session`` on
the target, destroys the source copy, and flips the placement.  The
continuation is bit-identical -- the same property the parallel
supervisor's checkpoint+journal restore proves per shard.

Degraded workers
----------------
Every worker call failure counts; ``failure_threshold`` consecutive
failures demote the worker (mirroring the parallel supervisor's
shard-demotion policy): it stops receiving new sessions, a structured
event is recorded, and the router attempts to evacuate its sessions to
healthy workers via the migration path.  Evacuation is best-effort --
a worker that died (rather than slowed) cannot export, and those
sessions are reported lost in the router's stats rather than silently
forgotten.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
import zlib
from collections import deque
from typing import Optional, Sequence

from ..ops5 import Ops5Error
from .protocol import ProtocolError, read_message, write_message
from .session import DEFAULT_TENANT
from .stats import Telemetry

__all__ = ["RouterFleet", "RouterThread", "RuleRouter", "WorkerLink"]

#: Consecutive call failures before a worker is demoted.
DEFAULT_FAILURE_THRESHOLD = 3

#: Retry hint handed to clients whose session is mid-migration.
MIGRATING_RETRY_AFTER = 0.05


class WorkerLink:
    """The router's connection pool to one worker.

    The wire protocol is strict request/reply per connection, so each
    in-flight call owns one pooled connection; up to *pool_size*
    connections are opened lazily.  A transport failure tears the
    connection down (the next call reconnects) and counts toward the
    worker's consecutive-failure streak; any success resets the streak.
    """

    def __init__(self, address, index: int, pool_size: int = 4) -> None:
        self.address = address
        self.index = index
        self.pool_size = pool_size
        self.healthy = True
        self.calls = 0
        self.failures = 0
        self.consecutive_failures = 0
        self._open = 0
        self._pool: asyncio.Queue = asyncio.Queue()

    async def _connect(self):
        if isinstance(self.address, str):
            return await asyncio.open_unix_connection(self.address)
        host, port = self.address
        return await asyncio.open_connection(host, port)

    async def _acquire(self):
        if not self._pool.empty():
            return self._pool.get_nowait()
        if self._open < self.pool_size:
            self._open += 1
            try:
                return await self._connect()
            except Exception:
                self._open -= 1
                raise
        return await self._pool.get()

    def _release(self, conn) -> None:
        self._pool.put_nowait(conn)

    def _discard(self, conn) -> None:
        self._open -= 1
        reader, writer = conn
        writer.close()

    async def call(self, request: dict, timeout: float = 60.0) -> dict:
        """One request/reply round trip on a pooled connection."""
        try:
            conn = await self._acquire()
        except Exception:
            self.failures += 1
            self.consecutive_failures += 1
            raise
        reader, writer = conn
        try:
            await write_message(writer, request)
            reply = await asyncio.wait_for(read_message(reader), timeout)
            if reply is None:
                raise ProtocolError(f"worker {self.index} closed the connection")
        except Exception:
            self._discard(conn)
            self.failures += 1
            self.consecutive_failures += 1
            raise
        self._release(conn)
        self.calls += 1
        self.consecutive_failures = 0
        return reply

    def close(self) -> None:
        while not self._pool.empty():
            _, writer = self._pool.get_nowait()
            writer.close()

    def snapshot(self) -> dict:
        return {
            "index": self.index,
            "address": list(self.address)
            if isinstance(self.address, tuple)
            else self.address,
            "healthy": self.healthy,
            "calls": self.calls,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "pool_connections": self._open,
        }


class _Placement:
    __slots__ = ("worker", "tenant", "migrating")

    def __init__(self, worker: int, tenant: str) -> None:
        self.worker = worker
        self.tenant = tenant
        self.migrating = False


class RuleRouter:
    """The protocol-compatible front door over a fleet of workers."""

    def __init__(
        self,
        worker_addresses: Sequence,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        tenant_quotas: Optional[dict] = None,
        default_tenant_quota: Optional[int] = None,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
    ) -> None:
        if not worker_addresses:
            raise Ops5Error("a router needs at least one worker address")
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.workers = [
            WorkerLink(address, index)
            for index, address in enumerate(worker_addresses)
        ]
        self.tenant_quotas = dict(tenant_quotas or {})
        self.default_tenant_quota = default_tenant_quota
        self.failure_threshold = failure_threshold
        self.telemetry = Telemetry()
        self.placements: dict[str, _Placement] = {}
        self.migrations = 0
        self.lost_sessions: list[str] = []
        self.events: deque[dict] = deque(maxlen=128)
        self._quota_rejections: dict[str, int] = {}
        self._ids = itertools.count(1)
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self.connections = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._stopped = asyncio.Event()
        if self.unix_path:
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.host, port=self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self):
        return self.unix_path if self.unix_path else (self.host, self.port)

    async def serve_until_shutdown(self) -> None:
        assert self._stopped is not None, "start() must run first"
        await self._stopped.wait()

    async def shutdown(self, stop_workers: bool = False) -> None:
        """Stop accepting; optionally forward shutdown to every worker."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if stop_workers:
            for link in self.workers:
                try:
                    await link.call({"op": "shutdown"}, timeout=10.0)
                except Exception:
                    pass
        for link in self.workers:
            link.close()
        if self._stopped is not None:
            self._stopped.set()

    # -- connection handling ----------------------------------------------

    async def _handle(self, reader, writer) -> None:
        self.connections += 1
        try:
            while True:
                try:
                    request = await read_message(reader)
                except ProtocolError as error:
                    await write_message(
                        writer, {"ok": False, "error": f"protocol: {error}"}
                    )
                    break
                if request is None:
                    break
                reply = await self.dispatch(request)
                await write_message(writer, reply)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- placement ---------------------------------------------------------

    def _healthy_workers(self) -> list[WorkerLink]:
        return [link for link in self.workers if link.healthy]

    def _place(self, session_id: str) -> WorkerLink:
        """Stable-hash *session_id* over the healthy workers."""
        healthy = self._healthy_workers()
        if not healthy:
            raise Ops5Error("no healthy workers available")
        digest = zlib.crc32(session_id.encode())
        return healthy[digest % len(healthy)]

    def _least_loaded(self, exclude: int) -> Optional[WorkerLink]:
        loads: dict[int, int] = {}
        for placement in self.placements.values():
            loads[placement.worker] = loads.get(placement.worker, 0) + 1
        candidates = [
            link for link in self._healthy_workers() if link.index != exclude
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda link: loads.get(link.index, 0))

    def tenant_sessions(self, tenant: str) -> int:
        return sum(1 for p in self.placements.values() if p.tenant == tenant)

    def _admit(self, tenant: str) -> Optional[dict]:
        quota = self.tenant_quotas.get(tenant, self.default_tenant_quota)
        if quota is not None and self.tenant_sessions(tenant) >= quota:
            self._quota_rejections[tenant] = (
                self._quota_rejections.get(tenant, 0) + 1
            )
            return {
                "ok": False,
                "error": "quota",
                "detail": (
                    f"tenant {tenant!r} is at its fleet-wide quota of "
                    f"{quota} concurrent session(s)"
                ),
            }
        return None

    def _record_failure(self, link: WorkerLink) -> bool:
        """Account a worker failure; demote at the threshold."""
        if link.healthy and link.consecutive_failures >= self.failure_threshold:
            link.healthy = False
            self.events.append(
                {
                    "type": "demoted",
                    "worker": link.index,
                    "consecutive_failures": link.consecutive_failures,
                    "time": time.time(),
                }
            )
            return True
        return False

    async def _evacuate(self, link: WorkerLink) -> None:
        """Best-effort migration of a demoted worker's sessions."""
        stranded = [
            session_id
            for session_id, placement in self.placements.items()
            if placement.worker == link.index
        ]
        for session_id in stranded:
            reply = await self._migrate(session_id)
            if not reply.get("ok"):
                self.lost_sessions.append(session_id)
                del self.placements[session_id]
                self.events.append(
                    {
                        "type": "lost",
                        "session": session_id,
                        "worker": link.index,
                        "error": reply.get("error"),
                        "time": time.time(),
                    }
                )

    # -- request dispatch ---------------------------------------------------

    async def dispatch(self, request) -> dict:
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        self.telemetry.requests += 1
        try:
            handler = _ROUTER_OPS.get(op)
            if handler is not None:
                return await handler(self, request)
            return await self._forward_session_op(request)
        except Ops5Error as error:
            self.telemetry.errors += 1
            return {"ok": False, "error": str(error)}
        except Exception as error:  # defensive: keep the router alive
            self.telemetry.errors += 1
            return {"ok": False, "error": f"internal: {type(error).__name__}: {error}"}

    async def _call_worker(self, link: WorkerLink, request: dict) -> dict:
        """Forward to *link*, converting transport failures to replies."""
        try:
            return await link.call(request)
        except Exception as error:
            demoted = self._record_failure(link)
            if demoted:
                await self._evacuate(link)
            self.telemetry.errors += 1
            return {
                "ok": False,
                "error": "worker_unreachable",
                "worker": link.index,
                "detail": f"{type(error).__name__}: {error}",
            }

    async def _forward_session_op(self, request: dict) -> dict:
        session_id = request.get("session")
        placement = self.placements.get(session_id)
        if placement is None:
            return {"ok": False, "error": f"no session {session_id!r}"}
        if placement.migrating:
            # Well-behaved clients sleep retry_after and re-send; by
            # then the placement points at the new worker.
            self.telemetry.rejected += 1
            return {
                "ok": False,
                "error": "backpressure",
                "retry_after": MIGRATING_RETRY_AFTER,
                "migrating": True,
            }
        return await self._call_worker(self.workers[placement.worker], request)

    # -- server-level ops ----------------------------------------------------

    async def _op_create_session(self, request: dict) -> dict:
        if self._draining:
            raise Ops5Error("router is shutting down")
        tenant = request.get("tenant", DEFAULT_TENANT)
        rejection = self._admit(tenant)
        if rejection is not None:
            return rejection
        name = request.get("name")
        session_id = name if name is not None else f"r{next(self._ids)}"
        if session_id in self.placements:
            return {"ok": False, "error": f"session {session_id!r} already exists"}
        tried: set[int] = set()
        while True:
            healthy = [w for w in self._healthy_workers() if w.index not in tried]
            if not healthy:
                return {"ok": False, "error": "no healthy workers available"}
            link = self._place(session_id)
            if link.index in tried:
                link = healthy[0]
            tried.add(link.index)
            reply = await self._call_worker(
                link, {**request, "name": session_id, "tenant": tenant}
            )
            if reply.get("ok"):
                self.placements[session_id] = _Placement(link.index, tenant)
                return {"ok": True, "session": session_id, "worker": link.index}
            if reply.get("error") != "worker_unreachable":
                return reply

    async def _op_destroy_session(self, request: dict) -> dict:
        session_id = request.get("session")
        placement = self.placements.get(session_id)
        if placement is None:
            return {"ok": False, "error": f"no session {session_id!r}"}
        reply = await self._call_worker(
            self.workers[placement.worker], request
        )
        if reply.get("ok") or reply.get("error") == "worker_unreachable":
            self.placements.pop(session_id, None)
        return reply

    async def _op_list_sessions(self, request: dict) -> dict:
        return {"ok": True, "sessions": sorted(self.placements)}

    async def _op_ping(self, request: dict) -> dict:
        return {"ok": True, "pong": request.get("payload")}

    async def _op_shutdown(self, request: dict) -> dict:
        sessions = len(self.placements)
        asyncio.get_running_loop().create_task(
            self.shutdown(stop_workers=bool(request.get("stop_workers", True)))
        )
        return {"ok": True, "draining_sessions": sessions}

    async def _op_migrate_session(self, request: dict) -> dict:
        session_id = request.get("session")
        return await self._migrate(session_id, request.get("to"))

    async def _migrate(
        self, session_id: str, to: Optional[int] = None
    ) -> dict:
        placement = self.placements.get(session_id)
        if placement is None:
            return {"ok": False, "error": f"no session {session_id!r}"}
        if placement.migrating:
            return {"ok": False, "error": f"session {session_id!r} is already migrating"}
        source = self.workers[placement.worker]
        if to is not None:
            if not 0 <= to < len(self.workers):
                return {"ok": False, "error": f"no worker {to}"}
            target = self.workers[to]
        else:
            target = self._least_loaded(exclude=placement.worker)
            if target is None:
                return {"ok": False, "error": "no healthy target worker"}
        placement.migrating = True
        try:
            exported = await self._call_worker(
                source, {"op": "export", "session": session_id}
            )
            if not exported.get("ok"):
                return {
                    "ok": False,
                    "error": exported.get("error", "export failed"),
                    "phase": "export",
                }
            imported = await self._call_worker(
                target,
                {
                    "op": "import_session",
                    "name": session_id,
                    "config": exported["config"],
                    "state": exported["state"],
                },
            )
            if not imported.get("ok"):
                return {
                    "ok": False,
                    "error": imported.get("error", "import failed"),
                    "phase": "import",
                }
            # Source copy is best-effort garbage from here on: the
            # authoritative placement flips to the target either way.
            await self._call_worker(
                source, {"op": "destroy_session", "session": session_id}
            )
            placement.worker = target.index
            self.migrations += 1
            self.events.append(
                {
                    "type": "migrated",
                    "session": session_id,
                    "from": source.index,
                    "to": target.index,
                    "time": time.time(),
                }
            )
            return {
                "ok": True,
                "session": session_id,
                "from": source.index,
                "to": target.index,
            }
        finally:
            placement.migrating = False

    async def _op_stats(self, request: dict) -> dict:
        """Fleet rollup: router view plus merged worker stats."""
        per_worker = []
        sessions: dict[str, dict] = {}
        totals: dict[str, float] = {}
        for link in self.workers:
            row = link.snapshot()
            if link.healthy:
                reply = await self._call_worker(link, {"op": "stats"})
                if reply.get("ok"):
                    row["server"] = reply.get("server", {})
                    sessions.update(reply.get("sessions", {}))
                    for key, value in (reply.get("totals") or {}).items():
                        if isinstance(value, (int, float)):
                            totals[key] = totals.get(key, 0) + value
            per_worker.append(row)
        for session_id, placement in self.placements.items():
            if session_id in sessions:
                sessions[session_id]["worker"] = placement.worker
        totals["sessions"] = len(self.placements)
        tenants: dict[str, dict] = {}
        for placement in self.placements.values():
            row = tenants.setdefault(
                placement.tenant,
                {
                    "sessions": 0,
                    "quota": self.tenant_quotas.get(
                        placement.tenant, self.default_tenant_quota
                    ),
                    "quota_rejections": 0,
                },
            )
            row["sessions"] += 1
        for tenant, rejected in self._quota_rejections.items():
            row = tenants.setdefault(
                tenant,
                {
                    "sessions": 0,
                    "quota": self.tenant_quotas.get(
                        tenant, self.default_tenant_quota
                    ),
                    "quota_rejections": 0,
                },
            )
            row["quota_rejections"] = rejected
        return {
            "ok": True,
            "router": {
                "workers": per_worker,
                "placements": len(self.placements),
                "migrations": self.migrations,
                "lost_sessions": list(self.lost_sessions),
                "events": list(self.events),
                "connections": self.connections,
                "requests": self.telemetry.requests,
                "rejected": self.telemetry.rejected,
                "errors": self.telemetry.errors,
                "draining": self._draining,
            },
            "tenants": tenants,
            "sessions": sessions,
            "totals": totals,
        }


_ROUTER_OPS = {
    "create_session": RuleRouter._op_create_session,
    "destroy_session": RuleRouter._op_destroy_session,
    "list_sessions": RuleRouter._op_list_sessions,
    "migrate_session": RuleRouter._op_migrate_session,
    "stats": RuleRouter._op_stats,
    "ping": RuleRouter._op_ping,
    "shutdown": RuleRouter._op_shutdown,
}


class RouterThread:
    """A router on a background thread (tests, benchmarks, fleets)."""

    def __init__(self, **router_kwargs) -> None:
        self._kwargs = router_kwargs
        self._ready = threading.Event()
        self._router: Optional[RuleRouter] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-router", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise RuntimeError("router failed to start") from self._error
        if self._router is None:
            raise RuntimeError("router did not start within 30s")

    def _run(self) -> None:
        async def main() -> None:
            try:
                router = RuleRouter(**self._kwargs)
                await router.start()
            except BaseException as error:
                self._error = error
                self._ready.set()
                return
            self._router = router
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            try:
                await router.serve_until_shutdown()
            finally:
                await router.shutdown()

        asyncio.run(main())

    @property
    def router(self) -> RuleRouter:
        assert self._router is not None
        return self._router

    @property
    def address(self):
        return self.router.address

    def stop(self, timeout: float = 30) -> None:
        loop, router = self._loop, self._router
        if loop is not None and router is not None and loop.is_running():
            asyncio.run_coroutine_threadsafe(router.shutdown(), loop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "RouterThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class RouterFleet:
    """N workers plus a router, each on its own thread, one address.

    The embedded form of the scale-out topology: workers are
    :class:`~repro.serve.server.ServerThread` instances (same protocol
    and code path as standalone worker processes -- the wire is a real
    socket either way), the router a :class:`RouterThread` over their
    addresses.  ``repro serve --workers N`` builds exactly this.
    """

    def __init__(
        self,
        workers: int = 2,
        worker_kwargs: Optional[dict] = None,
        **router_kwargs,
    ) -> None:
        from .server import ServerThread

        if workers < 1:
            raise Ops5Error("a fleet needs at least one worker")
        self.workers: list = []
        self.router_thread: Optional[RouterThread] = None
        try:
            for _ in range(workers):
                self.workers.append(ServerThread(**(worker_kwargs or {})))
            self.router_thread = RouterThread(
                worker_addresses=[w.address for w in self.workers],
                **router_kwargs,
            )
        except BaseException:
            self.stop()
            raise

    @property
    def address(self):
        assert self.router_thread is not None
        return self.router_thread.address

    @property
    def router(self) -> RuleRouter:
        assert self.router_thread is not None
        return self.router_thread.router

    def stop(self, timeout: float = 30) -> None:
        if self.router_thread is not None:
            self.router_thread.stop(timeout=timeout)
            self.router_thread = None
        while self.workers:
            self.workers.pop().stop(timeout=timeout)

    def __enter__(self) -> "RouterFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
