"""Process supervision: real OS worker processes behind the router.

ROADMAP item 3 closed with the follow-on "the router already speaks
sockets; spawn workers as real processes" -- this module is that step.
A :class:`WorkerProcess` launches one ``python -m repro serve`` worker
as a child process on an ephemeral port and parses its announce line; a
:class:`ProcessFleet` owns N of them with fencing (SIGKILL before the
replacement binds, so a wedged-but-alive worker can never answer beside
its successor), exponential restart backoff, and a per-worker restart
budget; :class:`ProcessRouterFleet` wires the fleet to a durable
:class:`~repro.serve.router.RuleRouter` so a SIGKILLed worker's
sessions come back from checkpoint + journal tail on the respawned
process (docs/fault-tolerance.md).

Supervision mirrors the parallel executor's shard supervisor one layer
up: heartbeat/liveness detection, fence, respawn with backoff, restore,
and a structured event trail -- but the unit is a whole rule-server
process with its own event loop and session threads, not a shard.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import Optional

from ..ops5 import Ops5Error

__all__ = ["ProcessFleet", "ProcessRouterFleet", "WorkerProcess"]

#: Seconds a fresh worker process gets to bind its socket and announce.
SPAWN_TIMEOUT = 30.0

#: Restart backoff: base * 2**restarts, capped.
DEFAULT_RESTART_BACKOFF = 0.2
DEFAULT_RESTART_BACKOFF_MAX = 5.0

#: Respawns per worker slot before the supervisor gives up on it.
DEFAULT_MAX_RESTARTS = 5


def _worker_environment() -> dict:
    """The child's env: this interpreter's ``repro`` must be importable."""
    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else f"{package_root}{os.pathsep}{existing}"
    )
    return env


class WorkerProcess:
    """One rule-server worker as a child OS process.

    The worker is the unmodified ``repro serve`` CLI entry point bound
    to an ephemeral port; its one-line announce (``serving on
    host:port``) is parsed from stdout, after which a drain thread keeps
    the pipe from filling.  SIGKILL-ing the process loses every session
    it hosts -- which is exactly the failure the durability layer exists
    to undo.
    """

    def __init__(
        self,
        max_pending: Optional[int] = None,
        default_tenant_quota: Optional[int] = None,
        spawn_timeout: float = SPAWN_TIMEOUT,
    ) -> None:
        command = [sys.executable, "-u", "-m", "repro", "serve", "--port", "0"]
        if max_pending is not None:
            command += ["--max-pending", str(max_pending)]
        if default_tenant_quota is not None:
            command += ["--tenant-quota", str(default_tenant_quota)]
        self.command = command
        self.process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=_worker_environment(),
            text=True,
        )
        self.address = self._await_announce(spawn_timeout)
        self._drain = threading.Thread(target=self._drain_stdout, daemon=True)
        self._drain.start()

    def _await_announce(self, timeout: float) -> tuple:
        """Parse ``serving on host:port`` from the child's stdout."""
        deadline = time.monotonic() + timeout
        result: dict = {}

        def read() -> None:
            line = self.process.stdout.readline()
            result["line"] = line

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        reader.join(timeout=max(0.0, deadline - time.monotonic()))
        line = result.get("line", "")
        if reader.is_alive() or not line.startswith("serving on "):
            self.kill()
            raise Ops5Error(
                f"worker process did not announce within {timeout}s "
                f"(got {line!r})"
            )
        host, _, port = line[len("serving on "):].strip().rpartition(":")
        try:
            return (host, int(port))
        except ValueError:
            self.kill()
            raise Ops5Error(f"unparseable worker announce {line!r}") from None

    def _drain_stdout(self) -> None:
        try:
            for _ in self.process.stdout:
                pass
        except ValueError:  # pipe closed during kill
            pass

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL -- the fence, and the chaos harness's weapon."""
        if self.alive:
            try:
                self.process.kill()
            except OSError:
                pass
        self.process.wait()

    def terminate(self, timeout: float = 5.0) -> None:
        """Polite stop (SIGTERM), escalating to SIGKILL on timeout."""
        if self.alive:
            try:
                self.process.terminate()
            except OSError:
                pass
            try:
                self.process.wait(timeout=timeout)
                return
            except subprocess.TimeoutExpired:
                pass
        self.kill()


class ProcessFleet:
    """N worker processes with fencing, backoff, and restart budgets."""

    def __init__(
        self,
        workers: int = 2,
        max_pending: Optional[int] = None,
        default_tenant_quota: Optional[int] = None,
        restart_backoff: float = DEFAULT_RESTART_BACKOFF,
        restart_backoff_max: float = DEFAULT_RESTART_BACKOFF_MAX,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
    ) -> None:
        if workers < 1:
            raise Ops5Error("a process fleet needs at least one worker")
        self.max_pending = max_pending
        self.default_tenant_quota = default_tenant_quota
        self.restart_backoff = restart_backoff
        self.restart_backoff_max = restart_backoff_max
        self.max_restarts = max_restarts
        self.restarts: list[int] = [0] * workers
        self.events: list[dict] = []
        #: Guards shared state (processes/restarts/events) -- held only
        #: for brief reads/writes, never across a sleep or a spawn, so
        #: snapshot() cannot stall behind a multi-second respawn.
        self._lock = threading.Lock()
        #: Per-slot spawn serialisation: concurrent respawn/restart of
        #: the same worker index must not race each other.
        self._slot_locks = [threading.Lock() for _ in range(workers)]
        self.processes: list[Optional[WorkerProcess]] = []
        try:
            for _ in range(workers):
                self.processes.append(self._spawn())
        except BaseException:
            self.stop()
            raise

    def _spawn(self) -> WorkerProcess:
        return WorkerProcess(
            max_pending=self.max_pending,
            default_tenant_quota=self.default_tenant_quota,
        )

    @property
    def addresses(self) -> list:
        return [
            process.address if process is not None else None
            for process in self.processes
        ]

    def pid(self, index: int) -> Optional[int]:
        process = self.processes[index]
        return process.pid if process is not None else None

    def alive(self, index: int) -> bool:
        process = self.processes[index]
        return process is not None and process.alive

    def fence(self, index: int) -> None:
        """Guarantee the old incarnation is dead before its successor
        binds: a wedged-but-alive worker answering beside the respawn
        would fork the session history."""
        process = self.processes[index]
        if process is not None:
            process.kill()

    def kill(self, index: int) -> None:
        """SIGKILL worker *index* (the chaos harness entry point)."""
        self.fence(index)

    def respawn(self, index: int) -> Optional[tuple]:
        """Fence, back off, and relaunch worker *index*.

        Returns the new address, or None once the slot's restart budget
        is exhausted (the router then restores its sessions onto the
        surviving workers instead).  Thread-safe: the router calls this
        from an executor thread while its loop keeps serving.  The
        backoff sleep and the spawn happen under the slot's own lock
        only -- the fleet-wide lock is never held across them, so
        ``snapshot()`` (and with it the router's ``stats`` op) stays
        responsive during recovery.
        """
        with self._slot_locks[index]:
            self.fence(index)
            with self._lock:
                if self.restarts[index] >= self.max_restarts:
                    self.processes[index] = None
                    self.events.append(
                        {
                            "type": "restart_budget_exhausted",
                            "worker": index,
                            "restarts": self.restarts[index],
                            "time": time.time(),
                        }
                    )
                    return None
                backoff = min(
                    self.restart_backoff * (2 ** self.restarts[index]),
                    self.restart_backoff_max,
                )
                self.restarts[index] += 1
                restarts = self.restarts[index]
            time.sleep(backoff)
            process = self._spawn()
            with self._lock:
                self.processes[index] = process
                self.events.append(
                    {
                        "type": "respawned",
                        "worker": index,
                        "pid": process.pid,
                        "backoff": backoff,
                        "restarts": restarts,
                        "time": time.time(),
                    }
                )
            return process.address

    def restart(self, index: int) -> tuple:
        """Graceful replacement (rolling restarts): terminate, relaunch.

        Unlike :meth:`respawn` this does not consume the crash-restart
        budget -- an operator-requested restart is not a failure.
        """
        with self._slot_locks[index]:
            process = self.processes[index]
            if process is not None:
                process.terminate()
            process = self._spawn()
            with self._lock:
                self.processes[index] = process
                self.events.append(
                    {
                        "type": "restarted",
                        "worker": index,
                        "pid": process.pid,
                        "time": time.time(),
                    }
                )
            return process.address

    def stop(self) -> None:
        for process in self.processes:
            if process is not None:
                process.terminate()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "workers": len(self.processes),
                "alive": [self.alive(i) for i in range(len(self.processes))],
                "pids": [self.pid(i) for i in range(len(self.processes))],
                "restarts": list(self.restarts),
                "max_restarts": self.max_restarts,
                "events": list(self.events),
            }

    def __enter__(self) -> "ProcessFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class ProcessRouterFleet:
    """The durable scale-out topology: real worker processes, a durable
    router, and the supervisor wiring between them.

    ``repro serve --workers N --processes`` builds exactly this.  Every
    placed session survives ``kill -9`` of its worker: accepted ops are
    journaled by the router before the reply leaves, checkpoints bound
    the replay tail, and the heartbeat loop (or the first failed call)
    triggers fence -> respawn -> restore.
    """

    def __init__(
        self,
        workers: int = 2,
        durability_dir: Optional[str] = None,
        checkpoint_every: int = 16,
        heartbeat_interval: Optional[float] = 0.5,
        max_pending: Optional[int] = None,
        restart_backoff: float = DEFAULT_RESTART_BACKOFF,
        restart_backoff_max: float = DEFAULT_RESTART_BACKOFF_MAX,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
        fsync: bool = False,
        commit_window: float = 0.0,
        **router_kwargs,
    ) -> None:
        from .durability import DurabilityStore
        from .router import RouterThread

        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if durability_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-fleet-")
            durability_dir = self._tmpdir.name
        self.durability = DurabilityStore(
            durability_dir, fsync=fsync, commit_window=commit_window
        )
        self.fleet: Optional[ProcessFleet] = None
        self.router_thread = None
        try:
            self.fleet = ProcessFleet(
                workers=workers,
                max_pending=max_pending,
                restart_backoff=restart_backoff,
                restart_backoff_max=restart_backoff_max,
                max_restarts=max_restarts,
            )
            self.router_thread = RouterThread(
                worker_addresses=self.fleet.addresses,
                durability=self.durability,
                supervisor=self.fleet,
                checkpoint_every=checkpoint_every,
                heartbeat_interval=heartbeat_interval,
                **router_kwargs,
            )
        except BaseException:
            self.stop()
            raise

    @property
    def address(self):
        assert self.router_thread is not None
        return self.router_thread.address

    @property
    def router(self):
        assert self.router_thread is not None
        return self.router_thread.router

    def worker_pid(self, index: int) -> Optional[int]:
        assert self.fleet is not None
        return self.fleet.pid(index)

    def kill_worker(self, index: int) -> None:
        """SIGKILL a live worker process (chaos tests drive this)."""
        assert self.fleet is not None
        pid = self.fleet.pid(index)
        if pid is not None:
            os.kill(pid, signal.SIGKILL)

    def stop(self, timeout: float = 30) -> None:
        if self.router_thread is not None:
            self.router_thread.stop(timeout=timeout)
            self.router_thread = None
        if self.fleet is not None:
            self.fleet.stop()
            self.fleet = None
        self.durability.close()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "ProcessRouterFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
