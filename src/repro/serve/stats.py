"""Serving-side telemetry: counters, latency percentiles, throughput.

The paper reports *sustained* execution speed -- wme-changes/sec and
firings/sec over a whole run (Section 6, Figure 6-2) -- so the serving
layer keeps exactly those totals, per session and server-wide, plus the
request-latency distribution a service operator actually watches
(p50/p95/p99 over a sliding window of recent requests).

Everything here is plain synchronous bookkeeping; the event loop and
the session worker threads both touch it only under the single-writer
discipline the session queue enforces, so no locking is needed beyond
CPython's atomic attribute updates.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass, field


class LatencyWindow:
    """Percentiles over the most recent *capacity* request latencies.

    A bounded window rather than a full history: a long-running server
    must report *current* tail latency, and an unbounded list would both
    leak and average away regressions.  With the default capacity the
    p99 still rests on ~20 samples.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._samples: deque[float] = deque(maxlen=capacity)
        self.count = 0  # lifetime samples, beyond the window

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1

    def percentile(self, p: float) -> float:
        """The *p*-th percentile (0..100) of the window; 0.0 when empty.

        Nearest-rank (``ceil(p/100 * n)``, 1-based) on the sorted
        window -- monotone in *p* and exact at the sample points, which
        is all a service dashboard needs.  ``round()`` is *not* a
        substitute: Python rounds half to even, so e.g. p50 of five
        samples would land on index 1 instead of the true median.
        """
        if not self._samples:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self._samples)
        if p == 0:
            return ordered[0]
        rank = min(len(ordered) - 1, math.ceil(p / 100 * len(ordered)) - 1)
        return ordered[rank]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)


@dataclass
class Telemetry:
    """Counters + latency window for one session (or the whole server)."""

    #: Requests that reached execution (backpressure rejections excluded).
    requests: int = 0
    #: Requests answered with an error reply.
    errors: int = 0
    #: Requests rejected with backpressure (never enqueued).
    rejected: int = 0
    #: Requests whose caller-supplied deadline expired before the reply.
    deadline_exceeded: int = 0
    #: WME changes processed: ingested batches plus changes made by
    #: production firings (the paper's wme-changes metric).
    wme_changes: int = 0
    #: Production firings executed by run requests.
    firings: int = 0
    latency: LatencyWindow = field(default_factory=LatencyWindow)
    started: float = field(default_factory=time.monotonic)

    @property
    def uptime(self) -> float:
        return time.monotonic() - self.started

    @property
    def wme_changes_per_second(self) -> float:
        """Sustained ingestion+firing change rate since start."""
        elapsed = self.uptime
        return self.wme_changes / elapsed if elapsed else 0.0

    @property
    def firings_per_second(self) -> float:
        elapsed = self.uptime
        return self.firings / elapsed if elapsed else 0.0

    def absorb(self, other: "Telemetry") -> None:
        """Fold *other*'s counters into this one (server-wide rollup)."""
        self.requests += other.requests
        self.errors += other.errors
        self.rejected += other.rejected
        self.deadline_exceeded += other.deadline_exceeded
        self.wme_changes += other.wme_changes
        self.firings += other.firings

    def snapshot(self) -> dict:
        """A JSON-ready view (the payload of a ``stats`` reply)."""
        return {
            "requests": self.requests,
            "errors": self.errors,
            "rejected": self.rejected,
            "deadline_exceeded": self.deadline_exceeded,
            "wme_changes": self.wme_changes,
            "firings": self.firings,
            "uptime_seconds": self.uptime,
            "wme_changes_per_second": self.wme_changes_per_second,
            "firings_per_second": self.firings_per_second,
            "latency": {
                "samples": self.latency.count,
                "p50": self.latency.p50,
                "p95": self.latency.p95,
                "p99": self.latency.p99,
            },
        }
