"""The rule server: an asyncio front-end over the session manager.

One :class:`RuleServer` listens on a local TCP port (or a unix-domain
socket), speaks the length-prefixed JSON protocol of
:mod:`repro.serve.protocol`, and multiplexes any number of client
connections onto any number of engine sessions.  The event loop only
routes: all engine work happens on per-session worker threads (and, for
``matcher="parallel"`` sessions, in that matcher's worker processes),
so the loop stays free to answer pings, report stats, and -- crucially
-- reject requests with backpressure while a session is busy.

Server-level operations (handled inline on the loop)::

    {"op": "create_session", "program": ..., "matcher": ..., "workers": ...,
     "strategy": ..., "max_pending": ..., "name": ..., "transport": ...,
     "tenant": ...}
    {"op": "import_session", "config": {...}, "state": {...}, "name": ...}
    {"op": "destroy_session", "session": id}
    {"op": "list_sessions"}
    {"op": "stats"}                      # server-wide rollup
    {"op": "ping"}
    {"op": "shutdown"}                   # graceful drain, then exit

Session operations (queued, executed in order on the session thread)::

    {"op": "assert", "session": id, "wmes": [[cls, {attrs}], ...],
     "run": bool?, "max_cycles": n?}
    {"op": "retract", "session": id, "timetags": [...]}
    {"op": "modify", "session": id, "changes": [[timetag, {updates}], ...]}
    {"op": "apply", "session": id, "changes": [[kind, ...], ...]}
    {"op": "run", "session": id, "max_cycles": n?}
    {"op": "query", "session": id, "what": "wm" | "conflict-set" | "stats"}
    {"op": "export", "session": id}      # migration payload

Every reply carries ``ok``; failures add ``error`` (backpressure
rejections add ``retry_after`` + ``queue_depth``; tenant-quota
rejections answer ``error: "quota"`` -- retrying cannot help until the
tenant frees a session).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from ..ops5 import Ops5Error
from ..ops5.errors import (
    DuplicateProductionError,
    ExecutionError,
    ParseError,
    ValidationError,
)
from .durability import validate_engine_state
from .protocol import ProtocolError, read_message, write_message
from .session import DEFAULT_MAX_PENDING, DEFAULT_TENANT, QuotaExceeded, SessionManager
from .stats import Telemetry


class RuleServer:
    """A multi-session rule-engine service on a local socket."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        max_pending: int = DEFAULT_MAX_PENDING,
        recorder=None,
        fault_plan=None,
        tenant_quotas: Optional[dict] = None,
        default_tenant_quota: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.sessions = SessionManager(
            default_max_pending=max_pending,
            recorder=recorder,
            fault_plan=fault_plan,
            tenant_quotas=tenant_quotas,
            default_tenant_quota=default_tenant_quota,
        )
        self.telemetry = Telemetry()
        self.connections = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and begin accepting connections."""
        self._stopped = asyncio.Event()
        if self.unix_path:
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.host, port=self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self):
        """Where clients connect: a unix path or a (host, port) pair."""
        return self.unix_path if self.unix_path else (self.host, self.port)

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`shutdown`) ran."""
        assert self._stopped is not None, "start() must run first"
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful exit: stop accepting, drain every session, reap pools."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.sessions.drain_all()
        if self._stopped is not None:
            self._stopped.set()

    # -- connection handling ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        try:
            while True:
                try:
                    request = await read_message(reader)
                except ProtocolError as error:
                    # The stream is unparseable from here on: answer if
                    # possible, then drop the connection.
                    await write_message(
                        writer, {"ok": False, "error": f"protocol: {error}"}
                    )
                    break
                if request is None:
                    break
                reply = await self.dispatch(request)
                await write_message(writer, reply)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished; sessions are unaffected
        finally:
            self.connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- request dispatch -------------------------------------------------------

    async def dispatch(self, request) -> dict:
        """Route one decoded request to the server or a session."""
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        try:
            if op in _SERVER_OPS:
                self.telemetry.requests += 1
                return await _SERVER_OPS[op](self, request)
            if self._draining:
                return {"ok": False, "error": "server is shutting down"}
            session = self.sessions.get(request.get("session"))
            return await session.submit(request)
        except QuotaExceeded as error:
            self.telemetry.errors += 1
            return {"ok": False, "error": "quota", "detail": str(error)}
        except Ops5Error as error:
            self.telemetry.errors += 1
            return {"ok": False, "error": str(error)}
        except Exception as error:  # defensive: keep the server alive
            self.telemetry.errors += 1
            return {"ok": False, "error": f"internal: {type(error).__name__}: {error}"}

    async def _op_create_session(self, request: dict) -> dict:
        if self._draining:
            raise Ops5Error("server is shutting down")
        session = self.sessions.create(
            program=request.get("program", ""),
            matcher=request.get("matcher", "rete"),
            workers=request.get("workers"),
            strategy=request.get("strategy", "lex"),
            max_pending=request.get("max_pending"),
            name=request.get("name"),
            transport=request.get("transport"),
            tenant=request.get("tenant", DEFAULT_TENANT),
        )
        session.start()
        return {"ok": True, "session": session.id}

    async def _op_import_session(self, request: dict) -> dict:
        """Re-create a migrated session from an ``export`` payload.

        *config* is the exported session config (program, matcher,
        strategy, max_pending, tenant); *state* the engine blob.  The
        restored session keeps its working memory, refraction memory,
        counters, and halt state -- the conflict set re-derives during
        restore, so the continuation is bit-identical (the property the
        supervisor's checkpoint restore already proves).

        The payload is untrusted input (it crossed the wire): a
        malformed, truncated, or schema-mismatched state blob answers a
        typed ``error: "bad_state"`` reply instead of a traceback, and
        leaves no half-built session behind.
        """
        if self._draining:
            raise Ops5Error("server is shutting down")
        config = request.get("config") or {}
        if not isinstance(config, dict):
            self.telemetry.errors += 1
            return {
                "ok": False,
                "error": "bad_state",
                "detail": "config must be a JSON object",
            }
        state = request.get("state")
        if state is not None:
            problem = validate_engine_state(state)
            if problem is not None:
                self.telemetry.errors += 1
                return {"ok": False, "error": "bad_state", "detail": problem}
        try:
            session = self.sessions.create(
                program=config.get("program", ""),
                matcher=config.get("matcher", "rete"),
                strategy=config.get("strategy", "lex"),
                max_pending=config.get("max_pending"),
                name=request.get("name"),
                tenant=config.get("tenant", DEFAULT_TENANT),
                state=state,
            )
        except (
            ParseError,
            ValidationError,
            DuplicateProductionError,
            ExecutionError,
            ValueError,
            TypeError,
            KeyError,
        ) as error:
            # A payload that passed the shape check but still failed the
            # engine -- an unparseable program in the config, firings
            # referencing unknown productions -- is the same class of
            # bad input.  (Quota and duplicate-name errors keep their
            # own types: those are caller mistakes, not bad payloads.)
            self.telemetry.errors += 1
            return {"ok": False, "error": "bad_state", "detail": str(error)}
        session.start()
        return {"ok": True, "session": session.id}

    async def _op_destroy_session(self, request: dict) -> dict:
        session_id = request.get("session")
        await self.sessions.destroy(session_id)
        return {"ok": True, "session": session_id}

    async def _op_list_sessions(self, request: dict) -> dict:
        return {"ok": True, "sessions": self.sessions.ids()}

    async def _op_stats(self, request: dict) -> dict:
        rollup = self.sessions.stats()
        return {
            "ok": True,
            "server": {
                "connections": self.connections,
                "uptime_seconds": self.telemetry.uptime,
                "requests": self.telemetry.requests,
                "errors": self.telemetry.errors,
                "draining": self._draining,
            },
            **rollup,
        }

    async def _op_ping(self, request: dict) -> dict:
        return {"ok": True, "pong": request.get("payload")}

    async def _op_shutdown(self, request: dict) -> dict:
        sessions = len(self.sessions)
        # Reply first, then drain in the background: the requester must
        # not deadlock waiting behind the drain of its own sessions.
        asyncio.get_running_loop().create_task(self.shutdown())
        return {"ok": True, "draining_sessions": sessions}


_SERVER_OPS = {
    "create_session": RuleServer._op_create_session,
    "import_session": RuleServer._op_import_session,
    "destroy_session": RuleServer._op_destroy_session,
    "list_sessions": RuleServer._op_list_sessions,
    "stats": RuleServer._op_stats,
    "ping": RuleServer._op_ping,
    "shutdown": RuleServer._op_shutdown,
}


def run_server(
    host: str = "127.0.0.1",
    port: int = 0,
    unix_path: Optional[str] = None,
    max_pending: int = DEFAULT_MAX_PENDING,
    announce=None,
    default_tenant_quota: Optional[int] = None,
) -> None:
    """Run a server in this thread until shutdown (the CLI entry point).

    *announce* is called once with the bound server (after the socket
    exists) -- the CLI prints the address, tests could capture it.
    """

    async def main() -> None:
        server = RuleServer(
            host=host,
            port=port,
            unix_path=unix_path,
            max_pending=max_pending,
            default_tenant_quota=default_tenant_quota,
        )
        await server.start()
        if announce is not None:
            announce(server)
        try:
            await server.serve_until_shutdown()
        finally:
            await server.shutdown()

    asyncio.run(main())


class ServerThread:
    """A rule server on a background thread (tests, benchmarks, loadgen).

    Starts the event loop, waits until the socket is bound, and exposes
    :attr:`address`.  :meth:`stop` requests a graceful drain and joins
    the thread; it is also invoked by ``with`` exit.
    """

    def __init__(self, **server_kwargs) -> None:
        self._kwargs = server_kwargs
        self._ready = threading.Event()
        self._server: Optional[RuleServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        if self._server is None:
            raise RuntimeError("server did not start within 30s")

    def _run(self) -> None:
        async def main() -> None:
            try:
                server = RuleServer(**self._kwargs)
                await server.start()
            except BaseException as error:
                self._error = error
                self._ready.set()
                return
            self._server = server
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            try:
                await server.serve_until_shutdown()
            finally:
                await server.shutdown()

        asyncio.run(main())

    @property
    def server(self) -> RuleServer:
        assert self._server is not None
        return self._server

    @property
    def address(self):
        return self.server.address

    def stop(self, timeout: float = 30) -> None:
        """Drain sessions, stop the loop, join the thread."""
        loop, server = self._loop, self._server
        if loop is not None and server is not None and loop.is_running():
            asyncio.run_coroutine_threadsafe(server.shutdown(), loop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
